"""Supervised execution: bounded retries, timeouts, pool resurrection.

:func:`run_supervised` executes a list of zero-argument picklable tasks —
one per campaign unit — either in-process or on a
:class:`~concurrent.futures.ProcessPoolExecutor`.  It layers three
guarantees over the bare pool:

* **bounded retry-with-backoff** — a unit that raises (or whose worker
  dies, breaking the pool) is re-executed up to
  :attr:`RetryPolicy.max_retries` times; the pool is rebuilt after a
  break and only failed units are resubmitted;
* **per-chunk timeouts** — a unit that exceeds
  :attr:`RetryPolicy.timeout_s` counts as failed, the stuck pool is
  abandoned, and the unit is retried on a fresh pool (in-process
  execution cannot preempt, so timeouts apply only to pool runs);
* **checkpoint integration** — previously completed units load from a
  verified :class:`~repro.resilience.checkpoint.CampaignCheckpoint` and
  fresh completions persist as they finish.

Determinism under retry comes from task construction, not from the
supervisor: a :class:`SeededChunk` rebuilds its generator from a spawned
:class:`numpy.random.SeedSequence` on every call, so attempt *k* of a
unit draws exactly the random numbers attempt 0 would have drawn.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    ProcessPoolExecutor,
    TimeoutError as FutureTimeoutError,
)
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.resilience.checkpoint import CampaignCheckpoint
from repro.resilience.faults import FaultPlan, FaultyTask

__all__ = [
    "RetryPolicy",
    "SupervisorError",
    "SeededChunk",
    "seed_sequences_for",
    "run_supervised",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds on supervised re-execution.

    Attributes
    ----------
    max_retries:
        Retries allowed per unit *after* its first attempt; a unit
        failing ``max_retries + 1`` times aborts the campaign with
        :class:`SupervisorError`.
    timeout_s:
        Per-chunk wall-clock budget on pool runs (``None`` disables).
    backoff_s / backoff_factor:
        Exponential backoff between a unit's attempts:
        ``backoff_s * backoff_factor**attempt`` seconds.
    """

    max_retries: int = 2
    timeout_s: Optional[float] = None
    backoff_s: float = 0.05
    backoff_factor: float = 2.0

    def backoff_for(self, attempt: int) -> float:
        """Seconds to sleep before re-running attempt ``attempt + 1``."""
        return self.backoff_s * self.backoff_factor ** max(attempt - 1, 0)


class SupervisorError(RuntimeError):
    """A unit exhausted its retry budget; carries structured context.

    Attributes
    ----------
    unit:
        Index of the failing unit.
    attempts:
        Number of executions that failed.
    cause:
        ``repr`` of the final failure.
    """

    def __init__(self, unit: int, attempts: int, cause: str) -> None:
        super().__init__(
            f"unit {unit} failed {attempts} attempt(s), retry budget "
            f"exhausted; last error: {cause}"
        )
        self.unit = unit
        self.attempts = attempts
        self.cause = cause


@dataclass(frozen=True)
class SeededChunk:
    """A picklable unit of chunked Monte Carlo work with a derivable stream.

    Calling the chunk builds a *fresh* generator from its spawned
    :class:`~numpy.random.SeedSequence` and invokes
    ``worker(payload, n_trials, rng)`` — the engine's chunk-worker
    contract.  Because the generator is rebuilt per call, retries and
    resumed runs are bitwise identical to a first-attempt execution.
    """

    worker: Callable[..., Any]
    payload: Any
    n_trials: int
    seed: np.random.SeedSequence
    bit_generator: str

    def __call__(self) -> Any:
        bitgen_cls = getattr(np.random, self.bit_generator)
        rng = np.random.Generator(bitgen_cls(self.seed))
        return self.worker(self.payload, self.n_trials, rng)


def seed_sequences_for(
    rng: np.random.Generator, n: int
) -> Tuple[List[np.random.SeedSequence], str]:
    """Spawn ``n`` child seed sequences plus the bit-generator class name.

    Children come from ``rng.bit_generator.seed_seq.spawn(n)`` — the same
    derivation :meth:`numpy.random.Generator.spawn` performs — so
    generators rebuilt from them are bitwise identical to the streams
    :func:`repro.montecarlo.engine.spawn_streams` hands out.
    """
    seed_seq = rng.bit_generator.seed_seq
    return list(seed_seq.spawn(n)), type(rng.bit_generator).__name__


def _default_encode(result: Any) -> Tuple[Dict[str, np.ndarray], object]:
    """Encode a worker result (tuple of arrays, array, or JSON value)."""
    if isinstance(result, tuple) and all(
        isinstance(item, np.ndarray) for item in result
    ):
        return (
            {f"a{i}": item for i, item in enumerate(result)},
            {"type": "tuple", "n": len(result)},
        )
    if isinstance(result, np.ndarray):
        return {"a0": result}, {"type": "array"}
    return {}, {"type": "json", "value": result}


def _default_decode(arrays: Dict[str, np.ndarray], meta: object) -> Any:
    """Inverse of :func:`_default_encode`."""
    kind = meta["type"] if isinstance(meta, dict) else None
    if kind == "tuple":
        return tuple(arrays[f"a{i}"] for i in range(meta["n"]))
    if kind == "array":
        return arrays["a0"]
    if kind == "json":
        return meta["value"]
    raise ValueError(f"unrecognised checkpoint unit meta: {meta!r}")


def _wrap(
    task: Callable[[], Any],
    faults: Optional[FaultPlan],
    unit: int,
    attempt: int,
    allow_exit: bool,
) -> Callable[[], Any]:
    if faults is None:
        return task
    return FaultyTask(
        task=task, plan=faults, unit=unit, attempt=attempt,
        allow_exit=allow_exit,
    )


def _call_task(task: Callable[[], Any]) -> Any:
    """Top-level trampoline so wrapped tasks pickle by reference."""
    return task()


def run_supervised(
    tasks: Sequence[Callable[[], Any]],
    n_workers: int = 1,
    policy: Optional[RetryPolicy] = None,
    checkpoint: Optional[CampaignCheckpoint] = None,
    faults: Optional[FaultPlan] = None,
    encode: Optional[Callable[[Any], Tuple[Dict[str, np.ndarray], object]]] = None,
    decode: Optional[Callable[[Dict[str, np.ndarray], object], Any]] = None,
) -> List[Any]:
    """Execute ``tasks`` with retries, timeouts and checkpointing.

    Parameters
    ----------
    tasks:
        One picklable zero-argument callable per unit; results are
        returned in unit order.
    n_workers:
        ``1`` runs in-process; more uses a process pool that is rebuilt
        whenever a worker death breaks it.
    policy:
        Retry/timeout budget (defaults to :class:`RetryPolicy`).
    checkpoint:
        When given, verified units load instead of running, and fresh
        completions persist as they finish.
    faults:
        Optional fault-injection plan (chaos testing only).
    encode / decode:
        Unit-result codec for checkpoint persistence; the default
        handles tuples of arrays, bare arrays and JSON-serialisable
        values.

    Raises
    ------
    SupervisorError
        When any unit exhausts its retry budget.
    """
    policy = policy or RetryPolicy()
    encode = encode or _default_encode
    decode = decode or _default_decode
    n_units = len(tasks)
    results: List[Any] = [None] * n_units
    done = [False] * n_units

    if checkpoint is not None:
        for unit, (arrays, meta) in checkpoint.verified_units().items():
            if unit < n_units:
                results[unit] = decode(arrays, meta)
                done[unit] = True

    def record(unit: int, result: Any) -> None:
        results[unit] = result
        done[unit] = True
        if checkpoint is not None:
            arrays, meta = encode(result)
            checkpoint.save_unit(unit, arrays=arrays, meta=meta)

    attempts: Dict[int, int] = {unit: 0 for unit in range(n_units)}
    pending = [unit for unit in range(n_units) if not done[unit]]

    if n_workers == 1 or len(pending) <= 1:
        for unit in pending:
            while True:
                wrapped = _wrap(
                    tasks[unit], faults, unit, attempts[unit], allow_exit=False
                )
                try:
                    record(unit, wrapped())
                    break
                except Exception as exc:  # noqa: BLE001 - supervision boundary
                    attempts[unit] += 1
                    if attempts[unit] > policy.max_retries:
                        raise SupervisorError(
                            unit, attempts[unit], repr(exc)
                        ) from exc
                    time.sleep(policy.backoff_for(attempts[unit]))
        return results

    while pending:
        stuck = False
        pool = ProcessPoolExecutor(max_workers=min(n_workers, len(pending)))
        failed: List[Tuple[int, BaseException]] = []
        try:
            futures = {
                unit: pool.submit(
                    _call_task,
                    _wrap(tasks[unit], faults, unit, attempts[unit],
                          allow_exit=True),
                )
                for unit in pending
            }
            for unit, future in futures.items():
                try:
                    record(unit, future.result(timeout=policy.timeout_s))
                except FutureTimeoutError as exc:
                    failed.append((unit, exc))
                    stuck = True
                except Exception as exc:  # noqa: BLE001 - incl. BrokenExecutor
                    failed.append((unit, exc))
        finally:
            # A timed-out unit may leave a worker busy: abandon the pool
            # without joining it (the worker exits once its task ends)
            # and retry on a fresh pool.
            pool.shutdown(wait=not stuck, cancel_futures=True)
        for unit, exc in failed:
            attempts[unit] += 1
            if attempts[unit] > policy.max_retries:
                raise SupervisorError(unit, attempts[unit], repr(exc)) from exc
        pending = [unit for unit in range(n_units) if not done[unit]]
        if pending:
            time.sleep(
                max(policy.backoff_for(attempts[unit]) for unit in pending)
            )
    return results
