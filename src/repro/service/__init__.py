"""The network-facing yield service: an HTTP/ASGI tier over serving.

Promotes the in-process :class:`~repro.serving.service.YieldService`
(~4e6 queries/sec, single caller) to a deployable network service for
many concurrent clients — the "millions of users" path of the roadmap,
and the always-available inner-loop evaluator the process/design
co-optimization blueprint assumes:

* :mod:`repro.service.app` — :class:`YieldApp`, the framework-free
  ASGI 3 application (``POST /v1/query`` batched bounds queries with
  degradation flags on the wire, surface listing/upload/hot-reload,
  metrics endpoint);
* :mod:`repro.service.schemas` — strict-JSON request validation and
  response shaping (the wire carries exactly the in-process bound
  contract);
* :mod:`repro.service.queue` — the bounded background queue that keeps
  Monte Carlo refinement off the request path;
* :mod:`repro.service.metrics` — per-route counters and fixed-bucket
  latency histograms;
* :mod:`repro.service.http` — a dependency-free asyncio HTTP/1.1
  server (keep-alive, ``SO_REUSEPORT`` multi-worker scaling) driving
  the ASGI app, used by ``python -m repro.cli serve``.

Load-tested by ``benchmarks/bench_service_http.py``
(``BENCH_service_http.json``: throughput floor + p99 latency budget).
"""

from repro.service.app import YieldApp
from repro.service.http import (
    AsgiHttpServer,
    StoreAppFactory,
    build_app,
    run_server,
)
from repro.service.metrics import LatencyHistogram, MetricsRegistry, RouteMetrics
from repro.service.queue import RefinementJob, RefinementQueue
from repro.service.schemas import QueryRequest, SchemaError

__all__ = [
    "YieldApp",
    "AsgiHttpServer",
    "StoreAppFactory",
    "build_app",
    "run_server",
    "LatencyHistogram",
    "MetricsRegistry",
    "RouteMetrics",
    "RefinementJob",
    "RefinementQueue",
    "QueryRequest",
    "SchemaError",
]
