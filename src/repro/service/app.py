"""The ASGI application of the network-facing yield service.

:class:`YieldApp` is a framework-free ASGI 3 callable over one shared
:class:`~repro.serving.service.YieldService`.  Routes:

========================  ====================================================
``GET  /healthz``         liveness probe
``POST /v1/query``        batched yield query (widths, densities, device
                          counts → failure/yield bounds + degradation flags)
``GET  /v1/surfaces``     list known surface artifacts
``POST /v1/surfaces``     upload a ``.npz`` surface artifact (hot-reload)
``GET  /v1/surfaces/{k}`` describe one surface (key or unambiguous prefix)
``GET  /v1/metrics``      per-route counters/latency + ladder/queue stats
========================  ====================================================

Design rules of the tier:

* the request path never blocks on Monte Carlo sampling —
  ``fallback="mc"`` queries are answered from the exact evaluator and
  their off-grid points go to the bounded background
  :class:`~repro.service.queue.RefinementQueue`; once refinement lands,
  the same query answers from refined values;
* every response body is strict RFC-8259 JSON (non-finite floats become
  ``null``), shaped by :mod:`repro.service.schemas`, and query bounds
  are bit-identical to the in-process :meth:`YieldService.query`;
* uploads are content-addressed: the artifact's content hash is its
  version, so re-uploading an identical surface is a no-op and a
  changed surface gets a fresh key (hot-reload without cache
  invalidation races).

The app is plain ASGI, so it runs under the bundled
:mod:`repro.service.http` server, or any standard ASGI server when one
is available.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.resilience.checkpoint import CorruptArtifactError
from repro.resilience.guards import NumericalGuardError
from repro.serving.service import YieldService
from repro.service.metrics import MetricsRegistry
from repro.service.queue import RefinementJob, RefinementQueue
from repro.service.schemas import (
    QueryRequest,
    SchemaError,
    error_body,
    json_safe,
    query_response,
    surface_entry,
)
from repro.surface.surface import YieldSurface

__all__ = ["YieldApp"]

#: Upload size cap (bytes) for ``POST /v1/surfaces``; a surface artifact
#: is a few grids of float64 — far below this.
MAX_UPLOAD_BYTES = 64 * 1024 * 1024

#: Request body cap for JSON endpoints.
MAX_JSON_BYTES = 8 * 1024 * 1024


class _HTTPError(Exception):
    """Internal control flow: abort the request with a status + message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = str(message)


class YieldApp:
    """ASGI 3 application serving batched yield queries over HTTP.

    Parameters
    ----------
    service:
        The in-process :class:`YieldService` answering queries.  One
        instance is shared by every concurrent request — the PR-7
        thread-safety work on the breaker, stale cache, and counters is
        what makes that sound.
    refine_capacity:
        Bound on the background MC refinement queue (pending jobs).
    refine_workers:
        Background refinement worker threads.
    """

    def __init__(
        self,
        service: YieldService,
        refine_capacity: int = 64,
        refine_workers: int = 1,
    ) -> None:
        self.service = service
        self.metrics = MetricsRegistry()
        self.refinement = RefinementQueue(
            self._refine_job,
            capacity=refine_capacity,
            workers=refine_workers,
        )
        self.started_at = time.time()

    def _refine_job(self, surface_key, width_nm, cnt_density_per_um,
                    mc_samples) -> None:
        """Queue worker entry point: warm the MC evaluator cache."""
        self.service.refine(
            surface_key,
            np.asarray(width_nm, dtype=float),
            np.asarray(cnt_density_per_um, dtype=float),
            mc_samples=mc_samples,
        )

    # ------------------------------------------------------------------
    # ASGI plumbing
    # ------------------------------------------------------------------

    async def __call__(self, scope, receive, send) -> None:
        """The ASGI entry point (``http`` and ``lifespan`` scopes)."""
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - ws etc.
            raise RuntimeError(f"unsupported ASGI scope {scope['type']!r}")
        method = scope["method"].upper()
        path = scope["path"]
        started = time.perf_counter()
        route, handler = self._route(method, path)
        try:
            body = await self._read_body(receive)
            status, payload = handler(method, path, body)
        except _HTTPError as exc:
            status, payload = exc.status, error_body(exc.status, exc.message)
        except SchemaError as exc:
            status, payload = 400, error_body(400, str(exc))
        except KeyError as exc:
            status, payload = 404, error_body(404, str(exc.args[0]) if exc.args else "not found")
        except (CorruptArtifactError, NumericalGuardError) as exc:
            # The ladder exhausted every rung (or an answer failed its
            # numerical guard): the service is up but cannot serve this
            # surface right now.
            status, payload = 503, error_body(503, str(exc))
        except ValueError as exc:
            status, payload = 400, error_body(400, str(exc))
        except Exception as exc:  # noqa: BLE001 — the HTTP boundary
            status, payload = 500, error_body(500, f"internal error: {exc}")
        raw = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        await send({
            "type": "http.response.start",
            "status": status,
            "headers": [
                (b"content-type", b"application/json"),
                (b"content-length", str(len(raw)).encode("ascii")),
            ],
        })
        await send({"type": "http.response.body", "body": raw})
        self.metrics.record(route, status, time.perf_counter() - started)

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                self.refinement.close()
                await send({"type": "lifespan.shutdown.complete"})
                return

    async def _read_body(self, receive) -> bytes:
        chunks = []
        total = 0
        while True:
            message = await receive()
            if message["type"] != "http.request":  # pragma: no cover
                raise _HTTPError(400, "unexpected ASGI message")
            chunk = message.get("body", b"")
            total += len(chunk)
            if total > MAX_UPLOAD_BYTES:
                raise _HTTPError(413, "request body too large")
            if chunk:
                chunks.append(chunk)
            if not message.get("more_body", False):
                break
        return b"".join(chunks)

    def _route(self, method: str, path: str):
        """Map (method, path) to a (label, handler) pair."""
        if path == "/healthz" and method == "GET":
            return "GET /healthz", self._handle_health
        if path == "/v1/query" and method == "POST":
            return "POST /v1/query", self._handle_query
        if path == "/v1/surfaces" and method == "GET":
            return "GET /v1/surfaces", self._handle_list_surfaces
        if path == "/v1/surfaces" and method == "POST":
            return "POST /v1/surfaces", self._handle_upload_surface
        if path.startswith("/v1/surfaces/") and method == "GET":
            return "GET /v1/surfaces/{key}", self._handle_get_surface
        if path == "/v1/metrics" and method == "GET":
            return "GET /v1/metrics", self._handle_metrics
        return "other", self._handle_not_found

    # ------------------------------------------------------------------
    # Handlers (sync — the hot path is vectorized NumPy, microseconds)
    # ------------------------------------------------------------------

    def _handle_not_found(self, method: str, path: str, body: bytes):
        raise _HTTPError(404, f"no route for {method} {path}")

    def _handle_health(self, method: str, path: str, body: bytes):
        return 200, {"status": "ok", "uptime_s": time.time() - self.started_at}

    def _json_body(self, body: bytes) -> object:
        if len(body) > MAX_JSON_BYTES:
            raise _HTTPError(413, "JSON body too large")
        if not body:
            raise SchemaError("request body must be a JSON object")
        try:
            return json.loads(body)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"invalid JSON body: {exc}") from None

    def _handle_query(self, method: str, path: str, body: bytes):
        request = QueryRequest.from_payload(self._json_body(body))
        refinement: Optional[Dict[str, object]] = None
        fallback = request.fallback
        if fallback == "mc":
            fallback, refinement = self._schedule_refinement(request)
        result = self.service.query(
            request.surface,
            request.width_nm,
            cnt_density_per_um=request.cnt_density_per_um,
            device_count=request.device_count,
            fallback=fallback,
            mc_samples=request.mc_samples,
            deadline_s=request.deadline_s,
        )
        return 200, query_response(result, refinement=refinement)

    def _schedule_refinement(
        self, request: QueryRequest
    ) -> Tuple[str, Dict[str, object]]:
        """Route an ``"mc"`` query through the background queue.

        Returns the fallback mode to answer *this* request with and the
        refinement block for the response body.  The request path never
        samples: off-grid points answer from the exact evaluator until
        the queue has refined them, after which the same query is
        answered from the warmed MC cache without sampling.
        """
        surf, _ = self.service.resolve(request.surface)
        widths = request.width_nm
        if request.cnt_density_per_um is None:
            densities = np.full(widths.shape, self.service._reference_density(surf))
        elif request.cnt_density_per_um.size == 1:
            densities = np.full(widths.shape, request.cnt_density_per_um[0])
        else:
            densities = request.cnt_density_per_um
        outside = ~surf.covers(widths, densities)
        if not outside.any():
            # Nothing off-grid: "mc" degenerates to the interpolated
            # path, no sampling involved.
            return "mc", {"status": "not_needed", "pending_points": 0}
        job = RefinementJob(
            surf.key,
            widths[outside],
            densities[outside],
            request.mc_samples,
        )
        if self.refinement.is_done(job.key):
            # The evaluator cache is warm: answering with "mc" replays
            # cached point estimates without sampling.
            return "mc", {
                "status": "refined",
                "job": job.key,
                "pending_points": 0,
            }
        outcome = self.refinement.submit(job)
        return "exact", {
            "status": outcome,
            "job": job.key,
            "pending_points": int(np.count_nonzero(outside)),
        }

    def _handle_list_surfaces(self, method: str, path: str, body: bytes):
        entries = []
        seen = set()
        store = self.service.store
        store_keys = store.keys() if store is not None else []
        for key in store_keys:
            seen.add(key)
            loaded = key in self.service.cache
            description = (
                self.service.cache.get(key).describe() if loaded else None
            )
            entries.append(surface_entry(key, loaded, description))
        for key, surface in sorted(self.service.pinned_surfaces().items()):
            if key not in seen:
                entries.append(surface_entry(key, True, surface.describe()))
        return 200, {"surfaces": entries, "count": len(entries)}

    def _handle_upload_surface(self, method: str, path: str, body: bytes):
        if not body:
            raise _HTTPError(400, "upload body must be a .npz surface artifact")
        with tempfile.NamedTemporaryFile(suffix=".npz", delete=False) as handle:
            handle.write(body)
            temp_path = Path(handle.name)
        try:
            try:
                surface = YieldSurface.load(temp_path)
            except Exception as exc:  # noqa: BLE001 — decode boundary
                raise _HTTPError(
                    400, f"body is not a valid surface artifact: {exc}"
                ) from None
        finally:
            temp_path.unlink(missing_ok=True)
        persisted = self.service.store is not None
        key = self.service.register(surface, persist=persisted)
        return 201, {
            "key": key,
            "persisted": persisted,
            "surface": json_safe(surface.describe()),
        }

    def _handle_get_surface(self, method: str, path: str, body: bytes):
        key = path[len("/v1/surfaces/"):]
        if not key:
            raise _HTTPError(404, "missing surface key")
        surface, degradation = self.service.resolve(key)
        return 200, {
            "key": surface.key,
            "degradation": degradation,
            "surface": json_safe(surface.describe()),
        }

    def _handle_metrics(self, method: str, path: str, body: bytes):
        return 200, json_safe({
            "uptime_s": time.time() - self.started_at,
            "routes": self.metrics.snapshot(),
            "service": self.service.stats(),
            "refinement": self.refinement.stats(),
        })
