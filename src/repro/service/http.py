"""A minimal asyncio HTTP/1.1 server that drives the ASGI app.

The container ships no ASGI server, so the service brings its own: a
small, dependency-free HTTP/1.1 implementation on ``asyncio`` streams.
It supports exactly what the yield service needs — persistent
(keep-alive) connections, ``Content-Length`` bodies, and a fast parse
path — and hands every request to the ASGI application in
:mod:`repro.service.app`.  The app stays standard ASGI, so swapping in
uvicorn/hypercorn later is a deployment change, not a code change.

Scaling follows the engine's philosophy: one process saturates one core
(the GIL bounds the JSON + NumPy hot path), so :func:`run_server` forks
``workers`` processes that share the listening port via ``SO_REUSEPORT``
— the kernel load-balances accepted connections across them.  Each
worker owns an independent :class:`YieldService` over the same
content-addressed store, which is safe because artifacts are immutable
(a new surface version is a new key).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import signal
import socket
import sys
from typing import Callable, List, Optional

__all__ = ["AsgiHttpServer", "StoreAppFactory", "run_server", "build_app"]

#: Hard cap on header-section size; past this the connection is closed.
MAX_HEADER_BYTES = 64 * 1024

_RESPONSE_REASONS = {
    200: b"OK", 201: b"Created", 400: b"Bad Request", 404: b"Not Found",
    413: b"Payload Too Large", 500: b"Internal Server Error",
    503: b"Service Unavailable",
}


class AsgiHttpServer:
    """Serve one ASGI application on an asyncio event loop.

    Parameters
    ----------
    app:
        An ASGI 3 callable (e.g. :class:`~repro.service.app.YieldApp`).
    host, port:
        Bind address.  Port 0 picks a free port (see :attr:`port` after
        :meth:`start`).
    reuse_port:
        Set ``SO_REUSEPORT`` so multiple worker processes can share the
        address (Linux kernel load balancing).
    """

    def __init__(
        self,
        app,
        host: str = "127.0.0.1",
        port: int = 8000,
        reuse_port: bool = False,
    ) -> None:
        self.app = app
        self.host = host
        self.port = int(port)
        self.reuse_port = bool(reuse_port)
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        """Bind and start accepting connections (non-blocking)."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.port,
            reuse_port=self.reuse_port or None,
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting connections and close the server."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                keep_alive = await self._handle_one_request(reader, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass  # client went away mid-request; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _handle_one_request(self, reader, writer) -> bool:
        """Parse one request, run the app, write one response.

        Returns whether the connection should stay open.
        """
        request_line = await reader.readline()
        if not request_line or request_line in (b"\r\n", b"\n"):
            return False
        try:
            method, target, version = request_line.split(None, 2)
        except ValueError:
            await self._write_simple(writer, 400, b"malformed request line")
            return False
        headers: List[tuple] = []
        content_length = 0
        connection_close = version.rstrip() == b"HTTP/1.0"
        header_bytes = 0
        while True:
            line = await reader.readline()
            header_bytes += len(line)
            if header_bytes > MAX_HEADER_BYTES:
                await self._write_simple(writer, 400, b"headers too large")
                return False
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.partition(b":")
            name = name.strip().lower()
            value = value.strip()
            headers.append((name, value))
            if name == b"content-length":
                try:
                    content_length = int(value)
                except ValueError:
                    await self._write_simple(writer, 400, b"bad content-length")
                    return False
            elif name == b"connection" and value.lower() == b"close":
                connection_close = True
        body = await reader.readexactly(content_length) if content_length else b""

        path, _, query = target.partition(b"?")
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "method": method.decode("ascii"),
            "path": path.decode("utf-8", "replace"),
            "raw_path": path,
            "query_string": query,
            "headers": headers,
            "server": (self.host, self.port),
            "client": writer.get_extra_info("peername"),
        }

        received = False

        async def receive():
            nonlocal received
            if received:
                return {"type": "http.disconnect"}
            received = True
            return {"type": "http.request", "body": body, "more_body": False}

        started = {}
        chunks: List[bytes] = []

        async def send(message):
            if message["type"] == "http.response.start":
                started["status"] = message["status"]
                started["headers"] = message.get("headers", [])
            elif message["type"] == "http.response.body":
                chunk = message.get("body", b"")
                if chunk:
                    chunks.append(chunk)

        await self.app(scope, receive, send)
        status = started.get("status", 500)
        payload = b"".join(chunks)
        reason = _RESPONSE_REASONS.get(status, b"")
        head = [b"HTTP/1.1 %d %s\r\n" % (status, reason)]
        has_length = False
        for name, value in started.get("headers", []):
            if name.lower() == b"content-length":
                has_length = True
            head.append(name + b": " + value + b"\r\n")
        if not has_length:
            head.append(b"content-length: %d\r\n" % len(payload))
        head.append(
            b"connection: close\r\n" if connection_close
            else b"connection: keep-alive\r\n"
        )
        head.append(b"\r\n")
        writer.write(b"".join(head) + payload)
        await writer.drain()
        return not connection_close

    @staticmethod
    async def _write_simple(writer, status: int, message: bytes) -> None:
        reason = _RESPONSE_REASONS.get(status, b"")
        writer.write(
            b"HTTP/1.1 %d %s\r\ncontent-type: text/plain\r\n"
            b"content-length: %d\r\nconnection: close\r\n\r\n%s"
            % (status, reason, len(message), message)
        )
        await writer.drain()


def build_app(
    store: Optional[str] = None,
    cache_capacity: int = 8,
    deadline_s: Optional[float] = None,
    refine_capacity: int = 64,
    refine_workers: int = 1,
):
    """Construct a :class:`YieldApp` over a fresh :class:`YieldService`.

    The standard app factory used by the CLI ``serve`` subcommand and
    by each forked worker process (every worker owns an independent
    service over the same immutable, content-addressed store).
    """
    from repro.serving.service import YieldService
    from repro.service.app import YieldApp

    service = YieldService(
        store=store, cache_capacity=cache_capacity, deadline_s=deadline_s
    )
    return YieldApp(
        service,
        refine_capacity=refine_capacity,
        refine_workers=refine_workers,
    )


class StoreAppFactory:
    """A picklable app factory for spawn-based worker processes.

    Captures the plain-data configuration of :func:`build_app` so it can
    cross a ``multiprocessing`` spawn boundary; each worker calls it to
    build its own independent service + app over the shared store.
    """

    def __init__(
        self,
        store: Optional[str] = None,
        cache_capacity: int = 8,
        deadline_s: Optional[float] = None,
        refine_capacity: int = 64,
        refine_workers: int = 1,
    ) -> None:
        self.store = store
        self.cache_capacity = int(cache_capacity)
        self.deadline_s = deadline_s
        self.refine_capacity = int(refine_capacity)
        self.refine_workers = int(refine_workers)

    def __call__(self):
        """Build the configured :class:`YieldApp`."""
        return build_app(
            store=self.store,
            cache_capacity=self.cache_capacity,
            deadline_s=self.deadline_s,
            refine_capacity=self.refine_capacity,
            refine_workers=self.refine_workers,
        )


def _serve_worker(app_factory: Callable[[], object], host: str, port: int,
                  reuse_port: bool, announce: bool) -> None:
    """One worker process: build the app, run the event loop forever."""
    app = app_factory()
    server = AsgiHttpServer(app, host=host, port=port, reuse_port=reuse_port)

    async def _run() -> None:
        await server.start()
        if announce:
            print(
                f"serving on http://{server.host}:{server.port}",
                file=sys.stderr,
                flush=True,
            )
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except (KeyboardInterrupt, asyncio.CancelledError):  # pragma: no cover
        pass


def run_server(
    app_factory: Callable[[], object],
    host: str = "127.0.0.1",
    port: int = 8000,
    workers: int = 1,
) -> None:
    """Run the HTTP service, optionally across several worker processes.

    With ``workers == 1`` the server runs in this process (blocking
    until interrupted).  With more, ``workers`` child processes each
    bind the same address under ``SO_REUSEPORT`` and the kernel spreads
    connections across them; the parent supervises and forwards
    SIGINT/SIGTERM.  ``port`` must be non-zero for multi-worker runs
    (every worker must bind the *same* port).
    """
    if workers <= 1:
        _serve_worker(app_factory, host, port, reuse_port=False, announce=True)
        return
    if port == 0:
        raise ValueError("multi-worker serving needs an explicit port")
    if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover - non-Linux
        raise RuntimeError("SO_REUSEPORT is unavailable on this platform")
    context = multiprocessing.get_context("spawn")
    children = [
        context.Process(
            target=_serve_worker,
            args=(app_factory, host, port, True, index == 0),
            daemon=False,
        )
        for index in range(int(workers))
    ]
    for child in children:
        child.start()

    def _forward(signum, frame):  # pragma: no cover - signal path
        for child in children:
            if child.is_alive():
                child.terminate()

    previous = {
        sig: signal.signal(sig, _forward)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        for child in children:
            child.join()
    finally:
        for sig, handler in previous.items():  # pragma: no cover
            signal.signal(sig, handler)
        for child in children:
            if child.is_alive():  # pragma: no cover
                child.terminate()
