"""Request metrics for the network service tier.

Small, dependency-free instrumentation: per-route request/error counters
and fixed-bucket latency histograms, aggregated by a thread-safe
registry the metrics endpoint snapshots.  The histogram buckets are
log-spaced from 10 µs to 10 s, so one layout covers both the
sub-millisecond interpolated path and multi-second cold loads; quantiles
are estimated from the bucket counts (upper-edge convention, so a
reported p99 never understates the true quantile by more than one
bucket's width).
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional

__all__ = ["LatencyHistogram", "RouteMetrics", "MetricsRegistry"]

#: Default histogram bucket upper edges in seconds: 10 µs → 10 s,
#: four buckets per decade.
_DEFAULT_EDGES = tuple(
    10.0 ** (-5.0 + index / 4.0) for index in range(25)
)


class LatencyHistogram:
    """A fixed-bucket latency histogram with quantile estimates.

    Observations are counted into log-spaced buckets; memory is constant
    no matter how many requests are recorded.  Not thread-safe on its
    own — :class:`RouteMetrics` serialises access.
    """

    def __init__(self, edges_s: Optional[tuple] = None) -> None:
        self.edges_s = tuple(edges_s) if edges_s is not None else _DEFAULT_EDGES
        if any(b <= a for a, b in zip(self.edges_s, self.edges_s[1:])):
            raise ValueError("histogram edges must be strictly increasing")
        # One extra overflow bucket past the last edge.
        self.counts = [0] * (len(self.edges_s) + 1)
        self.total = 0
        self.sum_s = 0.0
        self.max_s = 0.0

    def observe(self, latency_s: float) -> None:
        """Record one latency observation (seconds)."""
        value = float(latency_s)
        index = self._bucket_index(value)
        self.counts[index] += 1
        self.total += 1
        self.sum_s += value
        if value > self.max_s:
            self.max_s = value

    def _bucket_index(self, value: float) -> int:
        lo, hi = 0, len(self.edges_s)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.edges_s[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def quantile(self, q: float) -> float:
        """Estimated latency at quantile ``q`` (0 < q <= 1), in seconds.

        Returns the upper edge of the bucket containing the q-th
        observation — a conservative (never-understating) estimate.
        ``nan`` when nothing has been observed.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if self.total == 0:
            return float("nan")
        rank = math.ceil(q * self.total)
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                if index < len(self.edges_s):
                    return self.edges_s[index]
                return self.max_s
        return self.max_s

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly summary: count, mean, max, p50/p90/p99."""
        mean = self.sum_s / self.total if self.total else float("nan")
        return {
            "count": self.total,
            "mean_s": mean,
            "max_s": self.max_s,
            "p50_s": self.quantile(0.50),
            "p90_s": self.quantile(0.90),
            "p99_s": self.quantile(0.99),
        }


class RouteMetrics:
    """Thread-safe counters and latency histogram for one route."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.errors = 0
        self.status_counts: Dict[int, int] = {}
        self.histogram = LatencyHistogram()

    def record(self, status: int, latency_s: float) -> None:
        """Record one completed request with its status and latency."""
        with self._lock:
            self.requests += 1
            if int(status) >= 500:
                self.errors += 1
            self.status_counts[int(status)] = (
                self.status_counts.get(int(status), 0) + 1
            )
            self.histogram.observe(latency_s)

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly summary of this route's traffic."""
        with self._lock:
            return {
                "requests": self.requests,
                "errors": self.errors,
                "status": {str(k): v for k, v in sorted(self.status_counts.items())},
                "latency": self.histogram.snapshot(),
            }


class MetricsRegistry:
    """Per-route metrics, created on first use, snapshot on demand."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._routes: Dict[str, RouteMetrics] = {}

    def route(self, name: str) -> RouteMetrics:
        """The metrics object for a route label (created if missing)."""
        with self._lock:
            metrics = self._routes.get(name)
            if metrics is None:
                metrics = RouteMetrics()
                self._routes[name] = metrics
            return metrics

    def record(self, name: str, status: int, latency_s: float) -> None:
        """Record one completed request under a route label."""
        self.route(name).record(status, latency_s)

    def routes(self) -> List[str]:
        """Sorted route labels seen so far."""
        with self._lock:
            return sorted(self._routes)

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly summary of every route."""
        with self._lock:
            items = list(self._routes.items())
        return {name: metrics.snapshot() for name, metrics in sorted(items)}
