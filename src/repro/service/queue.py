"""Bounded background queue for off-grid Monte Carlo refinement.

Sampling off-grid points with the tilted estimator takes seconds — far
too slow for the request path.  The HTTP tier therefore answers
``fallback="mc"`` queries from the exact evaluator immediately and
enqueues the off-grid points here; worker threads run
:meth:`~repro.serving.service.YieldService.refine` in the background,
warming the per-surface evaluator cache so a later identical query is
answered from refined values without sampling.

The queue is *bounded*: when it is full, new jobs are rejected (the
response says so) instead of letting a refinement backlog grow without
limit — the same discipline as the stale cache.  Jobs are deduplicated
by a content key over (surface, points, sample count), so clients
polling the same query do not enqueue the same work twice.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict, deque
from typing import Callable, Dict, Optional, Sequence

__all__ = ["RefinementJob", "RefinementQueue", "refinement_job_key"]


def refinement_job_key(
    surface_key: str,
    width_nm: Sequence[float],
    cnt_density_per_um: Sequence[float],
    mc_samples: int,
) -> str:
    """Content key identifying one refinement work item.

    Coordinates are rounded to 1e-6 before hashing so float formatting
    differences on the wire (``178.0`` vs ``178.000000001``) do not
    defeat deduplication.
    """
    digest = hashlib.sha256()
    digest.update(surface_key.encode("utf-8"))
    digest.update(str(int(mc_samples)).encode("utf-8"))
    for w, d in zip(width_nm, cnt_density_per_um):
        digest.update(f"{round(float(w), 6)!r}:{round(float(d), 6)!r};".encode())
    return digest.hexdigest()[:16]


class RefinementJob:
    """One queued refinement: a surface key plus off-grid points."""

    __slots__ = ("key", "surface_key", "width_nm", "cnt_density_per_um",
                 "mc_samples")

    def __init__(
        self,
        surface_key: str,
        width_nm: Sequence[float],
        cnt_density_per_um: Sequence[float],
        mc_samples: int,
    ) -> None:
        self.surface_key = str(surface_key)
        self.width_nm = tuple(float(w) for w in width_nm)
        self.cnt_density_per_um = tuple(float(d) for d in cnt_density_per_um)
        if len(self.width_nm) != len(self.cnt_density_per_um):
            raise ValueError("width and density point lists must match")
        if not self.width_nm:
            raise ValueError("a refinement job needs at least one point")
        self.mc_samples = int(mc_samples)
        self.key = refinement_job_key(
            self.surface_key, self.width_nm, self.cnt_density_per_um,
            self.mc_samples,
        )


class RefinementQueue:
    """Bounded, deduplicating work queue with daemon worker threads.

    Parameters
    ----------
    refine:
        Callable executing one job — typically a closure over
        :meth:`YieldService.refine`.  Called as
        ``refine(surface_key, width_nm, cnt_density_per_um, mc_samples)``.
    capacity:
        Maximum number of *pending* jobs; :meth:`submit` rejects beyond
        this so the request path stays non-blocking and the backlog
        bounded.
    workers:
        Background worker thread count (daemon threads — they never
        block interpreter shutdown).
    done_capacity:
        How many completed job keys to remember for :meth:`is_done`
        checks (LRU-bounded like every other registry in the tier).
    """

    def __init__(
        self,
        refine: Callable[[str, Sequence[float], Sequence[float], int], object],
        capacity: int = 64,
        workers: int = 1,
        done_capacity: int = 1024,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self._refine = refine
        self.capacity = int(capacity)
        self.done_capacity = int(done_capacity)
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._pending: "deque[RefinementJob]" = deque()
        self._pending_keys: Dict[str, RefinementJob] = {}
        self._active_keys: Dict[str, RefinementJob] = {}
        self._done: "OrderedDict[str, bool]" = OrderedDict()
        self._closed = False
        self.submitted = 0
        self.rejected = 0
        self.duplicates = 0
        self.completed = 0
        self.failed = 0
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"refine-worker-{index}", daemon=True
            )
            for index in range(int(workers))
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Producer side (request handlers)
    # ------------------------------------------------------------------

    def submit(self, job: RefinementJob) -> str:
        """Try to enqueue a job; never blocks.

        Returns one of ``"queued"`` (accepted), ``"duplicate"`` (the
        same work is already pending, running, or done), or
        ``"rejected"`` (queue full or shut down).
        """
        with self._lock:
            if self._closed:
                self.rejected += 1
                return "rejected"
            if (
                job.key in self._pending_keys
                or job.key in self._active_keys
                or job.key in self._done
            ):
                self.duplicates += 1
                return "duplicate"
            if len(self._pending) >= self.capacity:
                self.rejected += 1
                return "rejected"
            self._pending.append(job)
            self._pending_keys[job.key] = job
            self.submitted += 1
            self._wakeup.notify()
            return "queued"

    def is_done(self, job_key: str) -> bool:
        """Whether a job key completed successfully."""
        with self._lock:
            return bool(self._done.get(job_key, False))

    def stats(self) -> Dict[str, object]:
        """Snapshot of queue depth and lifetime counters."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "pending": len(self._pending),
                "active": len(self._active_keys),
                "submitted": self.submitted,
                "rejected": self.rejected,
                "duplicates": self.duplicates,
                "completed": self.completed,
                "failed": self.failed,
                "workers": len(self._threads),
            }

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _next_job(self) -> Optional[RefinementJob]:
        with self._lock:
            while not self._pending and not self._closed:
                self._wakeup.wait()
            if self._closed and not self._pending:
                return None
            job = self._pending.popleft()
            del self._pending_keys[job.key]
            self._active_keys[job.key] = job
            return job

    def _worker(self) -> None:
        while True:
            job = self._next_job()
            if job is None:
                return
            ok = True
            try:
                self._refine(
                    job.surface_key, job.width_nm, job.cnt_density_per_um,
                    job.mc_samples,
                )
            except Exception:  # noqa: BLE001 — background boundary
                ok = False
            with self._lock:
                del self._active_keys[job.key]
                if ok:
                    self.completed += 1
                    self._done[job.key] = True
                    while len(self._done) > self.done_capacity:
                        self._done.popitem(last=False)
                else:
                    self.failed += 1
                self._wakeup.notify_all()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def drain(self, timeout_s: float = 10.0) -> bool:
        """Block until pending and active jobs are finished (tests).

        Returns ``False`` if the timeout elapsed with work still in
        flight.
        """
        import time

        deadline = time.monotonic() + float(timeout_s)
        with self._lock:
            while self._pending or self._active_keys:
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    return False
                self._wakeup.wait(timeout=remaining)
            return True

    def close(self) -> None:
        """Stop accepting work and let idle workers exit."""
        with self._lock:
            self._closed = True
            self._wakeup.notify_all()
