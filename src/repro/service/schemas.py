"""Wire schemas for the yield service: validation and JSON shaping.

The HTTP tier speaks strict RFC-8259 JSON.  This module owns both
directions of the boundary:

* :class:`QueryRequest` parses and validates a ``POST /v1/query`` body
  into typed arrays, rejecting malformed payloads with a
  :class:`SchemaError` (mapped to a 400 by the app) before any yield
  machinery runs;
* :func:`query_response` shapes a
  :class:`~repro.serving.service.QueryResult` — the same object the
  in-process API returns — into the response body, carrying the bounds
  unchanged plus the ``degraded``/``degradation`` flags on the wire.

Non-finite floats (the trivially correct ``[0, 1]`` clamp can produce
none, but MC standard errors could) are mapped to ``null`` so strict
parsers downstream never see a bare ``NaN`` literal.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

__all__ = ["SchemaError", "QueryRequest", "query_response", "json_safe"]

#: Hard cap on points per query batch; a request past this is a client
#: error, not a capacity problem (split the batch).
MAX_BATCH = 65_536

_FALLBACKS = ("exact", "mc", "none")


class SchemaError(ValueError):
    """A malformed or invalid request body (mapped to HTTP 400)."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _float_array(value: object, name: str) -> np.ndarray:
    _require(isinstance(value, (list, tuple, int, float)), f"{name} must be a number or list of numbers")
    try:
        array = np.atleast_1d(np.asarray(value, dtype=float)).ravel()
    except (TypeError, ValueError):
        raise SchemaError(f"{name} must contain only numbers") from None
    _require(array.size >= 1, f"{name} must not be empty")
    _require(array.size <= MAX_BATCH, f"{name} exceeds the {MAX_BATCH}-point batch cap")
    _require(bool(np.isfinite(array).all()), f"{name} must contain only finite numbers")
    return array


class QueryRequest:
    """A validated ``POST /v1/query`` body.

    Fields mirror :meth:`repro.serving.service.YieldService.query`:
    ``surface`` (a store key or unambiguous prefix), ``width_nm``,
    optional ``cnt_density_per_um`` (scalar broadcasts), optional
    ``device_count`` (scalar or per-query), ``fallback``
    (``"exact"``/``"mc"``/``"none"``), ``mc_samples``, ``deadline_s``.
    """

    def __init__(
        self,
        surface: str,
        width_nm: np.ndarray,
        cnt_density_per_um: Optional[np.ndarray],
        device_count: Union[float, np.ndarray],
        fallback: str,
        mc_samples: int,
        deadline_s: Optional[float],
    ) -> None:
        self.surface = surface
        self.width_nm = width_nm
        self.cnt_density_per_um = cnt_density_per_um
        self.device_count = device_count
        self.fallback = fallback
        self.mc_samples = mc_samples
        self.deadline_s = deadline_s

    @classmethod
    def from_payload(cls, payload: object) -> "QueryRequest":
        """Parse and validate a decoded JSON body.

        Raises :class:`SchemaError` naming the offending field on any
        type, shape, or range violation.
        """
        _require(isinstance(payload, dict), "request body must be a JSON object")
        known = {
            "surface", "width_nm", "cnt_density_per_um", "device_count",
            "fallback", "mc_samples", "deadline_s",
        }
        unknown = sorted(set(payload) - known)
        _require(not unknown, f"unknown fields: {', '.join(unknown)}")

        surface = payload.get("surface")
        _require(isinstance(surface, str) and surface,
                 "surface must be a non-empty string key")

        _require("width_nm" in payload, "width_nm is required")
        widths = _float_array(payload["width_nm"], "width_nm")
        _require(bool((widths > 0.0).all()), "width_nm must be positive")

        densities: Optional[np.ndarray] = None
        if payload.get("cnt_density_per_um") is not None:
            densities = _float_array(
                payload["cnt_density_per_um"], "cnt_density_per_um"
            )
            _require(bool((densities > 0.0).all()),
                     "cnt_density_per_um must be positive")
            _require(
                densities.size in (1, widths.size),
                "cnt_density_per_um must be a scalar or match width_nm "
                f"({densities.size} vs {widths.size})",
            )

        device_count: Union[float, np.ndarray] = 1.0
        if payload.get("device_count") is not None:
            counts = _float_array(payload["device_count"], "device_count")
            _require(bool((counts > 0.0).all()), "device_count must be positive")
            _require(
                counts.size in (1, widths.size),
                "device_count must be a scalar or match width_nm",
            )
            device_count = float(counts[0]) if counts.size == 1 else counts

        fallback = payload.get("fallback", "exact")
        _require(fallback in _FALLBACKS,
                 f"fallback must be one of {', '.join(_FALLBACKS)}")

        mc_samples = payload.get("mc_samples", 20_000)
        _require(
            isinstance(mc_samples, int) and not isinstance(mc_samples, bool)
            and mc_samples >= 1,
            "mc_samples must be a positive integer",
        )

        deadline_s = payload.get("deadline_s")
        if deadline_s is not None:
            _require(
                isinstance(deadline_s, (int, float))
                and not isinstance(deadline_s, bool)
                and math.isfinite(float(deadline_s)) and float(deadline_s) >= 0.0,
                "deadline_s must be a non-negative finite number",
            )
            deadline_s = float(deadline_s)

        return cls(
            surface=surface,
            width_nm=widths,
            cnt_density_per_um=densities,
            device_count=device_count,
            fallback=str(fallback),
            mc_samples=int(mc_samples),
            deadline_s=deadline_s,
        )


def json_safe(value: object) -> object:
    """Recursively convert arrays/NumPy scalars to RFC-8259-safe values.

    NumPy arrays become lists, NumPy scalars become Python scalars, and
    non-finite floats become ``None`` — strict parsers downstream must
    never see a bare ``NaN``/``Infinity`` literal.
    """
    if isinstance(value, np.ndarray):
        if value.dtype.kind == "f":
            # Hot path: the six bounds arrays of every query response.
            # One vectorized finiteness check beats per-element recursion.
            if np.isfinite(value).all():
                return value.tolist()
            safe = value.astype(object)
            safe[~np.isfinite(value.astype(float))] = None
            return safe.tolist()
        if value.dtype.kind in "iub":
            return value.tolist()
        return [json_safe(item) for item in value.tolist()]
    if isinstance(value, (np.floating,)):
        value = float(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    return value


def query_response(
    result: "object",
    refinement: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Shape a :class:`QueryResult` into the ``/v1/query`` body.

    The bounds arrays are passed through bit-for-bit (JSON float
    round-trip) from the in-process result, so the network tier serves
    exactly the contract :meth:`YieldService.query` guarantees.  The
    optional ``refinement`` block reports what the background MC queue
    did with this request's off-grid points.
    """
    body: Dict[str, object] = {
        "scenario": result.scenario,
        "n_queries": result.n_queries,
        "failure_probability": result.failure_probability,
        "failure_lower": result.failure_lower,
        "failure_upper": result.failure_upper,
        "chip_yield": result.chip_yield,
        "yield_lower": result.yield_lower,
        "yield_upper": result.yield_upper,
        "interpolated": result.interpolated,
        "degraded": bool(result.degraded),
        "degradation": list(result.degradation),
    }
    if refinement is not None:
        body["refinement"] = refinement
    return {key: json_safe(value) for key, value in body.items()}


def surface_entry(
    key: str, loaded: bool, description: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    """One row of the ``GET /v1/surfaces`` listing."""
    entry: Dict[str, object] = {"key": key, "loaded": bool(loaded)}
    if description is not None:
        entry.update(json_safe(description))
    return entry


def error_body(status: int, message: str) -> Dict[str, object]:
    """The uniform error payload every non-2xx response carries."""
    return {"error": {"status": int(status), "message": str(message)}}
