"""Batched query serving over precomputed yield surfaces.

The serving tier of the reproduction: load versioned
:class:`~repro.surface.surface.YieldSurface` artifacts through an LRU
cache, answer vectorized (width, CNT density, device count) query batches
by error-bounded log-space interpolation, and fall back gracefully to the
exact closed forms (or opt-in Monte Carlo refinement) when a query leaves
the swept grid.

* :mod:`repro.serving.interpolate` — the error-propagating interpolation
  layer.
* :mod:`repro.serving.cache` — the content-hash-keyed surface LRU.
* :mod:`repro.serving.service` — :class:`YieldService`, the in-process
  API behind the ``sweep`` / ``query`` CLI subcommands.
"""

from repro.serving.cache import LRUCache
from repro.serving.interpolate import InterpolatedLog, interpolate_log_failure
from repro.serving.service import QueryResult, YieldService

__all__ = [
    "LRUCache",
    "InterpolatedLog",
    "interpolate_log_failure",
    "QueryResult",
    "YieldService",
]
