"""LRU cache for loaded yield surfaces, keyed by content hash.

A serving process typically owns many persisted surfaces (one per
scenario × pitch family × corner) but answers most traffic from a
handful.  The cache holds the hot set in memory, evicts least-recently
used artifacts beyond capacity, and counts hits/misses/evictions so
benchmarks and operators can see the hit rate.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Generic, Optional, TypeVar

T = TypeVar("T")


class LRUCache(Generic[T]):
    """A minimal ordered-dict LRU with load-through semantics."""

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, T]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str, loader: Optional[Callable[[], T]] = None) -> Optional[T]:
        """Return the cached value, loading (and caching) it on a miss.

        Without a ``loader`` a miss simply returns ``None``.
        """
        if key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]
        self.misses += 1
        if loader is None:
            return None
        value = loader()
        self.put(key, value)
        return value

    def put(self, key: str, value: T) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / total if total else float("nan"),
        }
