"""LRU cache for loaded yield surfaces, keyed by content hash.

A serving process typically owns many persisted surfaces (one per
scenario × pitch family × corner) but answers most traffic from a
handful.  The cache holds the hot set in memory, evicts least-recently
used artifacts beyond capacity, and counts hits/misses/evictions so
benchmarks and operators can see the hit rate.

The cache is thread-safe, and load-through gets are **single-flight**:
when several threads miss on the same key concurrently, exactly one
runs the loader while the rest wait and share its result (or its
exception).  Loaders run outside the cache lock, so a slow disk load
never blocks unrelated keys.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Generic, Optional, TypeVar

T = TypeVar("T")


class _Flight:
    """One in-progress load that concurrent misses on a key share."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: object = None
        self.error: Optional[BaseException] = None


class LRUCache(Generic[T]):
    """A thread-safe ordered-dict LRU with single-flight load-through."""

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, T]" = OrderedDict()
        self._lock = threading.RLock()
        self._inflight: Dict[str, _Flight] = {}
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str, loader: Optional[Callable[[], T]] = None) -> Optional[T]:
        """Return the cached value, loading (and caching) it on a miss.

        Without a ``loader`` a miss simply returns ``None``.  With one,
        concurrent misses on the same key run the loader exactly once;
        if it raises, every waiter observes the same exception and the
        key stays uncached (the next get retries).

        Miss accounting is **per load**: only the caller that actually
        runs the loader (the single-flight leader, or a loader-less
        miss) counts a miss.  Followers that wait on the leader's flight
        and share its result count under ``coalesced`` instead, so
        ``misses`` tracks real loader executions.
        """
        with self._lock:
            if key in self._entries:
                self.hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            if loader is None:
                self.misses += 1
                return None
            flight = self._inflight.get(key)
            leader = flight is None
            if leader:
                self.misses += 1
                flight = _Flight()
                self._inflight[key] = flight
            else:
                self.coalesced += 1
        if not leader:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value  # type: ignore[return-value]
        try:
            value = loader()
        except BaseException as exc:
            flight.error = exc
            raise
        else:
            flight.value = value
            self.put(key, value)
            return value
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()

    def put(self, key: str, value: T) -> None:
        """Insert (or refresh) a key, evicting LRU entries past capacity."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def stats(self) -> dict:
        """Snapshot of capacity, occupancy, and hit/miss/eviction counts.

        ``misses`` counts loader executions (plus loader-less misses);
        single-flight followers appear under ``coalesced``.  The hit
        rate counts a coalesced get as served-from-memory, since no
        additional load was paid for it.
        """
        with self._lock:
            served = self.hits + self.coalesced
            total = served + self.misses
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "coalesced": self.coalesced,
                "evictions": self.evictions,
                "hit_rate": served / total if total else float("nan"),
            }
