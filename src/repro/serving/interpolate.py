"""Batched, error-bounded interpolation against a :class:`YieldSurface`.

The raw bilinear kernel lives with the grid machinery in
:mod:`repro.surface.grid`; this module adds what serving needs on top:

* log-space interpolation of the tabulated failure probability,
* a propagated per-query error bound combining the cell's probed
  interpolation residual with the (delta-method) statistical standard
  errors of the surface's Monte Carlo-built nodes, and
* the in-grid mask that routes out-of-range queries to the exact
  fallback path.

The statistical term uses the *maximum* of the four corner standard
errors: bilinear weights are convex, so the interpolated value's standard
deviation can never exceed the worst corner — a bound, not an estimate,
which is what the serving contract promises.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.surface.grid import bilinear_interpolate
from repro.surface.surface import YieldSurface

#: Absolute log-space slack added to every served error bound.  The
#: per-cell residual is *probed* (midpoints, 2X safety), so a cell whose
#: probed residual rounds to ~0 can still hide a curvature residual a few
#: hundred ulps wide; 1e-9 in log space (a 1e-9 relative probability —
#: orders of magnitude below any tolerance a sweep accepts) closes that
#: gap and makes "bounds never exclude the exact value" hold exactly.
FLOAT_SLACK_LOG = 1e-9


class InterpolatedLog(NamedTuple):
    """Interpolated log failure values with their error bounds."""

    log_failure: np.ndarray
    error_log: np.ndarray
    in_grid: np.ndarray


def interpolate_log_failure(
    surface: YieldSurface,
    width_nm: np.ndarray,
    cnt_density_per_um: np.ndarray,
    n_sigma: float = 4.0,
) -> InterpolatedLog:
    """Interpolate ``log p`` at query points with a propagated error bound.

    ``error_log`` bounds ``|log p_interp - log p_exact|``: the cell's
    probed interpolation residual plus ``n_sigma`` times the worst corner
    standard error (zero for closed-form-built surfaces, making the bound
    deterministic).  Out-of-grid queries get clamped values and
    ``in_grid=False`` — callers must not serve those without fallback.
    """
    if n_sigma < 0:
        raise ValueError(f"n_sigma must be non-negative, got {n_sigma}")
    widths = np.asarray(width_nm, dtype=float)
    densities = np.asarray(cnt_density_per_um, dtype=float)
    if widths.shape != densities.shape:
        raise ValueError("width and density query arrays must match in shape")

    log_p, i, j = bilinear_interpolate(
        surface.width_nm,
        surface.cnt_density_per_um,
        surface.log_failure,
        widths,
        densities,
    )
    log_p = np.minimum(log_p, 0.0)

    error_log = surface.interp_error_log[i, j] + FLOAT_SLACK_LOG
    se = surface.stat_se_log
    if n_sigma > 0.0 and surface.max_stat_se_log > 0.0:
        corner_se = np.maximum(
            np.maximum(se[i, j], se[i + 1, j]),
            np.maximum(se[i, j + 1], se[i + 1, j + 1]),
        )
        error_log = error_log + n_sigma * corner_se

    in_grid = surface.covers(widths, densities)
    return InterpolatedLog(log_failure=log_p, error_log=error_log, in_grid=in_grid)
