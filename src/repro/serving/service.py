"""The in-process yield query service.

:class:`YieldService` answers vectorized batched queries — arrays of
(width, CNT density, device count) — against precomputed
:class:`~repro.surface.surface.YieldSurface` artifacts:

* interpolated answers come from the error-bounded bilinear layer in
  :mod:`repro.serving.interpolate`, at millions of queries per second;
* surfaces load through an :class:`~repro.serving.cache.LRUCache` keyed
  by content hash, backed by an optional on-disk
  :class:`~repro.surface.surface.SurfaceStore`;
* queries outside the swept grid gracefully fall back to the exact
  closed-form evaluator the surface was built with (or, opt-in, to the
  tilted Monte Carlo estimator for families without closed forms).

Every answer carries guaranteed bounds: the failure probability interval
comes from the surface's per-cell error channel, and the chip-yield
interval is its monotone image through Eq. 2.3 / 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from repro.core.circuit_yield import yield_from_uniform_failure_probability_array
from repro.core.correlation import CorrelationParameters
from repro.serving.cache import LRUCache
from repro.serving.interpolate import interpolate_log_failure
from repro.surface.builder import ExactEvaluator, pitch_from_descriptor
from repro.surface.surface import SCENARIO_DEVICE, SurfaceStore, YieldSurface


@dataclass(frozen=True)
class QueryResult:
    """One batched query's answers with propagated error bounds.

    ``failure_probability`` is pF (device surfaces) or pRF (row-scenario
    surfaces); ``chip_yield`` is its Eq. 2.3 / 3.1 image at the queried
    device count.  The ``*_lower``/``*_upper`` arrays bound the exact
    value whenever the surface's per-cell error bounds hold (always, for
    closed-form sweeps; at the configured sigma level for MC sweeps).
    ``interpolated`` flags which entries were served from the grid — the
    rest went through the fallback path.
    """

    scenario: str
    failure_probability: np.ndarray
    failure_lower: np.ndarray
    failure_upper: np.ndarray
    chip_yield: np.ndarray
    yield_lower: np.ndarray
    yield_upper: np.ndarray
    interpolated: np.ndarray

    @property
    def n_queries(self) -> int:
        return int(self.failure_probability.size)

    @property
    def n_fallback(self) -> int:
        return int(np.size(self.interpolated) - np.count_nonzero(self.interpolated))

    def bounds_contain(self, exact_failure_probability: np.ndarray) -> np.ndarray:
        """Elementwise check that the failure bounds contain exact values."""
        exact = np.asarray(exact_failure_probability, dtype=float)
        return (exact >= self.failure_lower) & (exact <= self.failure_upper)


class YieldService:
    """Serves batched yield queries from cached surfaces with fallbacks.

    Parameters
    ----------
    store:
        Optional on-disk surface store; keys not already registered
        in-memory load through the LRU from here.
    cache_capacity:
        Maximum number of surfaces held in memory.
    n_sigma:
        Sigma multiplier applied to statistical standard errors (both the
        surface nodes' and the fallback estimators') when forming bounds.
    """

    def __init__(
        self,
        store: Optional[Union[SurfaceStore, str]] = None,
        cache_capacity: int = 8,
        n_sigma: float = 4.0,
    ) -> None:
        if isinstance(store, str):
            store = SurfaceStore(store)
        self.store = store
        self.cache: LRUCache[YieldSurface] = LRUCache(capacity=cache_capacity)
        self.n_sigma = float(n_sigma)
        self._evaluators: Dict[str, ExactEvaluator] = {}
        self._pinned: Dict[str, YieldSurface] = {}
        self.queries_served = 0

    # ------------------------------------------------------------------
    # Surface access
    # ------------------------------------------------------------------

    def register(self, surface: YieldSurface, persist: bool = False) -> str:
        """Adopt a surface into the cache (optionally persisting it).

        The returned key stays queryable for the service's lifetime:
        persisted surfaces reload through the store after an LRU
        eviction, while unpersisted ones are pinned outside the LRU (the
        caller handed us the only copy, so eviction must not orphan the
        key it got back).
        """
        key = surface.key
        self.cache.put(key, surface)
        if persist:
            if self.store is None:
                raise ValueError("cannot persist without a SurfaceStore")
            self.store.save(surface)
        else:
            self._pinned[key] = surface
        return key

    def surface(self, key_or_surface: Union[str, YieldSurface]) -> YieldSurface:
        """Resolve a key (or pass a surface through) via the LRU cache.

        Exact keys hit the in-memory cache first (so registered-but-not-
        persisted surfaces stay addressable on a store-backed service);
        anything else resolves through the store, where unambiguous key
        prefixes are accepted.
        """
        if isinstance(key_or_surface, YieldSurface):
            return key_or_surface
        key = key_or_surface
        if key in self.cache:
            return self.cache.get(key)
        if key in self._pinned:
            return self._pinned[key]
        if self.store is not None:
            resolved = self.store.path_for(key).stem
            surface = self.cache.get(resolved, lambda: self.store.load(resolved))
            if surface is not None:
                return surface
        raise KeyError(f"surface {key!r} is neither cached nor in a store")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(
        self,
        surface: Union[str, YieldSurface],
        width_nm: np.ndarray,
        cnt_density_per_um: Optional[np.ndarray] = None,
        device_count: Union[float, np.ndarray] = 1.0,
        fallback: str = "exact",
        mc_samples: int = 20_000,
    ) -> QueryResult:
        """Answer a batched yield query.

        Parameters
        ----------
        surface:
            A surface or a (prefix of a) store key.
        width_nm:
            Device widths, any shape (flattened internally).
        cnt_density_per_um:
            CNT densities per query; defaults to the surface's reference
            density (the pitch family's nominal 1/µS).
        device_count:
            M for device surfaces, Mmin for row-scenario surfaces (the
            row count KR = Mmin / MRmin is derived from the surface's
            correlation metadata); scalar or per-query array.
        fallback:
            ``"exact"`` (default) answers out-of-grid queries with the
            surface's exact evaluator; ``"mc"`` opts into tilted
            Monte Carlo refinement instead; ``"none"`` raises if any
            query leaves the grid.
        """
        if fallback not in ("exact", "mc", "none"):
            raise ValueError(f"unknown fallback mode {fallback!r}")
        surf = self.surface(surface)
        widths = np.atleast_1d(np.asarray(width_nm, dtype=float)).ravel()
        if cnt_density_per_um is None:
            densities = np.full(widths.shape, self._reference_density(surf))
        else:
            densities = np.atleast_1d(
                np.asarray(cnt_density_per_um, dtype=float)
            ).ravel()
            if densities.size == 1 and widths.size > 1:
                densities = np.full(widths.shape, densities[0])
        if densities.shape != widths.shape:
            raise ValueError("width and density query arrays must match in shape")

        log_p, err_log, in_grid = interpolate_log_failure(
            surf, widths, densities, n_sigma=self.n_sigma
        )

        if not in_grid.all():
            if fallback == "none":
                n_out = int(in_grid.size - np.count_nonzero(in_grid))
                raise ValueError(
                    f"{n_out} queries fall outside the surface grid "
                    "and fallback is disabled"
                )
            outside = ~in_grid
            log_exact, err_exact = self._fallback_values(
                surf, widths[outside], densities[outside], fallback, mc_samples
            )
            log_p = log_p.copy()
            err_log = err_log.copy()
            log_p[outside] = log_exact
            err_log[outside] = err_exact

        p = np.exp(np.minimum(log_p, 0.0))
        p_lower = np.exp(np.minimum(log_p - err_log, 0.0))
        p_upper = np.minimum(np.exp(log_p + err_log), 1.0)

        counts = self._effective_counts(surf, device_count)
        chip_yield = yield_from_uniform_failure_probability_array(p, counts)
        yield_lower = yield_from_uniform_failure_probability_array(p_upper, counts)
        yield_upper = yield_from_uniform_failure_probability_array(p_lower, counts)

        self.queries_served += int(widths.size)
        return QueryResult(
            scenario=surf.scenario,
            failure_probability=p,
            failure_lower=p_lower,
            failure_upper=p_upper,
            chip_yield=chip_yield,
            yield_lower=yield_lower,
            yield_upper=yield_upper,
            interpolated=in_grid,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _reference_density(surface: YieldSurface) -> float:
        pitch = pitch_from_descriptor(surface.metadata["pitch"])
        return 1000.0 / pitch.mean_nm

    @staticmethod
    def _effective_counts(
        surface: YieldSurface, device_count: Union[float, np.ndarray]
    ) -> np.ndarray:
        counts = np.asarray(device_count, dtype=float)
        if surface.scenario == SCENARIO_DEVICE:
            return counts
        params = CorrelationParameters(**surface.metadata["correlation"])
        return counts / params.devices_per_row

    def _evaluator(
        self, surface: YieldSurface, method: str, mc_samples: int
    ) -> ExactEvaluator:
        # MC evaluators are cached per sample count: their internal
        # per-(W, ρ) result cache must never hand a 200-sample estimate to
        # a caller who explicitly paid for more.
        cache_key = (
            f"{surface.key}:{method}:{mc_samples if method == 'mc' else ''}"
        )
        evaluator = self._evaluators.get(cache_key)
        if evaluator is None:
            evaluator = ExactEvaluator.from_surface(surface)
            if method == "mc":
                evaluator.method = "tilted"
                evaluator.mc_samples = int(mc_samples)
            self._evaluators[cache_key] = evaluator
        return evaluator

    def _fallback_values(
        self,
        surface: YieldSurface,
        widths: np.ndarray,
        densities: np.ndarray,
        fallback: str,
        mc_samples: int,
    ) -> "tuple[np.ndarray, np.ndarray]":
        evaluator = self._evaluator(surface, fallback, int(mc_samples))
        log_exact, se_log = evaluator.points(widths, densities)
        return log_exact, self.n_sigma * se_log
