"""The in-process yield query service.

:class:`YieldService` answers vectorized batched queries — arrays of
(width, CNT density, device count) — against precomputed
:class:`~repro.surface.surface.YieldSurface` artifacts:

* interpolated answers come from the error-bounded bilinear layer in
  :mod:`repro.serving.interpolate`, at millions of queries per second;
* surfaces load through an :class:`~repro.serving.cache.LRUCache` keyed
  by content hash, backed by an optional on-disk
  :class:`~repro.surface.surface.SurfaceStore`;
* queries outside the swept grid gracefully fall back to the exact
  closed-form evaluator the surface was built with (or, opt-in, to the
  tilted Monte Carlo estimator for families without closed forms).

Every answer carries guaranteed bounds: the failure probability interval
comes from the surface's per-cell error channel, and the chip-yield
interval is its monotone image through Eq. 2.3 / 3.1.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.core.circuit_yield import yield_from_uniform_failure_probability_array
from repro.core.correlation import CorrelationParameters
from repro.resilience.checkpoint import CorruptArtifactError
from repro.resilience.degrade import CircuitBreaker, Deadline
from repro.resilience.guards import check_finite
from repro.serving.cache import LRUCache
from repro.serving.interpolate import interpolate_log_failure
from repro.surface.builder import ExactEvaluator, pitch_from_descriptor
from repro.surface.surface import SCENARIO_DEVICE, SurfaceStore, YieldSurface


@dataclass(frozen=True)
class QueryResult:
    """One batched query's answers with propagated error bounds.

    ``failure_probability`` is pF (device surfaces) or pRF (row-scenario
    surfaces); ``chip_yield`` is its Eq. 2.3 / 3.1 image at the queried
    device count.  The ``*_lower``/``*_upper`` arrays bound the exact
    value whenever the surface's per-cell error bounds hold (always, for
    closed-form sweeps; at the configured sigma level for MC sweeps).
    ``interpolated`` flags which entries were served from the grid — the
    rest went through the fallback path.

    ``degradation`` records whether (and how) the answer was served in a
    degraded mode: ``"none"`` is the healthy path, ``"stale_cache"``
    means the artifact store failed (corrupt file, open circuit breaker)
    and a previously loaded copy of the surface answered instead, and
    ``"deadline_clamped"`` means the per-query deadline expired before
    the exact fallback could run, so out-of-grid queries were answered
    at the nearest grid point with trivially correct ``[0, 1]`` bounds.
    Degraded answers are still bounded — the flags exist so callers can
    tell guaranteed-tight answers from best-effort ones.
    """

    scenario: str
    failure_probability: np.ndarray
    failure_lower: np.ndarray
    failure_upper: np.ndarray
    chip_yield: np.ndarray
    yield_lower: np.ndarray
    yield_upper: np.ndarray
    interpolated: np.ndarray
    degraded: bool = False
    degradation: Tuple[str, ...] = field(default=("none",))

    @property
    def n_queries(self) -> int:
        return int(self.failure_probability.size)

    @property
    def n_fallback(self) -> int:
        return int(np.size(self.interpolated) - np.count_nonzero(self.interpolated))

    def bounds_contain(self, exact_failure_probability: np.ndarray) -> np.ndarray:
        """Elementwise check that the failure bounds contain exact values."""
        exact = np.asarray(exact_failure_probability, dtype=float)
        return (exact >= self.failure_lower) & (exact <= self.failure_upper)


class YieldService:
    """Serves batched yield queries from cached surfaces with fallbacks.

    Parameters
    ----------
    store:
        Optional on-disk surface store; keys not already registered
        in-memory load through the LRU from here.
    cache_capacity:
        Maximum number of surfaces held in memory.
    n_sigma:
        Sigma multiplier applied to statistical standard errors (both the
        surface nodes' and the fallback estimators') when forming bounds.
    breaker:
        Circuit breaker guarding store loads; after repeated load
        failures the store is skipped for a cooldown and keys are served
        from the stale cache directly.  Defaults to a 3-failure, 30 s
        breaker.
    deadline_s:
        Default per-query wall-clock budget.  ``None`` (the default)
        means unbounded; :meth:`query` can override per call.
    stale_capacity:
        Maximum number of surfaces retained in the stale cache (the
        last-resort rung of the degradation ladder).  Defaults to four
        times ``cache_capacity``.  The stale cache is LRU-ordered, so a
        long-lived server that churns through many surfaces keeps the
        recently served ones available for degraded answers without
        pinning every surface it ever loaded.
    """

    def __init__(
        self,
        store: Optional[Union[SurfaceStore, str, "os.PathLike[str]"]] = None,
        cache_capacity: int = 8,
        n_sigma: float = 4.0,
        breaker: Optional[CircuitBreaker] = None,
        deadline_s: Optional[float] = None,
        stale_capacity: Optional[int] = None,
    ) -> None:
        if isinstance(store, (str, os.PathLike)):
            store = SurfaceStore(store)
        self.store = store
        self.cache: LRUCache[YieldSurface] = LRUCache(capacity=cache_capacity)
        self.n_sigma = float(n_sigma)
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.deadline_s = deadline_s
        if stale_capacity is None:
            stale_capacity = 4 * int(cache_capacity)
        if stale_capacity < 1:
            raise ValueError("stale_capacity must be at least 1")
        self.stale_capacity = int(stale_capacity)
        # One lock covers every piece of service-level mutable state the
        # LRU does not already guard: the pinned/stale registries, the
        # evaluator cache, and the query counters.  The network tier
        # serves many concurrent clients through one service instance.
        self._lock = threading.Lock()
        self._evaluators: Dict[str, ExactEvaluator] = {}
        self._pinned: Dict[str, YieldSurface] = {}
        self._stale: "OrderedDict[str, YieldSurface]" = OrderedDict()
        self.queries_served = 0
        self.degraded_queries = 0

    # ------------------------------------------------------------------
    # Surface access
    # ------------------------------------------------------------------

    def register(self, surface: YieldSurface, persist: bool = False) -> str:
        """Adopt a surface into the cache (optionally persisting it).

        The returned key stays queryable for the service's lifetime:
        persisted surfaces reload through the store after an LRU
        eviction, while unpersisted ones are pinned outside the LRU (the
        caller handed us the only copy, so eviction must not orphan the
        key it got back).
        """
        key = surface.key
        self.cache.put(key, surface)
        if persist:
            if self.store is None:
                raise ValueError("cannot persist without a SurfaceStore")
            self.store.save(surface)
        else:
            with self._lock:
                self._pinned[key] = surface
        return key

    def surface(self, key_or_surface: Union[str, YieldSurface]) -> YieldSurface:
        """Resolve a key (or pass a surface through) via the LRU cache.

        Exact keys hit the in-memory cache first (so registered-but-not-
        persisted surfaces stay addressable on a store-backed service);
        anything else resolves through the store, where unambiguous key
        prefixes are accepted.  When the store fails (corrupt artifact,
        open circuit breaker) a previously loaded copy is served from
        the stale cache instead — use :meth:`resolve` to observe which
        path answered.
        """
        return self.resolve(key_or_surface)[0]

    def resolve(
        self, key_or_surface: Union[str, YieldSurface]
    ) -> Tuple[YieldSurface, str]:
        """Resolve a surface plus the degradation tag of the path taken.

        The ladder is: in-memory LRU / pinned registry → on-disk store
        (guarded by the circuit breaker, loads verified and quarantined
        on corruption) → stale cache of previously served copies.  The
        returned tag is ``"none"`` for the first two rungs and
        ``"stale_cache"`` for the last.  Raises ``KeyError`` (unknown
        key) or :class:`CorruptArtifactError` (corrupt artifact, no
        stale copy) when every rung fails.
        """
        if isinstance(key_or_surface, YieldSurface):
            return key_or_surface, "none"
        key = key_or_surface
        if key in self.cache:
            return self.cache.get(key), "none"
        with self._lock:
            pinned = self._pinned.get(key)
        if pinned is not None:
            return pinned, "none"
        failure: Optional[Exception] = None
        if self.store is not None:
            if self.breaker.allow():
                # The breaker may have granted a half-open probe; every
                # path below must settle it exactly once.  Success is
                # recorded only when the store actually performed a load
                # — a prefix query that resolves to a surface already in
                # the LRU says nothing about store health and must not
                # close a breaker that should stay open.
                loaded = False

                def _load() -> YieldSurface:
                    nonlocal loaded
                    loaded = True
                    return self.store.load(resolved)

                try:
                    resolved = self.store.path_for(key).stem
                    surface = self.cache.get(resolved, _load)
                    if loaded:
                        self.breaker.record_success()
                    else:
                        self.breaker.release()
                    self._remember_stale(resolved, surface)
                    return surface, "none"
                except KeyError as exc:
                    # A missing key is not a store fault: don't trip the
                    # breaker, but a quarantined artifact's key goes
                    # missing too, so still consult the stale cache.
                    self.breaker.release()
                    failure = exc
                except (CorruptArtifactError, OSError, ValueError) as exc:
                    self.breaker.record_failure()
                    failure = exc
            stale = self._stale_for(key)
            if stale is not None:
                return stale, "stale_cache"
        if failure is not None:
            raise failure
        raise KeyError(f"surface {key!r} is neither cached nor in a store")

    def _remember_stale(self, key: str, surface: YieldSurface) -> None:
        """Retain a served surface for degraded answers, LRU-bounded.

        The stale cache is the last rung of the degradation ladder; it
        must not grow without bound in a long-lived server, so it keeps
        at most ``stale_capacity`` surfaces in recency order.
        """
        with self._lock:
            if key in self._stale:
                self._stale.move_to_end(key)
            self._stale[key] = surface
            while len(self._stale) > self.stale_capacity:
                self._stale.popitem(last=False)

    def _stale_for(self, key: str) -> Optional[YieldSurface]:
        """Find a stale copy by exact key or unambiguous prefix."""
        with self._lock:
            match: Optional[str] = None
            if key in self._stale:
                match = key
            else:
                matches = [k for k in self._stale if k.startswith(key)]
                if len(matches) == 1:
                    match = matches[0]
            if match is None:
                return None
            self._stale.move_to_end(match)
            return self._stale[match]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(
        self,
        surface: Union[str, YieldSurface],
        width_nm: np.ndarray,
        cnt_density_per_um: Optional[np.ndarray] = None,
        device_count: Union[float, np.ndarray] = 1.0,
        fallback: str = "exact",
        mc_samples: int = 20_000,
        deadline_s: Optional[float] = None,
    ) -> QueryResult:
        """Answer a batched yield query.

        Parameters
        ----------
        surface:
            A surface or a (prefix of a) store key.
        width_nm:
            Device widths, any shape (flattened internally).
        cnt_density_per_um:
            CNT densities per query; defaults to the surface's reference
            density (the pitch family's nominal 1/µS).
        device_count:
            M for device surfaces, Mmin for row-scenario surfaces (the
            row count KR = Mmin / MRmin is derived from the surface's
            correlation metadata); scalar or per-query array.
        fallback:
            ``"exact"`` (default) answers out-of-grid queries with the
            surface's exact evaluator; ``"mc"`` opts into tilted
            Monte Carlo refinement instead; ``"none"`` raises if any
            query leaves the grid.
        deadline_s:
            Wall-clock budget for this query (overrides the service
            default).  When the budget runs out before the exact
            fallback has run, out-of-grid entries are answered at the
            nearest grid point with trivially correct ``[0, 1]`` bounds
            and the result is flagged ``"deadline_clamped"``.
        """
        if fallback not in ("exact", "mc", "none"):
            raise ValueError(f"unknown fallback mode {fallback!r}")
        deadline = Deadline(deadline_s if deadline_s is not None else self.deadline_s)
        degradation = []
        surf, resolution = self.resolve(surface)
        if resolution != "none":
            degradation.append(resolution)
        widths = np.atleast_1d(np.asarray(width_nm, dtype=float)).ravel()
        if cnt_density_per_um is None:
            densities = np.full(widths.shape, self._reference_density(surf))
        else:
            densities = np.atleast_1d(
                np.asarray(cnt_density_per_um, dtype=float)
            ).ravel()
            if densities.size == 1 and widths.size > 1:
                densities = np.full(widths.shape, densities[0])
        if densities.shape != widths.shape:
            raise ValueError("width and density query arrays must match in shape")

        log_p, err_log, in_grid = interpolate_log_failure(
            surf, widths, densities, n_sigma=self.n_sigma
        )

        if not in_grid.all():
            if fallback == "none":
                n_out = int(in_grid.size - np.count_nonzero(in_grid))
                raise ValueError(
                    f"{n_out} queries fall outside the surface grid "
                    "and fallback is disabled"
                )
            outside = ~in_grid
            if deadline.expired:
                # Out of time for the exact evaluator: answer at the
                # nearest grid point and widen the bounds to the
                # trivially correct [0, 1] so the contract still holds.
                degradation.append("deadline_clamped")
                w_clip = np.clip(
                    widths[outside], surf.width_nm[0], surf.width_nm[-1]
                )
                d_clip = np.clip(
                    densities[outside],
                    surf.cnt_density_per_um[0],
                    surf.cnt_density_per_um[-1],
                )
                log_near, _, _ = interpolate_log_failure(
                    surf, w_clip, d_clip, n_sigma=self.n_sigma
                )
                log_p = log_p.copy()
                err_log = err_log.copy()
                log_p[outside] = log_near
                err_log[outside] = np.inf
            else:
                log_exact, err_exact = self._fallback_values(
                    surf, widths[outside], densities[outside], fallback, mc_samples
                )
                log_p = log_p.copy()
                err_log = err_log.copy()
                log_p[outside] = log_exact
                err_log[outside] = err_exact

        check_finite(log_p, "serving.query.log_failure", allow_inf=True)
        p = np.exp(np.minimum(log_p, 0.0))
        p_lower = np.exp(np.minimum(log_p - err_log, 0.0))
        p_upper = np.minimum(np.exp(log_p + err_log), 1.0)

        counts = self._effective_counts(surf, device_count)
        chip_yield = yield_from_uniform_failure_probability_array(p, counts)
        yield_lower = yield_from_uniform_failure_probability_array(p_upper, counts)
        yield_upper = yield_from_uniform_failure_probability_array(p_lower, counts)

        with self._lock:
            # Both counters are per-entry: a degraded batch degrades every
            # answer in it, so the two stay directly comparable
            # (degraded_queries / queries_served is a meaningful ratio).
            self.queries_served += int(widths.size)
            if degradation:
                self.degraded_queries += int(widths.size)
        return QueryResult(
            scenario=surf.scenario,
            failure_probability=p,
            failure_lower=p_lower,
            failure_upper=p_upper,
            chip_yield=chip_yield,
            yield_lower=yield_lower,
            yield_upper=yield_upper,
            interpolated=in_grid,
            degraded=bool(degradation),
            degradation=tuple(degradation) if degradation else ("none",),
        )

    # ------------------------------------------------------------------
    # Refinement and diagnostics
    # ------------------------------------------------------------------

    def refine(
        self,
        surface: Union[str, YieldSurface],
        width_nm: np.ndarray,
        cnt_density_per_um: np.ndarray,
        mc_samples: int = 20_000,
    ) -> int:
        """Warm the Monte Carlo evaluator cache for off-grid points.

        Runs the tilted MC estimator for the given (width, density)
        points and stores the results in the per-surface evaluator's
        coordinate-keyed cache, so later :meth:`query` calls with
        ``fallback="mc"`` at the same points answer without sampling.
        The network tier (:mod:`repro.service`) calls this from a
        bounded background queue so request handling never blocks on
        sampling.  Returns the number of points evaluated.
        """
        surf, _ = self.resolve(surface)
        widths = np.atleast_1d(np.asarray(width_nm, dtype=float)).ravel()
        densities = np.atleast_1d(
            np.asarray(cnt_density_per_um, dtype=float)
        ).ravel()
        if densities.shape != widths.shape:
            raise ValueError("width and density arrays must match in shape")
        self._fallback_values(surf, widths, densities, "mc", int(mc_samples))
        return int(widths.size)

    def pinned_surfaces(self) -> Dict[str, YieldSurface]:
        """Copy of the pinned registry (registered, not persisted).

        These surfaces are addressable for the service's lifetime even
        after LRU eviction; the network tier lists them next to the
        store's artifacts.
        """
        with self._lock:
            return dict(self._pinned)

    def stats(self) -> Dict[str, object]:
        """Snapshot of serving counters and ladder state for operators.

        Combines the per-entry query counters with the LRU cache's
        hit/miss statistics, the circuit breaker's state, and the sizes
        of the pinned and stale registries — everything the network
        tier's metrics endpoint reports about the in-process service.
        """
        with self._lock:
            counters = {
                "queries_served": self.queries_served,
                "degraded_queries": self.degraded_queries,
                "pinned_surfaces": len(self._pinned),
                "stale_surfaces": len(self._stale),
                "stale_capacity": self.stale_capacity,
                "evaluators": len(self._evaluators),
            }
        counters["cache"] = self.cache.stats()
        counters["breaker"] = self.breaker.stats()
        return counters

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _reference_density(surface: YieldSurface) -> float:
        pitch = pitch_from_descriptor(surface.metadata["pitch"])
        return 1000.0 / pitch.mean_nm

    @staticmethod
    def _effective_counts(
        surface: YieldSurface, device_count: Union[float, np.ndarray]
    ) -> np.ndarray:
        counts = np.asarray(device_count, dtype=float)
        if surface.scenario == SCENARIO_DEVICE:
            return counts
        params = CorrelationParameters(**surface.metadata["correlation"])
        return counts / params.devices_per_row

    def _evaluator(
        self, surface: YieldSurface, method: str, mc_samples: int
    ) -> ExactEvaluator:
        # MC evaluators are cached per sample count: their internal
        # per-(W, ρ) result cache must never hand a 200-sample estimate to
        # a caller who explicitly paid for more.
        cache_key = (
            f"{surface.key}:{method}:{mc_samples if method == 'mc' else ''}"
        )
        with self._lock:
            evaluator = self._evaluators.get(cache_key)
            if evaluator is None:
                evaluator = ExactEvaluator.from_surface(surface)
                if method == "mc":
                    evaluator.method = "tilted"
                    evaluator.mc_samples = int(mc_samples)
                self._evaluators[cache_key] = evaluator
        return evaluator

    def _fallback_values(
        self,
        surface: YieldSurface,
        widths: np.ndarray,
        densities: np.ndarray,
        fallback: str,
        mc_samples: int,
    ) -> "tuple[np.ndarray, np.ndarray]":
        evaluator = self._evaluator(surface, fallback, int(mc_samples))
        log_exact, se_log = evaluator.points(widths, densities)
        return log_exact, self.n_sigma * se_log
