"""Precomputed yield-surface artifacts — the serving tier's data plane.

Downstream co-optimization loops ask the same question millions of times:
given a correlation scenario, a device width W, a CNT density and a device
count M, what is the chip yield?  Re-running even the closed forms (let
alone the Monte Carlo engines) per query is orders of magnitude too slow
for that loop, so this package precomputes the answer:

* :mod:`repro.surface.grid` — sweep axes, midpoint refinement and the raw
  bilinear kernel.
* :mod:`repro.surface.builder` — sweeps the Eq. 2.2/3.1 closed forms (or
  the tilted importance sampler where no closed form exists) over
  structured (scenario, W, density) grids, probing and refining until the
  interpolation error bound meets tolerance.
* :mod:`repro.surface.surface` — the versioned, content-hashed, disk-
  persisted :class:`YieldSurface` artifact and its :class:`SurfaceStore`.
* :mod:`repro.surface.eta_family` — a removal-efficiency (eta) axis over
  2D surfaces for the metallic-short failure mode, served with the same
  probed error-bound contract.

The batched query layer on top lives in :mod:`repro.serving`.
"""

from repro.surface.grid import GridAxis, bilinear_interpolate
from repro.surface.surface import (
    LOG_FLOOR,
    SCENARIO_DEVICE,
    SURFACE_FORMAT_VERSION,
    SurfaceStore,
    YieldSurface,
)
from repro.surface.builder import (
    ALL_SCENARIOS,
    BuildReport,
    ExactEvaluator,
    SurfaceBuilder,
    SweepSpec,
    density_to_mean_pitch_nm,
    pitch_descriptor,
    pitch_from_descriptor,
)
from repro.surface.eta_family import EtaQuery, EtaSurfaceFamily

__all__ = [
    "EtaQuery",
    "EtaSurfaceFamily",
    "GridAxis",
    "bilinear_interpolate",
    "YieldSurface",
    "SurfaceStore",
    "SCENARIO_DEVICE",
    "SURFACE_FORMAT_VERSION",
    "LOG_FLOOR",
    "ALL_SCENARIOS",
    "BuildReport",
    "ExactEvaluator",
    "SurfaceBuilder",
    "SweepSpec",
    "density_to_mean_pitch_nm",
    "pitch_descriptor",
    "pitch_from_descriptor",
]
