"""Sweeping the closed forms (and MC estimators) into yield surfaces.

The builder walks a (width, CNT density) mesh and tabulates the log
failure probability of one scenario:

* **Closed-form path** — per density column, rescale the pitch family
  (:meth:`~repro.growth.pitch.PitchDistribution.with_mean`), build the
  count model and evaluate ``log pF`` vectorised
  (:meth:`~repro.core.failure.CNFETFailureModel.log_failure_probabilities`),
  then map device pF to the scenario's row failure probability with the
  vectorised Table 1 closed forms.

* **Tilted Monte Carlo path** — for pitch families whose n-fold sum CDF
  is only approximate (truncated normal), or on request, each column is
  estimated by the exponentially tilted importance sampler
  (:func:`~repro.montecarlo.rare_event.estimate_device_failure_grid`);
  the delta-method standard errors ride along into ``stat_se_log``.

**Interpolation-error probing.**  After each sweep the builder evaluates
the exact model on the midpoint-interleaved mesh, interpolates the coarse
grid onto it, and records ``safety_factor ×`` the worst residual per cell
as that cell's error bound.  Cells above ``tolerance_log`` get their
midpoints promoted to real grid lines and the sweep repeats — the probe
evaluations are cached, so a refinement round costs no re-evaluation of
points it has already touched.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.correlation import (
    CorrelationParameters,
    LayoutScenario,
    propagate_row_failure_se,
    scenario_row_failure_probabilities,
)
from repro.core.count_model import count_model_from_pitch
from repro.core.failure import CNFETFailureModel
from repro.growth.pitch import (
    DeterministicPitch,
    ExponentialPitch,
    GammaPitch,
    PitchDistribution,
    TruncatedNormalPitch,
)
from repro.surface.grid import GridAxis, bilinear_interpolate
from repro.surface.surface import LOG_FLOOR, SCENARIO_DEVICE, YieldSurface
from repro.units import ensure_positive, ensure_probability, per_um_to_per_nm

#: Every queryable scenario tag: the device pF surface plus Table 1's three.
ALL_SCENARIOS = (SCENARIO_DEVICE,) + tuple(s.value for s in LayoutScenario)

#: Absolute floor on the probed per-cell error bound (log space), well above
#: float noise in the residual arithmetic and far below any useful tolerance.
INTERP_ERROR_FLOOR = 1e-9

#: Sigma multiplier on the probe points' statistical noise when deciding
#: whether a cell's residual reflects real interpolation error: refinement
#: can shrink curvature error but never the Monte Carlo noise floor, so
#: cells whose residual is statistically indistinguishable from that floor
#: must not be refined (they would split forever without converging).
REFINE_NOISE_SIGMA = 4.0

_PITCH_FAMILIES = {
    cls.__name__: cls
    for cls in (DeterministicPitch, ExponentialPitch, GammaPitch, TruncatedNormalPitch)
}


def pitch_descriptor(pitch: PitchDistribution) -> Dict[str, object]:
    """JSON-serialisable identity of a pitch family (for surface metadata)."""
    try:
        params = dataclasses.asdict(pitch)
    except TypeError as exc:
        raise TypeError(
            f"{type(pitch).__name__} is not a dataclass pitch family and "
            "cannot be persisted in surface metadata"
        ) from exc
    return {"family": type(pitch).__name__, "params": params}


def pitch_from_descriptor(descriptor: Dict[str, object]) -> PitchDistribution:
    """Rebuild the pitch family recorded by :func:`pitch_descriptor`."""
    family = descriptor.get("family")
    cls = _PITCH_FAMILIES.get(str(family))
    if cls is None:
        raise ValueError(f"unknown pitch family {family!r}")
    return cls(**descriptor["params"])


def density_to_mean_pitch_nm(cnt_density_per_um: float) -> float:
    """CNT density ρ (tubes/µm) to mean pitch µS (nm): µS = 1 / ρ."""
    ensure_positive(cnt_density_per_um, "cnt_density_per_um")
    return 1.0 / per_um_to_per_nm(cnt_density_per_um)


@dataclass
class SweepSpec:
    """Everything that defines one surface sweep.

    The default axes bracket the paper's 45 nm operating region: widths
    from sub-minimum (20 nm) past the uncorrelated Wmin (≈170 nm with the
    calibrated Poisson model), densities around the nominal 250 CNTs/µm
    (µS = 4 nm) with head-room for wafer-level density drift.
    """

    scenario: str = SCENARIO_DEVICE
    width_axis: GridAxis = field(
        default_factory=lambda: GridAxis.from_range("width_nm", 20.0, 400.0, 33)
    )
    density_axis: GridAxis = field(
        default_factory=lambda: GridAxis.from_range(
            "cnt_density_per_um", 125.0, 500.0, 17
        )
    )
    pitch: PitchDistribution = field(
        default_factory=lambda: ExponentialPitch(mean_pitch_nm=4.0)
    )
    per_cnt_failure: float = 0.5333333333333333
    correlation: CorrelationParameters = field(default_factory=CorrelationParameters)
    method: str = "auto"
    tolerance_log: float = 1e-3
    max_refinement_rounds: int = 3
    safety_factor: float = 2.0
    mc_samples: int = 20_000
    seed: int = 20100613
    #: Metallic fraction p_m and removal efficiency eta of the short
    #: failure mode (:mod:`repro.device.shorts`).  The defaults give a
    #: per-tube surviving-short probability of 0 — the opens-only sweep
    #: every pre-shorts surface was built with, bit for bit.
    metallic_fraction: float = 0.0
    removal_eta: float = 1.0

    def __post_init__(self) -> None:
        if self.scenario not in ALL_SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; expected one of {ALL_SCENARIOS}"
            )
        ensure_probability(self.per_cnt_failure, "per_cnt_failure")
        ensure_probability(self.metallic_fraction, "metallic_fraction")
        ensure_probability(self.removal_eta, "removal_eta")
        if self.method not in ("auto", "closed_form", "tilted"):
            raise ValueError(f"unknown method {self.method!r}")
        if self.short_probability > 0.0 and self.resolved_method == "tilted":
            raise ValueError(
                "method='tilted' supports only the opens-only regime; "
                "joint opens+shorts sweeps must use the closed form"
            )
        ensure_positive(self.tolerance_log, "tolerance_log")
        if self.max_refinement_rounds < 0:
            raise ValueError("max_refinement_rounds must be non-negative")
        if self.safety_factor < 1.0:
            raise ValueError("safety_factor must be at least 1.0")
        if self.mc_samples <= 0:
            raise ValueError("mc_samples must be positive")

    @property
    def short_probability(self) -> float:
        """Per-tube surviving-short probability ``q = p_m · (1 - eta)``."""
        return self.metallic_fraction * (1.0 - self.removal_eta)

    @property
    def resolved_method(self) -> str:
        """``auto`` resolves by family: exact sum CDFs sweep closed-form,
        the CLT-approximated truncated normal goes through the sampler."""
        if self.method != "auto":
            return self.method
        if isinstance(self.pitch, TruncatedNormalPitch):
            return "tilted"
        return "closed_form"


class ExactEvaluator:
    """Evaluates the exact (or MC-estimated) log failure value per point.

    All evaluations go through a coordinate-keyed cache, so the builder's
    midpoint probes, refinement rounds and the serving layer's fallback
    queries never pay twice for the same (W, ρ) point.
    """

    def __init__(
        self,
        scenario: str,
        pitch: PitchDistribution,
        per_cnt_failure: float,
        correlation: CorrelationParameters,
        method: str = "closed_form",
        mc_samples: int = 20_000,
        seed: int = 20100613,
        short_probability: float = 0.0,
    ) -> None:
        if scenario not in ALL_SCENARIOS:
            raise ValueError(f"unknown scenario {scenario!r}")
        if method not in ("closed_form", "tilted"):
            raise ValueError(f"unknown resolved method {method!r}")
        ensure_probability(short_probability, "short_probability")
        if short_probability > 0.0 and method == "tilted":
            raise ValueError(
                "method='tilted' supports only the opens-only regime; "
                "joint opens+shorts evaluation must use the closed form"
            )
        self.scenario = scenario
        self.pitch = pitch
        self.per_cnt_failure = ensure_probability(per_cnt_failure, "per_cnt_failure")
        self.correlation = correlation
        self.method = method
        self.mc_samples = int(mc_samples)
        self.seed = int(seed)
        self.short_probability = float(short_probability)
        self._cache: Dict[Tuple[float, float], Tuple[float, float]] = {}
        self.evaluation_count = 0

    @classmethod
    def from_surface(cls, surface: YieldSurface) -> "ExactEvaluator":
        """Rebuild the evaluator a surface was swept with (serving fallback)."""
        meta = surface.metadata
        return cls(
            scenario=surface.scenario,
            pitch=pitch_from_descriptor(meta["pitch"]),
            per_cnt_failure=float(meta["per_cnt_failure"]),
            correlation=CorrelationParameters(**meta["correlation"]),
            method=str(meta.get("method", "closed_form")),
            mc_samples=int(meta.get("mc_samples", 20_000)),
            seed=int(meta.get("seed", 20100613)),
            short_probability=float(meta.get("short_probability", 0.0)),
        )

    # ------------------------------------------------------------------
    # Device-level column evaluation
    # ------------------------------------------------------------------

    def _device_column(
        self, density_per_um: float, widths_nm: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(log pF, SE of log pF) for one density column."""
        mean_pitch = density_to_mean_pitch_nm(density_per_um)
        pitch = self.pitch.with_mean(mean_pitch)
        if self.method == "closed_form":
            model = CNFETFailureModel(
                count_model_from_pitch(pitch),
                self.per_cnt_failure,
                short_probability=self.short_probability,
            )
            return model.log_failure_probabilities(widths_nm), np.zeros(widths_nm.size)
        from repro.montecarlo.rare_event import estimate_device_failure_grid

        # The seed key carries the density coordinate and every point adds
        # its width coordinate inside the grid hook, so a node's estimate
        # is independent of batching/refinement history — the content hash
        # of an MC surface depends only on (spec, final grid).
        estimates = estimate_device_failure_grid(
            pitch,
            self.per_cnt_failure,
            widths_nm,
            self.mc_samples,
            seed_key=(self.seed, int(round(density_per_um * 1e6))),
        )
        p = np.array([e.estimate for e in estimates])
        se = np.array([e.standard_error for e in estimates])
        with np.errstate(divide="ignore"):
            log_p = np.where(p > 0.0, np.log(np.maximum(p, 1e-300)), LOG_FLOOR)
            se_log = np.where(p > 0.0, se / np.maximum(p, 1e-300), 0.0)
        return log_p, se_log

    def _scenario_column(
        self, density_per_um: float, widths_nm: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(log value, SE of log value) after the scenario map."""
        log_pf, se_log_pf = self._device_column(density_per_um, widths_nm)
        log_pf = np.maximum(log_pf, LOG_FLOOR)
        if self.scenario == SCENARIO_DEVICE:
            return log_pf, se_log_pf
        scenario = LayoutScenario(self.scenario)
        p = np.exp(log_pf)
        prf = scenario_row_failure_probabilities(scenario, p, self.correlation)
        se_prf = propagate_row_failure_se(
            scenario, p, se_log_pf * p, self.correlation
        )
        with np.errstate(divide="ignore"):
            log_prf = np.where(
                prf > 0.0, np.log(np.maximum(prf, 1e-300)), LOG_FLOOR
            )
            se_log_prf = np.where(prf > 0.0, se_prf / np.maximum(prf, 1e-300), 0.0)
        return np.maximum(log_prf, LOG_FLOOR), se_log_prf

    # ------------------------------------------------------------------
    # Cached mesh / scattered-point evaluation
    # ------------------------------------------------------------------

    @staticmethod
    def _key(width_nm: float, density_per_um: float) -> Tuple[float, float]:
        return (round(float(width_nm), 9), round(float(density_per_um), 9))

    def mesh(
        self, widths_nm: np.ndarray, densities_per_um: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate the full outer mesh, reusing every cached point."""
        widths = np.asarray(widths_nm, dtype=float)
        densities = np.asarray(densities_per_um, dtype=float)
        values = np.empty((widths.size, densities.size))
        errors = np.empty((widths.size, densities.size))
        for j, density in enumerate(densities):
            keys = [self._key(w, density) for w in widths]
            missing = [i for i, k in enumerate(keys) if k not in self._cache]
            if missing:
                col_vals, col_errs = self._scenario_column(
                    float(density), widths[missing]
                )
                self.evaluation_count += len(missing)
                for i, v, e in zip(missing, col_vals, col_errs):
                    self._cache[keys[i]] = (float(v), float(e))
            column = [self._cache[k] for k in keys]
            values[:, j] = [c[0] for c in column]
            errors[:, j] = [c[1] for c in column]
        return values, errors

    def points(
        self, widths_nm: np.ndarray, densities_per_um: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate scattered (W, ρ) pairs (the serving layer's fallback)."""
        widths = np.asarray(widths_nm, dtype=float)
        densities = np.asarray(densities_per_um, dtype=float)
        if widths.shape != densities.shape:
            raise ValueError("widths and densities must have matching shapes")
        values = np.empty(widths.size)
        errors = np.empty(widths.size)
        for density in np.unique(densities):
            mask = densities == density
            group_vals, group_errs = self._group_points(float(density), widths[mask])
            values[mask] = group_vals
            errors[mask] = group_errs
        return values, errors

    def _group_points(
        self, density: float, widths: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        keys = [self._key(w, density) for w in widths]
        missing_idx = [i for i, k in enumerate(keys) if k not in self._cache]
        if missing_idx:
            col_vals, col_errs = self._scenario_column(density, widths[missing_idx])
            self.evaluation_count += len(missing_idx)
            for i, v, e in zip(missing_idx, col_vals, col_errs):
                self._cache[keys[i]] = (float(v), float(e))
        pairs = [self._cache[k] for k in keys]
        return (
            np.array([p[0] for p in pairs]),
            np.array([p[1] for p in pairs]),
        )


@dataclass(frozen=True)
class BuildReport:
    """What a sweep did: mesh growth, evaluations, residual error."""

    surface: YieldSurface
    refinement_rounds: int
    evaluations: int
    max_interp_error_log: float
    converged: bool


class SurfaceBuilder:
    """Runs a :class:`SweepSpec` to a persisted-ready :class:`YieldSurface`.

    Parameters
    ----------
    spec:
        The sweep to run (defaults to :class:`SweepSpec`).
    checkpoint_dir:
        When given, the evaluator's point cache persists under this
        directory after every refinement round (content-hashed, written
        atomically).  A rerun of the same spec resumes from the last
        verified snapshot: every cached grid point replays instead of
        re-evaluating, and because refinement decisions are deterministic
        functions of the point values, the resumed surface is bitwise
        identical (same content hash) to an uninterrupted build.
    resume:
        Whether an existing checkpoint for this spec is loaded (default)
        or discarded first.
    """

    def __init__(
        self,
        spec: Optional[SweepSpec] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = True,
    ) -> None:
        self.spec = spec or SweepSpec()
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume

    def build(self) -> YieldSurface:
        return self.build_report().surface

    def _open_checkpoint(self):
        """Open this spec's sweep campaign, or ``None`` when not checkpointing."""
        if self.checkpoint_dir is None:
            return None
        from repro.resilience.checkpoint import CheckpointStore, fingerprint_parts

        spec = self.spec
        fingerprint = fingerprint_parts(
            "surface-sweep",
            spec.scenario,
            spec.width_axis.values,
            spec.density_axis.values,
            pitch_descriptor(spec.pitch),
            float(spec.per_cnt_failure),
            dataclasses.asdict(spec.correlation),
            spec.resolved_method,
            float(spec.short_probability),
            float(spec.tolerance_log),
            int(spec.max_refinement_rounds),
            float(spec.safety_factor),
            int(spec.mc_samples),
            int(spec.seed),
        )
        return CheckpointStore(self.checkpoint_dir).campaign(
            f"sweep-{spec.scenario}",
            fingerprint,
            spec.max_refinement_rounds + 1,
            resume=self.resume,
        )

    @staticmethod
    def _restore_cache(evaluator: ExactEvaluator, checkpoint) -> None:
        """Preload the evaluator cache from the latest verified snapshot."""
        units = checkpoint.verified_units()
        if not units:
            return
        arrays, _meta = units[max(units)]
        for w, d, v, e in zip(
            arrays["key_w"], arrays["key_d"], arrays["value"], arrays["error"]
        ):
            evaluator._cache[(float(w), float(d))] = (float(v), float(e))

    @staticmethod
    def _snapshot_cache(evaluator: ExactEvaluator, checkpoint, unit: int) -> None:
        """Persist the evaluator cache as the round-``unit`` snapshot."""
        keys = list(evaluator._cache)
        values = [evaluator._cache[k] for k in keys]
        checkpoint.save_unit(
            unit,
            arrays={
                "key_w": np.array([k[0] for k in keys], dtype=float),
                "key_d": np.array([k[1] for k in keys], dtype=float),
                "value": np.array([v[0] for v in values], dtype=float),
                "error": np.array([v[1] for v in values], dtype=float),
            },
            meta={"round": int(unit), "points": len(keys)},
        )

    def build_report(self) -> BuildReport:
        spec = self.spec
        evaluator = ExactEvaluator(
            scenario=spec.scenario,
            pitch=spec.pitch,
            per_cnt_failure=spec.per_cnt_failure,
            correlation=spec.correlation,
            method=spec.resolved_method,
            mc_samples=spec.mc_samples,
            seed=spec.seed,
            short_probability=spec.short_probability,
        )
        checkpoint = self._open_checkpoint()
        if checkpoint is not None:
            self._restore_cache(evaluator, checkpoint)
        w_axis, d_axis = spec.width_axis, spec.density_axis
        rounds = 0
        while True:
            values, stat_se, cell_err, cell_noise = self._sweep_once(
                evaluator, w_axis, d_axis
            )
            if checkpoint is not None:
                self._snapshot_cache(evaluator, checkpoint, rounds)
            # cell_err carries the safety factor, so the statistical gate
            # must scale its noise allowance identically: a residual that
            # is REFINE_NOISE_SIGMA probe-SEs of pure noise would show up
            # here as safety_factor times that.
            bad = cell_err > (
                spec.tolerance_log
                + spec.safety_factor * REFINE_NOISE_SIGMA * cell_noise
            )
            if not bad.any() or rounds >= spec.max_refinement_rounds:
                converged = not bad.any()
                break
            w_axis = w_axis.refined(bad.any(axis=1))
            d_axis = d_axis.refined(bad.any(axis=0))
            rounds += 1

        metadata = {
            "pitch": pitch_descriptor(spec.pitch),
            "pitch_cv": float(spec.pitch.cv),
            "per_cnt_failure": float(spec.per_cnt_failure),
            "correlation": dataclasses.asdict(spec.correlation),
            "method": evaluator.method,
            "mc_samples": int(spec.mc_samples),
            "seed": int(spec.seed),
            "metallic_fraction": float(spec.metallic_fraction),
            "removal_eta": float(spec.removal_eta),
            "short_probability": float(spec.short_probability),
            "tolerance_log": float(spec.tolerance_log),
            "safety_factor": float(spec.safety_factor),
            "refinement_rounds": rounds,
            "converged": bool(converged),
        }
        surface = YieldSurface(
            scenario=spec.scenario,
            width_nm=w_axis.values,
            cnt_density_per_um=d_axis.values,
            log_failure=values,
            stat_se_log=stat_se,
            interp_error_log=cell_err,
            metadata=metadata,
        )
        return BuildReport(
            surface=surface,
            refinement_rounds=rounds,
            evaluations=evaluator.evaluation_count,
            max_interp_error_log=float(np.max(cell_err)),
            converged=converged,
        )

    # ------------------------------------------------------------------
    # One sweep + midpoint error probe
    # ------------------------------------------------------------------

    def _sweep_once(
        self, evaluator: ExactEvaluator, w_axis: GridAxis, d_axis: GridAxis
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        w_fine = w_axis.with_midpoints()
        d_fine = d_axis.with_midpoints()
        fine_values, fine_se = evaluator.mesh(w_fine, d_fine)
        values = fine_values[0::2, 0::2]
        stat_se = fine_se[0::2, 0::2]

        # Interpolate the coarse grid onto the fine probe mesh and take the
        # worst residual in each cell's 3×3 probe block as its error bound;
        # the block's worst statistical SE is the cell's noise floor, which
        # gates the refinement decision (MC probes cannot distinguish
        # interpolation error below their own noise).
        w_mesh, d_mesh = np.meshgrid(w_fine, d_fine, indexing="ij")
        interp, _, _ = bilinear_interpolate(
            w_axis.values, d_axis.values, values, w_mesh.ravel(), d_mesh.ravel()
        )
        residual = np.abs(fine_values - interp.reshape(fine_values.shape))
        n_w, n_d = w_axis.n_points, d_axis.n_points
        cell_err = np.zeros((n_w - 1, n_d - 1))
        cell_noise = np.zeros((n_w - 1, n_d - 1))
        for di in range(3):
            for dj in range(3):
                rows = slice(di, di + 2 * (n_w - 1) - 1, 2)
                cols = slice(dj, dj + 2 * (n_d - 1) - 1, 2)
                cell_err = np.maximum(cell_err, residual[rows, cols])
                cell_noise = np.maximum(cell_noise, fine_se[rows, cols])
        cell_err = np.maximum(
            self.spec.safety_factor * cell_err, INTERP_ERROR_FLOOR
        )
        return values, stat_se, cell_err, cell_noise
