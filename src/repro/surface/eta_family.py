"""A removal-efficiency (eta) axis over 2D yield surfaces.

The shorts extension (:mod:`repro.device.shorts`) adds two process knobs
to every sweep — the metallic fraction ``p_m`` and the removal efficiency
``eta`` — but only their product ``q = p_m · (1 - eta)`` enters the
closed forms, and co-optimization loops sweep ``eta`` while holding the
growth chemistry (``p_m``) fixed.  Rebuilding a full (W, density) surface
per queried ``eta`` would defeat the serving tier, so this module
tabulates a *family*: one closed-form surface per ``eta`` node, linear
interpolation along ``eta`` between them, and a probed error bound on
that third axis so the serving contract ("the bound always contains the
exact closed form") extends to off-node ``eta`` queries.

The eta-axis bound follows the builder's probing recipe: within each
``[eta_k, eta_k+1]`` interval the exact joint closed form is evaluated at
interior fraction points and compared against the fused (eta-interpolated)
estimate; ``safety_factor ×`` the worst residual becomes the interval's
error term, added on top of the *maximum* of the two bracketing surfaces'
own per-query bounds (linear weights are convex, so the fused value's
surface error can never exceed the worse bracket).  Queries outside the
swept ``eta`` range — or off the (W, density) grid — fall back to the
exact evaluator instead of extrapolating.

Only the closed-form method is supported: the probe comparisons must be
against exact values, and the tilted sampler has no joint opens+shorts
counterpart anyway.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, NamedTuple, Sequence, Tuple

import numpy as np

from repro.surface.builder import (
    ExactEvaluator,
    INTERP_ERROR_FLOOR,
    SurfaceBuilder,
    SweepSpec,
)
from repro.surface.grid import bilinear_interpolate
from repro.surface.surface import YieldSurface
from repro.units import ensure_probability

#: Absolute log-space slack on every served bound, matching the 2D serving
#: layer's allowance for float noise in the probed residuals.
FLOAT_SLACK_LOG = 1e-9

#: Interior fractions of each eta interval probed for interpolation error.
ETA_PROBE_FRACTIONS = (0.25, 0.5, 0.75)


class EtaQuery(NamedTuple):
    """Served log failure values along the eta axis with error bounds.

    ``exact`` marks the per-point queries answered by the exact evaluator
    (off the eta range or off the 2D grid) — their bound is float slack
    only, since nothing was interpolated.
    """

    log_failure: np.ndarray
    error_log: np.ndarray
    exact: np.ndarray


def _interpolate_surface(
    surface: YieldSurface, widths: np.ndarray, densities: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """(log p, error bound) of one node surface at in-grid query points.

    Mirrors the serving layer's bound: probed cell residual plus float
    slack.  The family builds closed-form surfaces only, so the
    statistical channel is identically zero and does not contribute.
    """
    log_p, i, j = bilinear_interpolate(
        surface.width_nm,
        surface.cnt_density_per_um,
        surface.log_failure,
        widths,
        densities,
    )
    return np.minimum(log_p, 0.0), surface.interp_error_log[i, j] + FLOAT_SLACK_LOG


class EtaSurfaceFamily:
    """One yield surface per ``eta`` node, served with eta interpolation.

    Build with :meth:`build`; query with :meth:`query`.  The family holds
    the spec's scenario, pitch, per-CNT failure, correlation and — via the
    spec's ``metallic_fraction`` — the growth chemistry; ``removal_eta``
    is the swept axis.
    """

    def __init__(
        self,
        spec: SweepSpec,
        removal_etas: Sequence[float],
        surfaces: Sequence[YieldSurface],
        eta_interp_error_log: Sequence[float],
    ) -> None:
        etas = [ensure_probability(float(e), "removal_eta") for e in removal_etas]
        if len(etas) != len(set(etas)) or etas != sorted(etas):
            raise ValueError("removal_etas must be strictly increasing")
        if not etas:
            raise ValueError("removal_etas must not be empty")
        if len(surfaces) != len(etas):
            raise ValueError("one surface per eta node required")
        if len(eta_interp_error_log) != max(len(etas) - 1, 0):
            raise ValueError("one eta error term per eta interval required")
        self.spec = spec
        self.removal_etas = etas
        self.surfaces = list(surfaces)
        self.eta_interp_error_log = [float(e) for e in eta_interp_error_log]
        self._fallbacks: Dict[float, ExactEvaluator] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        spec: SweepSpec,
        removal_etas: Sequence[float],
        eta_probe_fractions: Sequence[float] = ETA_PROBE_FRACTIONS,
    ) -> "EtaSurfaceFamily":
        """Sweep one surface per eta node and probe the eta-axis error.

        ``spec.removal_eta`` is ignored (each node substitutes its own);
        everything else — including ``metallic_fraction`` — carries over
        verbatim into every node's sweep.
        """
        if spec.resolved_method != "closed_form":
            raise ValueError(
                "EtaSurfaceFamily requires the closed-form method: its "
                "probe comparisons are against exact values, and the "
                "tilted sampler has no joint opens+shorts counterpart"
            )
        etas = sorted({ensure_probability(float(e), "removal_eta")
                       for e in removal_etas})
        if not etas:
            raise ValueError("removal_etas must not be empty")
        for fraction in eta_probe_fractions:
            if not 0.0 < float(fraction) < 1.0:
                raise ValueError("eta probe fractions must lie strictly in (0, 1)")

        surfaces = [
            SurfaceBuilder(dataclasses.replace(spec, removal_eta=eta)).build()
            for eta in etas
        ]

        widths = np.asarray(spec.width_axis.values, dtype=float)
        densities = np.asarray(spec.density_axis.values, dtype=float)
        w_mesh, d_mesh = np.meshgrid(widths, densities, indexing="ij")
        w_flat, d_flat = w_mesh.ravel(), d_mesh.ravel()

        errors: List[float] = []
        for k in range(len(etas) - 1):
            lo_vals, _ = _interpolate_surface(surfaces[k], w_flat, d_flat)
            hi_vals, _ = _interpolate_surface(surfaces[k + 1], w_flat, d_flat)
            worst = INTERP_ERROR_FLOOR
            for fraction in eta_probe_fractions:
                t = float(fraction)
                eta_probe = etas[k] + t * (etas[k + 1] - etas[k])
                exact, _ = cls._evaluator_for(spec, eta_probe).mesh(
                    widths, densities
                )
                fused = (1.0 - t) * lo_vals + t * hi_vals
                residual = np.abs(fused - exact.ravel())
                worst = max(worst, float(np.max(residual)))
            errors.append(spec.safety_factor * worst)

        return cls(spec, etas, surfaces, errors)

    @staticmethod
    def _evaluator_for(spec: SweepSpec, eta: float) -> ExactEvaluator:
        """Exact joint evaluator at one eta (probing and fallback path)."""
        return ExactEvaluator(
            scenario=spec.scenario,
            pitch=spec.pitch,
            per_cnt_failure=spec.per_cnt_failure,
            correlation=spec.correlation,
            method="closed_form",
            mc_samples=spec.mc_samples,
            seed=spec.seed,
            short_probability=spec.metallic_fraction * (1.0 - eta),
        )

    def _fallback(self, eta: float) -> ExactEvaluator:
        key = round(float(eta), 12)
        if key not in self._fallbacks:
            self._fallbacks[key] = self._evaluator_for(self.spec, float(eta))
        return self._fallbacks[key]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(
        self,
        width_nm: np.ndarray,
        cnt_density_per_um: np.ndarray,
        removal_eta: float,
    ) -> EtaQuery:
        """Serve ``log p`` at (W, density) points for one ``removal_eta``.

        On-node etas serve that node's surface alone; interior etas fuse
        the bracketing surfaces and add the interval's probed error term;
        etas outside the swept range — and any point off the 2D grid —
        are answered exactly.
        """
        eta = ensure_probability(float(removal_eta), "removal_eta")
        widths = np.asarray(width_nm, dtype=float)
        densities = np.asarray(cnt_density_per_um, dtype=float)
        if widths.shape != densities.shape:
            raise ValueError("width and density query arrays must match in shape")
        w_flat, d_flat = widths.ravel(), densities.ravel()

        if eta < self.removal_etas[0] or eta > self.removal_etas[-1]:
            values, errors, exact = self._query_exact(w_flat, d_flat, eta)
        else:
            values, errors, exact = self._query_interpolated(w_flat, d_flat, eta)
        return EtaQuery(
            log_failure=values.reshape(widths.shape),
            error_log=errors.reshape(widths.shape),
            exact=exact.reshape(widths.shape),
        )

    def _query_exact(
        self, w_flat: np.ndarray, d_flat: np.ndarray, eta: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        values, _ = self._fallback(eta).points(w_flat, d_flat)
        errors = np.full(w_flat.shape, FLOAT_SLACK_LOG)
        return values, errors, np.ones(w_flat.shape, dtype=bool)

    def _query_interpolated(
        self, w_flat: np.ndarray, d_flat: np.ndarray, eta: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        hi_idx = int(np.searchsorted(self.removal_etas, eta, side="left"))
        if self.removal_etas[hi_idx] == eta:
            surface = self.surfaces[hi_idx]
            values, errors = _interpolate_surface(surface, w_flat, d_flat)
            in_grid = surface.covers(w_flat, d_flat)
        else:
            lo_idx = hi_idx - 1
            e_lo, e_hi = self.removal_etas[lo_idx], self.removal_etas[hi_idx]
            t = (eta - e_lo) / (e_hi - e_lo)
            lo_vals, lo_errs = _interpolate_surface(
                self.surfaces[lo_idx], w_flat, d_flat
            )
            hi_vals, hi_errs = _interpolate_surface(
                self.surfaces[hi_idx], w_flat, d_flat
            )
            values = np.minimum((1.0 - t) * lo_vals + t * hi_vals, 0.0)
            errors = (
                np.maximum(lo_errs, hi_errs)
                + self.eta_interp_error_log[lo_idx]
                + FLOAT_SLACK_LOG
            )
            in_grid = self.surfaces[lo_idx].covers(
                w_flat, d_flat
            ) & self.surfaces[hi_idx].covers(w_flat, d_flat)

        exact = ~in_grid
        if exact.any():
            off_vals, _ = self._fallback(eta).points(w_flat[exact], d_flat[exact])
            values = values.copy()
            errors = errors.copy()
            values[exact] = off_vals
            errors[exact] = FLOAT_SLACK_LOG
        return values, errors, exact

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        """Flat summary row (reporting / CLI / JSON friendly)."""
        return {
            "scenario": self.spec.scenario,
            "metallic_fraction": float(self.spec.metallic_fraction),
            "removal_etas": [float(e) for e in self.removal_etas],
            "n_surfaces": len(self.surfaces),
            "eta_interp_error_log": list(self.eta_interp_error_log),
            "surface_keys": [s.key for s in self.surfaces],
        }
