"""Structured sweep grids for the yield-surface subsystem.

A :class:`YieldSurface` tabulates a log failure probability over a
rectilinear (width, CNT density) mesh.  This module owns the axis
machinery — construction, midpoint refinement, and the raw bilinear
interpolation kernel that both the builder (for interpolation-error
probing) and the serving layer (for query answering) share.

Bilinear interpolation is applied in *linear* (W, density) coordinates on
purpose: for the exponential-pitch calibration the Poisson closed form
gives ``log pF = -(W · ρ / 1000) · (1 - pf)``, which lies exactly in the
span of the bilinear basis ``{1, W, ρ, W·ρ}`` — the default surface family
interpolates with zero error by construction, and other families stay
close because the tail is dominated by the same product term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.units import ensure_positive


@dataclass(frozen=True)
class GridAxis:
    """One strictly increasing sweep axis (widths in nm, densities per µm)."""

    name: str
    values: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        if values.ndim != 1 or values.size < 2:
            raise ValueError(f"axis {self.name!r} needs at least two points")
        if np.any(np.diff(values) <= 0):
            raise ValueError(f"axis {self.name!r} must be strictly increasing")
        if values[0] <= 0:
            raise ValueError(f"axis {self.name!r} must be positive")
        object.__setattr__(self, "values", values)

    @classmethod
    def from_range(
        cls, name: str, low: float, high: float, n_points: int, spacing: str = "log"
    ) -> "GridAxis":
        """Log- (default) or linearly spaced axis over ``[low, high]``."""
        ensure_positive(low, "low")
        if high <= low:
            raise ValueError(f"high must exceed low, got [{low}, {high}]")
        if n_points < 2:
            raise ValueError("n_points must be at least 2")
        if spacing == "log":
            values = np.geomspace(low, high, n_points)
        elif spacing == "linear":
            values = np.linspace(low, high, n_points)
        else:
            raise ValueError(f"unknown spacing {spacing!r}")
        # Pin the endpoints exactly so coverage checks are not float-fuzzy.
        values[0], values[-1] = low, high
        return cls(name=name, values=values)

    @property
    def n_points(self) -> int:
        return int(self.values.size)

    @property
    def n_cells(self) -> int:
        return self.n_points - 1

    def midpoints(self) -> np.ndarray:
        """Arithmetic midpoints of every interval (bilinear error peaks there)."""
        return 0.5 * (self.values[:-1] + self.values[1:])

    def with_midpoints(self) -> np.ndarray:
        """Values interleaved with their midpoints (the error-probe mesh)."""
        fine = np.empty(2 * self.n_points - 1, dtype=float)
        fine[0::2] = self.values
        fine[1::2] = self.midpoints()
        return fine

    def refined(self, cell_mask: np.ndarray) -> "GridAxis":
        """New axis with the midpoints of the flagged cells inserted."""
        mask = np.asarray(cell_mask, dtype=bool)
        if mask.shape != (self.n_cells,):
            raise ValueError(
                f"cell_mask must have shape ({self.n_cells},), got {mask.shape}"
            )
        if not mask.any():
            return self
        merged = np.sort(np.concatenate([self.values, self.midpoints()[mask]]))
        return GridAxis(name=self.name, values=merged)

def bilinear_interpolate(
    x_grid: np.ndarray,
    y_grid: np.ndarray,
    values: np.ndarray,
    x_query: np.ndarray,
    y_query: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Bilinear interpolation of ``values[i, j]`` at scattered query points.

    Returns ``(interpolated, i_cell, j_cell)`` where the cell indices point
    into the ``(len(x_grid) - 1, len(y_grid) - 1)`` cell arrays (for
    per-cell error lookup).  Queries outside the grid are *clamped* to the
    boundary cell — callers decide separately (via
    :meth:`~repro.surface.surface.YieldSurface.covers`) whether a clamped
    answer is acceptable or must fall back to an exact evaluation.  One
    ``searchsorted`` per axis plus fused arithmetic: the
    serving layer leans on this running at millions of queries per second.
    """
    xq = np.asarray(x_query, dtype=float)
    yq = np.asarray(y_query, dtype=float)
    i = np.clip(np.searchsorted(x_grid, xq, side="right") - 1, 0, x_grid.size - 2)
    j = np.clip(np.searchsorted(y_grid, yq, side="right") - 1, 0, y_grid.size - 2)
    x0 = x_grid[i]
    y0 = y_grid[j]
    tx = (xq - x0) / (x_grid[i + 1] - x0)
    ty = (yq - y0) / (y_grid[j + 1] - y0)
    v00 = values[i, j]
    v10 = values[i + 1, j]
    v01 = values[i, j + 1]
    v11 = values[i + 1, j + 1]
    top = v00 + tx * (v10 - v00)
    bottom = v01 + tx * (v11 - v01)
    return top + ty * (bottom - top), i, j
