"""The :class:`YieldSurface` artifact — a persisted, error-bounded sweep.

A surface tabulates the natural log of a failure probability over a
rectilinear (width, CNT density) mesh:

* scenario ``"device"`` stores log pF(W, ρ) — Eq. 2.2 evaluated on the
  grid — and answers Eq. 2.3 chip-yield queries;
* the three Table 1 scenarios store log pRF and answer Eq. 3.1 queries.

Every cell carries two error channels: ``stat_se_log`` (the delta-method
standard error of log p inherited from the Monte Carlo estimators — zero
for closed-form sweeps) lives on the grid nodes, and ``interp_error_log``
(a probed bound on the bilinear interpolation residual, in log space)
lives on the cells.  The serving layer combines both into a query-time
error bound that must contain the exact closed-form value.

Artifacts are versioned and disk-persisted as a single ``.npz`` holding
the arrays plus a canonical-JSON metadata blob; the content hash (sha256
over metadata and array bytes) doubles as the cache key of the serving
layer's LRU.
"""

from __future__ import annotations

import hashlib
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.resilience.atomic import atomic_write_bytes
from repro.resilience.checkpoint import CorruptArtifactError

#: On-disk format version; bumped on any incompatible layout change.
SURFACE_FORMAT_VERSION = 1

#: Scenario tag for the device-level pF surface (Eq. 2.2 / 2.3 path).
SCENARIO_DEVICE = "device"

#: log-space floor: probabilities below exp(-690) ≈ 1e-300 are clamped so
#: the grids never hold -inf (bilinear arithmetic would poison neighbours).
LOG_FLOOR = -690.0

_ARRAY_FIELDS = ("width_nm", "cnt_density_per_um", "log_failure",
                 "stat_se_log", "interp_error_log")


@dataclass(frozen=True)
class YieldSurface:
    """A precomputed, error-bounded yield surface over (W, CNT density).

    Attributes
    ----------
    scenario:
        ``"device"`` or a :class:`~repro.core.correlation.LayoutScenario`
        value string.
    width_nm:
        Width axis, strictly increasing, shape ``(n_w,)``.
    cnt_density_per_um:
        CNT density axis ρ = 1000 / µS, strictly increasing, ``(n_d,)``.
    log_failure:
        Natural log of pF (device) or pRF (row scenarios), ``(n_w, n_d)``.
    stat_se_log:
        Standard error of ``log_failure`` per node, ``(n_w, n_d)``.
    interp_error_log:
        Probed bilinear-residual bound per cell, ``(n_w - 1, n_d - 1)``.
    metadata:
        Everything needed to rebuild the exact evaluator: pitch family and
        parameters, per-CNT failure, correlation parameters, build method,
        tolerance and refinement history.
    """

    scenario: str
    width_nm: np.ndarray
    cnt_density_per_um: np.ndarray
    log_failure: np.ndarray
    stat_se_log: np.ndarray
    interp_error_log: np.ndarray
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        w = np.ascontiguousarray(np.asarray(self.width_nm, dtype=float))
        d = np.ascontiguousarray(np.asarray(self.cnt_density_per_um, dtype=float))
        v = np.ascontiguousarray(np.asarray(self.log_failure, dtype=float))
        se = np.ascontiguousarray(np.asarray(self.stat_se_log, dtype=float))
        ie = np.ascontiguousarray(np.asarray(self.interp_error_log, dtype=float))
        for axis, label in ((w, "width_nm"), (d, "cnt_density_per_um")):
            if axis.ndim != 1 or axis.size < 2:
                raise ValueError(f"{label} needs at least two points")
            if np.any(np.diff(axis) <= 0):
                raise ValueError(f"{label} must be strictly increasing")
        if v.shape != (w.size, d.size):
            raise ValueError(
                f"log_failure shape {v.shape} does not match axes "
                f"({w.size}, {d.size})"
            )
        if se.shape != v.shape:
            raise ValueError("stat_se_log must match log_failure in shape")
        if ie.shape != (w.size - 1, d.size - 1):
            raise ValueError(
                f"interp_error_log shape {ie.shape} does not match cells "
                f"({w.size - 1}, {d.size - 1})"
            )
        if np.any(v > 0.0):
            raise ValueError("log_failure must be non-positive (probabilities)")
        if np.any(se < 0.0) or np.any(ie < 0.0):
            raise ValueError("error channels must be non-negative")
        object.__setattr__(self, "width_nm", w)
        object.__setattr__(self, "cnt_density_per_um", d)
        object.__setattr__(self, "log_failure", v)
        object.__setattr__(self, "stat_se_log", se)
        object.__setattr__(self, "interp_error_log", ie)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    @property
    def content_hash(self) -> str:
        """sha256 over canonical metadata JSON and raw array bytes."""
        digest = hashlib.sha256()
        digest.update(self._canonical_metadata().encode("utf-8"))
        for name in _ARRAY_FIELDS:
            array = getattr(self, name)
            digest.update(name.encode("utf-8"))
            digest.update(str(array.shape).encode("utf-8"))
            digest.update(array.tobytes())
        return digest.hexdigest()

    @property
    def key(self) -> str:
        """Short identity used in filenames and cache keys."""
        return f"{self.scenario}-{self.content_hash[:12]}"

    def _canonical_metadata(self) -> str:
        payload = {
            "format_version": SURFACE_FORMAT_VERSION,
            "scenario": self.scenario,
            "metadata": self.metadata,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def covers(
        self, width_nm: np.ndarray, cnt_density_per_um: np.ndarray
    ) -> np.ndarray:
        """Boolean mask of query points inside the swept grid.

        The single home of the range-containment rule: the serving layer
        routes anything outside this mask to its fallback path.
        """
        w = np.asarray(width_nm, dtype=float)
        d = np.asarray(cnt_density_per_um, dtype=float)
        return (
            (w >= self.width_nm[0])
            & (w <= self.width_nm[-1])
            & (d >= self.cnt_density_per_um[0])
            & (d <= self.cnt_density_per_um[-1])
        )

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------

    @property
    def max_interp_error_log(self) -> float:
        return float(np.max(self.interp_error_log))

    @property
    def max_stat_se_log(self) -> float:
        return float(np.max(self.stat_se_log))

    def describe(self) -> Dict[str, object]:
        """Flat summary row (reporting / CLI / JSON friendly)."""
        return {
            "scenario": self.scenario,
            "key": self.key,
            "n_width": int(self.width_nm.size),
            "n_density": int(self.cnt_density_per_um.size),
            "width_nm_range": [float(self.width_nm[0]), float(self.width_nm[-1])],
            "cnt_density_per_um_range": [
                float(self.cnt_density_per_um[0]),
                float(self.cnt_density_per_um[-1]),
            ],
            "max_interp_error_log": self.max_interp_error_log,
            "max_stat_se_log": self.max_stat_se_log,
            "method": self.metadata.get("method"),
            "refinement_rounds": self.metadata.get("refinement_rounds"),
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> Path:
        """Write the artifact as one ``.npz`` (arrays + metadata JSON).

        The write is atomic (temp file + rename), so a crash mid-save
        never leaves a truncated artifact at the destination.
        """
        path = Path(path)
        buffer = io.BytesIO()
        np.savez(
            buffer,
            __metadata__=np.frombuffer(
                self._canonical_metadata().encode("utf-8"), dtype=np.uint8
            ),
            **{name: getattr(self, name) for name in _ARRAY_FIELDS},
        )
        atomic_write_bytes(path, buffer.getvalue())
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "YieldSurface":
        """Load an artifact, verifying the format version."""
        with np.load(Path(path)) as archive:
            try:
                raw_meta = bytes(archive["__metadata__"]).decode("utf-8")
                arrays = {name: archive[name] for name in _ARRAY_FIELDS}
            except KeyError as exc:
                raise ValueError(f"{path} is not a yield-surface artifact") from exc
        payload = json.loads(raw_meta)
        version = payload.get("format_version")
        if version != SURFACE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported surface format version {version!r} "
                f"(this build reads {SURFACE_FORMAT_VERSION})"
            )
        return cls(
            scenario=payload["scenario"], metadata=payload["metadata"], **arrays
        )


class SurfaceStore:
    """A directory of persisted surfaces addressed by their content keys.

    Filenames are ``<scenario>-<hash12>.npz`` so the listing alone
    identifies artifacts without opening them; re-saving an identical
    surface is a no-op (content-addressed storage is naturally
    idempotent).

    Loads are verified by default: the loaded surface's recomputed
    content hash must match the hash embedded in the filename.  A
    mismatch — or an artifact that fails to decode at all — moves the
    file into ``<root>/quarantine/`` and raises
    :class:`~repro.resilience.checkpoint.CorruptArtifactError`, so a
    corrupt artifact is never served and never poisons a later load.
    """

    def __init__(self, root: Union[str, Path], verify: bool = True) -> None:
        self.root = Path(root)
        self.verify = bool(verify)
        self.quarantined: List[Path] = []

    def save(self, surface: YieldSurface) -> Path:
        """Persist a surface under its content key (idempotent)."""
        path = self.root / f"{surface.key}.npz"
        if not path.exists():
            surface.save(path)
        return path

    def keys(self) -> List[str]:
        """Sorted keys of every artifact currently in the store."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.npz"))

    def path_for(self, key: str) -> Path:
        """Resolve a key — or an unambiguous prefix of one — to a path."""
        matches = [k for k in self.keys() if k == key or k.startswith(key)]
        if not matches:
            raise KeyError(f"no surface matching {key!r} under {self.root}")
        if len(matches) > 1:
            raise KeyError(f"ambiguous surface key {key!r}: {matches}")
        return self.root / f"{matches[0]}.npz"

    def _quarantine(self, path: Path) -> Path:
        """Move a corrupt artifact out of the served namespace."""
        quarantine = self.root / "quarantine"
        quarantine.mkdir(parents=True, exist_ok=True)
        target = quarantine / path.name
        path.replace(target)
        self.quarantined.append(target)
        return target

    def load(self, key: str) -> YieldSurface:
        """Load a surface, quarantining it if it fails verification."""
        path = self.path_for(key)
        try:
            surface = YieldSurface.load(path)
        except Exception as exc:
            target = self._quarantine(path)
            raise CorruptArtifactError(
                f"surface artifact {path.name} failed to decode "
                f"({exc}); quarantined to {target}"
            ) from exc
        if self.verify:
            expected = path.stem.rsplit("-", 1)[-1]
            actual = surface.content_hash[: len(expected)]
            if actual != expected:
                target = self._quarantine(path)
                raise CorruptArtifactError(
                    f"surface artifact {path.name} content hash {actual} "
                    f"does not match its filename ({expected}); "
                    f"quarantined to {target}"
                )
        return surface
