"""Timing-aware parametric yield: from per-trial tube counts to P(meet T_clk).

The subsystem has four layers, bottom to top:

:mod:`repro.timing.graph`
    :class:`TimingGraph` — validated, levelized DAGs of delay-bearing
    stages (registers split into clock-to-Q sources and D-capture sinks).
:mod:`repro.timing.liberty`
    Liberty-style NLDM lookup tables characterized from
    :class:`~repro.analysis.delay.GateDelayModel`.
:mod:`repro.timing.sta`
    Batched levelized arrival propagation over all Monte Carlo trials at
    once, with a bitwise-equal per-trial scalar oracle.
:mod:`repro.timing.parametric`
    :class:`TimingMonteCarlo` — functional, timing and combined yield from
    the *same* per-trial sampled tracks as
    :class:`~repro.montecarlo.chip_sim.ChipMonteCarlo`.

Graphs come from :mod:`repro.timing.ingest`: either the plain-text format
(``parse_timing_graph`` / ``load_timing_graph``) or derived directly from
a placed design (``derive_timing_graph``) so no external files are needed.
"""

from repro.timing.graph import TimingGraph, TimingGraphError, TimingNode
from repro.timing.ingest import (
    DerivedTiming,
    derive_timing_graph,
    format_timing_graph,
    load_timing_graph,
    parse_timing_graph,
)
from repro.timing.liberty import (
    NLDMTable,
    characterize_cell,
    characterize_graph,
    nominal_node_delays,
)
from repro.timing.parametric import TimingMonteCarlo, TimingYieldResult
from repro.timing.sta import (
    critical_path_delays,
    endpoint_slacks,
    propagate_arrivals,
    propagate_arrivals_scalar,
    slack_histogram,
)

__all__ = [
    "TimingGraph",
    "TimingGraphError",
    "TimingNode",
    "DerivedTiming",
    "derive_timing_graph",
    "format_timing_graph",
    "load_timing_graph",
    "parse_timing_graph",
    "NLDMTable",
    "characterize_cell",
    "characterize_graph",
    "nominal_node_delays",
    "TimingMonteCarlo",
    "TimingYieldResult",
    "critical_path_delays",
    "endpoint_slacks",
    "propagate_arrivals",
    "propagate_arrivals_scalar",
    "slack_histogram",
]
