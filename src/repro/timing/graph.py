"""Timing graphs: cells as nodes, fanout arcs as edges, levelized for STA.

A :class:`TimingGraph` is the minimal structure static timing analysis
needs: every node is one delay-bearing stage (a combinational gate, a
register clock-to-Q launch point, or a register D capture point), every arc
is a driver→receiver dependency, and the graph is a DAG by validated
construction.  Registers are modelled as *two* nodes — a pure source
carrying the clock-to-Q delay and a pure sink capturing data — which is
what makes every register-to-register path start and end at the clock and
guarantees acyclicity for any feedback at the netlist level.

The graph pre-computes the levelized sweep order and, per level, the
flattened edge arrays (``edge_src`` sorted by receiver, with group starts)
that let :mod:`repro.timing.sta` propagate arrival times for *all* Monte
Carlo trials of a chunk in one ``np.maximum.reduceat`` pass per level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.units import ensure_positive


class TimingGraphError(ValueError):
    """Structural problem in a timing graph (cycle, bad arc, bad flags)."""


@dataclass(frozen=True)
class TimingNode:
    """One delay-bearing stage of a timing graph.

    Parameters
    ----------
    name:
        Unique node name (instance name, or ``inst.Q`` / ``inst.D`` for the
        two faces of a register).
    cell_name:
        Library cell the node materialises (informational; the width and
        load below are what the delay model consumes).
    drive_width_nm:
        Width of the node's drive device — the CNFET whose captured-tube
        count sets the per-trial drive current.
    load_af:
        Output load (aF) the node drives: the summed input capacitance of
        its receivers.
    is_source:
        The node launches paths (no fanins allowed): a register Q pin or a
        primary input driver.
    is_sink:
        The node terminates paths (no fanouts allowed): a register D pin or
        a primary output.
    """

    name: str
    cell_name: str
    drive_width_nm: float
    load_af: float = 0.0
    is_source: bool = False
    is_sink: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise TimingGraphError("node name must be non-empty")
        ensure_positive(self.drive_width_nm, "drive_width_nm")
        if self.load_af < 0:
            raise TimingGraphError(
                f"node {self.name!r}: load_af must be non-negative"
            )


@dataclass(frozen=True)
class _LevelEdges:
    """Flattened fanin edges of one level, grouped by receiver.

    ``dst[i]`` is the i-th receiver node of the level; its fanin sources
    occupy ``src[starts[i]:starts[i+1]]`` (the last group runs to the end).
    ``np.maximum.reduceat`` over ``arrival[:, src]`` at ``starts`` computes
    every receiver's fanin maximum in one pass.
    """

    dst: np.ndarray
    src: np.ndarray
    starts: np.ndarray


class TimingGraph:
    """A validated, levelized DAG of :class:`TimingNode` stages.

    Parameters
    ----------
    nodes:
        The nodes, in any order; names must be unique.
    arcs:
        Driver→receiver dependencies as ``(src_name, dst_name)`` pairs.
        Self-loops, arcs into declared sources, arcs out of declared sinks
        and any cycle raise :class:`TimingGraphError`.
    """

    def __init__(
        self,
        nodes: Sequence[TimingNode],
        arcs: Sequence[Tuple[str, str]],
    ) -> None:
        self.nodes: Tuple[TimingNode, ...] = tuple(nodes)
        if not self.nodes:
            raise TimingGraphError("timing graph needs at least one node")
        self._index: Dict[str, int] = {}
        for i, node in enumerate(self.nodes):
            if node.name in self._index:
                raise TimingGraphError(f"duplicate node name {node.name!r}")
            self._index[node.name] = i

        fanins: List[List[int]] = [[] for _ in self.nodes]
        fanout_count = np.zeros(len(self.nodes), dtype=np.int64)
        self.arcs: Tuple[Tuple[str, str], ...] = tuple(arcs)
        for src_name, dst_name in self.arcs:
            if src_name not in self._index:
                raise TimingGraphError(f"arc from unknown node {src_name!r}")
            if dst_name not in self._index:
                raise TimingGraphError(f"arc into unknown node {dst_name!r}")
            if src_name == dst_name:
                raise TimingGraphError(f"self-loop on node {src_name!r}")
            src, dst = self._index[src_name], self._index[dst_name]
            if self.nodes[dst].is_source:
                raise TimingGraphError(
                    f"arc into source node {dst_name!r} (sources launch paths)"
                )
            if self.nodes[src].is_sink:
                raise TimingGraphError(
                    f"arc out of sink node {src_name!r} (sinks terminate paths)"
                )
            fanins[dst].append(src)
            fanout_count[src] += 1
        # Canonical fanin order: ascending source index.  The max reduction
        # is order-exact for floats, but a fixed order keeps the batched
        # plan, the scalar oracle and any future serialisation identical.
        self._fanins: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(f)) for f in fanins
        )
        self._fanout_count = fanout_count
        self._levels = self._levelize()
        self._plan: Optional[Tuple[_LevelEdges, ...]] = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def _levelize(self) -> Tuple[np.ndarray, ...]:
        """Kahn-style levelization; raises on cycles.

        Level 0 holds every node without fanins; level ``k`` holds nodes
        whose deepest fanin sits at level ``k - 1`` (longest-path levels, so
        one arrival pass per level suffices).
        """
        n = len(self.nodes)
        indegree = np.array([len(f) for f in self._fanins], dtype=np.int64)
        level = np.zeros(n, dtype=np.int64)
        frontier = [i for i in range(n) if indegree[i] == 0]
        fanouts: List[List[int]] = [[] for _ in range(n)]
        for dst, srcs in enumerate(self._fanins):
            for src in srcs:
                fanouts[src].append(dst)
        seen = 0
        while frontier:
            nxt: List[int] = []
            for node in frontier:
                seen += 1
                for dst in fanouts[node]:
                    level[dst] = max(level[dst], level[node] + 1)
                    indegree[dst] -= 1
                    if indegree[dst] == 0:
                        nxt.append(dst)
            frontier = nxt
        if seen != n:
            stuck = [self.nodes[i].name for i in range(n) if indegree[i] > 0]
            raise TimingGraphError(
                f"timing graph has a cycle through {stuck[:5]!r}"
            )
        depth = int(level.max()) + 1
        return tuple(
            np.flatnonzero(level == k).astype(np.int64) for k in range(depth)
        )

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    @property
    def n_arcs(self) -> int:
        """Number of arcs."""
        return len(self.arcs)

    @property
    def depth(self) -> int:
        """Number of levels (longest path length in nodes)."""
        return len(self._levels)

    @property
    def levels(self) -> Tuple[np.ndarray, ...]:
        """Node indices per level; level 0 are the fanin-free nodes."""
        return self._levels

    def index_of(self, name: str) -> int:
        """The node's position in :attr:`nodes` (raises ``KeyError``)."""
        return self._index[name]

    def fanin_indices(self, node_index: int) -> Tuple[int, ...]:
        """Fanin node indices of one node, in canonical (ascending) order."""
        return self._fanins[node_index]

    @property
    def source_indices(self) -> np.ndarray:
        """Indices of path-launching nodes: declared sources plus any
        fanin-free node."""
        return np.array(
            [
                i
                for i, node in enumerate(self.nodes)
                if node.is_source or not self._fanins[i]
            ],
            dtype=np.int64,
        )

    @property
    def sink_indices(self) -> np.ndarray:
        """Indices of path-terminating nodes: declared sinks plus any
        fanout-free node."""
        return np.array(
            [
                i
                for i, node in enumerate(self.nodes)
                if node.is_sink or self._fanout_count[i] == 0
            ],
            dtype=np.int64,
        )

    # ------------------------------------------------------------------
    # Node attribute views
    # ------------------------------------------------------------------

    def drive_widths_nm(self) -> np.ndarray:
        """Per-node drive-device width (nm), in node order."""
        return np.array([n.drive_width_nm for n in self.nodes], dtype=float)

    def loads_af(self) -> np.ndarray:
        """Per-node output load (aF), in node order."""
        return np.array([n.load_af for n in self.nodes], dtype=float)

    # ------------------------------------------------------------------
    # Batched-sweep plan
    # ------------------------------------------------------------------

    def edge_plan(self) -> Tuple[_LevelEdges, ...]:
        """Flattened per-level edge arrays for the batched arrival sweep.

        One :class:`_LevelEdges` per level ≥ 1: receivers of the level in
        ascending node order, each receiver's fanin sources contiguous in
        canonical order.  Computed once and cached on the graph.
        """
        if self._plan is not None:
            return self._plan
        plan: List[_LevelEdges] = []
        for level_nodes in self._levels[1:]:
            dst: List[int] = []
            src: List[int] = []
            starts: List[int] = []
            for node in level_nodes.tolist():
                fanins = self._fanins[node]
                if not fanins:
                    # A declared source can sit above level 0 only via its
                    # level assignment; fanin-free nodes are always level 0,
                    # so this cannot happen — guard anyway.
                    continue
                dst.append(node)
                starts.append(len(src))
                src.extend(fanins)
            plan.append(
                _LevelEdges(
                    dst=np.asarray(dst, dtype=np.int64),
                    src=np.asarray(src, dtype=np.int64),
                    starts=np.asarray(starts, dtype=np.int64),
                )
            )
        self._plan = tuple(plan)
        return self._plan
