"""Timing-graph ingestion: a simple text format plus a design-derived source.

Two ways to obtain a :class:`~repro.timing.graph.TimingGraph`:

``parse_timing_graph`` / ``load_timing_graph``
    Read the reproduction's plain-text timing-graph format — the shape a
    BLIF/netlist flow would emit after technology mapping.  One line per
    element, ``#`` comments::

        node u1 NAND2_X1 width=160 load=640 [source] [sink]
        arc u1 u2

    Widths are nm, loads aF.  Errors carry the offending line number.

``derive_timing_graph``
    Build a graph directly from a placed design inside a
    :class:`~repro.montecarlo.chip_sim.ChipMonteCarlo`, so no external
    files are ever required.  Registers become two nodes (a clock-to-Q
    source and a D-capture sink), combinational cells one node each; fanin
    arcs are drawn deterministically (seeded, locality-weighted toward
    placement neighbours) from already-emitted drivers only, which makes
    the result a DAG *by construction*.  Every node is mapped to its drive
    device's distinct track window in the chip geometry
    (:meth:`~repro.montecarlo.chip_sim.ChipMonteCarlo.instance_windows`),
    which is what lets the parametric tier read per-gate tube counts out of
    the same sampled tracks that decide functional yield.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cells.cell import CellFamily
from repro.device.capacitance import GateCapacitanceModel
from repro.montecarlo.chip_sim import ChipMonteCarlo
from repro.timing.graph import TimingGraph, TimingGraphError, TimingNode

#: Input count per logical function (fanin arcs drawn per derived node);
#: functions not listed default to 2.
FUNCTION_INPUTS: Dict[str, int] = {
    "INV": 1,
    "BUF": 1,
    "NAND2": 2,
    "NOR2": 2,
    "AND2": 2,
    "OR2": 2,
    "XOR2": 2,
    "XNOR2": 2,
    "HA": 2,
    "MUX2": 3,
    "FA": 3,
    "AOI21": 3,
    "OAI21": 3,
    "AOI22": 4,
    "OAI22": 4,
    "AOI222": 6,
    "OAI222": 6,
}


def cell_function(cell_name: str) -> str:
    """Logical function of a library cell name (``"NAND2_X2"`` → ``"NAND2"``)."""
    head, sep, _ = cell_name.rpartition("_X")
    return head if sep else cell_name


# ----------------------------------------------------------------------
# Text format
# ----------------------------------------------------------------------


def parse_timing_graph(text: str) -> TimingGraph:
    """Parse the plain-text timing-graph format into a :class:`TimingGraph`.

    Raises
    ------
    TimingGraphError
        On any malformed line (with its 1-based line number) and on any
        structural problem the graph constructor detects (unknown arc
        endpoints, cycles, flag violations).
    """
    nodes: List[TimingNode] = []
    arcs: List[Tuple[str, str]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        kind = tokens[0]
        if kind == "node":
            if len(tokens) < 3:
                raise TimingGraphError(
                    f"line {lineno}: node needs a name and a cell: {raw!r}"
                )
            name, cell = tokens[1], tokens[2]
            width: Optional[float] = None
            load = 0.0
            is_source = False
            is_sink = False
            for token in tokens[3:]:
                if token == "source":
                    is_source = True
                elif token == "sink":
                    is_sink = True
                elif token.startswith("width="):
                    width = _parse_value(token, "width", lineno)
                elif token.startswith("load="):
                    load = _parse_value(token, "load", lineno)
                else:
                    raise TimingGraphError(
                        f"line {lineno}: unknown node attribute {token!r}"
                    )
            if width is None:
                raise TimingGraphError(
                    f"line {lineno}: node {name!r} is missing width=<nm>"
                )
            try:
                nodes.append(
                    TimingNode(
                        name=name,
                        cell_name=cell,
                        drive_width_nm=width,
                        load_af=load,
                        is_source=is_source,
                        is_sink=is_sink,
                    )
                )
            except (TimingGraphError, ValueError) as exc:
                raise TimingGraphError(f"line {lineno}: {exc}") from None
        elif kind == "arc":
            if len(tokens) != 3:
                raise TimingGraphError(
                    f"line {lineno}: arc needs exactly a driver and a "
                    f"receiver: {raw!r}"
                )
            arcs.append((tokens[1], tokens[2]))
        else:
            raise TimingGraphError(
                f"line {lineno}: expected 'node' or 'arc', got {kind!r}"
            )
    if not nodes:
        raise TimingGraphError("timing graph text defines no nodes")
    return TimingGraph(nodes, arcs)


def _parse_value(token: str, name: str, lineno: int) -> float:
    """Parse one ``key=value`` float attribute (with line-numbered errors)."""
    _, _, text = token.partition("=")
    try:
        return float(text)
    except ValueError:
        raise TimingGraphError(
            f"line {lineno}: could not parse {name} value {text!r}"
        ) from None


def format_timing_graph(graph: TimingGraph) -> str:
    """Serialise a graph back to the text format (parse round-trips)."""
    lines = [f"# timing graph: {graph.n_nodes} nodes, {graph.n_arcs} arcs"]
    for node in graph.nodes:
        parts = [
            "node",
            node.name,
            node.cell_name,
            f"width={node.drive_width_nm:g}",
            f"load={node.load_af:g}",
        ]
        if node.is_source:
            parts.append("source")
        if node.is_sink:
            parts.append("sink")
        lines.append(" ".join(parts))
    for src, dst in graph.arcs:
        lines.append(f"arc {src} {dst}")
    return "\n".join(lines) + "\n"


def load_timing_graph(path: str) -> TimingGraph:
    """Read and parse a timing-graph file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_timing_graph(handle.read())


# ----------------------------------------------------------------------
# Derivation from a placed design
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DerivedTiming:
    """A timing graph derived from a placed design, window-mapped.

    ``node_window[i]`` is the distinct-window index (into the chip
    geometry's count matrices) of node ``i``'s drive device — the window
    whose per-trial working-tube count scales that node's delay.
    """

    graph: TimingGraph
    node_window: np.ndarray


@dataclass(frozen=True)
class _NodeSpec:
    """Mutable-free staging record for one derived node (pre-load pass)."""

    name: str
    cell_name: str
    drive_width_nm: float
    window: int
    is_source: bool
    is_sink: bool


def derive_timing_graph(
    chip: ChipMonteCarlo,
    seed: int = 2010,
    capacitance_model: Optional[GateCapacitanceModel] = None,
    default_fanout: int = 4,
    locality: float = 64.0,
) -> DerivedTiming:
    """Derive a window-mapped timing graph from a placed design.

    Parameters
    ----------
    chip:
        The chip simulator whose placement (and track-window geometry) the
        graph is built over.
    seed:
        Fanin-sampling seed; the same seed always yields the same graph.
    capacitance_model:
        Gate-capacitance model for receiver input loads (default model
        when omitted).
    default_fanout:
        Load multiplier (in copies of the node's own input capacitance)
        for nodes that end up without receivers.
    locality:
        Mean placement distance (in emitted-driver count) of fanin picks;
        smaller values wire the graph more locally along the rows, which
        is what correlates path delays through shared tracks.

    Returns
    -------
    DerivedTiming
        The DAG plus the per-node drive-window mapping.
    """
    if default_fanout < 1:
        raise ValueError("default_fanout must be at least 1")
    if locality <= 0:
        raise ValueError("locality must be positive")
    cap_model = capacitance_model or GateCapacitanceModel()
    rng = np.random.default_rng(seed)

    specs: List[_NodeSpec] = []
    arcs_idx: List[Tuple[int, int]] = []
    drivers: List[int] = []

    def _pick_fanins(k: int) -> List[int]:
        """Locality-weighted distinct picks from the emitted drivers."""
        pool_size = len(drivers)
        k_eff = min(k, pool_size)
        chosen: set = set()
        attempts = 0
        while len(chosen) < k_eff and attempts < 8 * k_eff:
            attempts += 1
            offset = int(rng.geometric(1.0 / locality))
            position = pool_size - offset
            if position >= 0:
                chosen.add(position)
        while len(chosen) < k_eff:
            chosen.add(int(rng.integers(0, pool_size)))
        return [drivers[p] for p in sorted(chosen)]

    for placed, windows in chip.instance_windows():
        cell = placed.cell
        if not windows:
            continue  # physical cells carry no timing arc
        widths = cell.transistor_widths_nm()
        drive_pos = int(np.argmin(widths))
        drive_width = float(widths[drive_pos])
        drive_window = int(windows[drive_pos])
        name = placed.instance.name
        if cell.family is CellFamily.SEQUENTIAL:
            q_index = len(specs)
            specs.append(_NodeSpec(
                name=f"{name}.Q", cell_name=cell.name,
                drive_width_nm=drive_width, window=drive_window,
                is_source=True, is_sink=False,
            ))
            d_index = len(specs)
            specs.append(_NodeSpec(
                name=f"{name}.D", cell_name=cell.name,
                drive_width_nm=drive_width, window=drive_window,
                is_source=False, is_sink=True,
            ))
            for src in _pick_fanins(1):
                arcs_idx.append((src, d_index))
            drivers.append(q_index)
        else:
            k = FUNCTION_INPUTS.get(cell_function(cell.name), 2)
            node_index = len(specs)
            fanins = _pick_fanins(k)
            specs.append(_NodeSpec(
                name=name, cell_name=cell.name,
                drive_width_nm=drive_width, window=drive_window,
                # A combinational node with nothing upstream yet acts as a
                # primary-input driver.
                is_source=not fanins, is_sink=False,
            ))
            for src in fanins:
                arcs_idx.append((src, node_index))
            drivers.append(node_index)

    if not specs:
        raise TimingGraphError(
            "placed design contains no timing-relevant cells"
        )

    # Output load: summed input capacitance of each node's receivers; a
    # node without receivers drives `default_fanout` copies of itself.
    loads = np.zeros(len(specs), dtype=float)
    fanout_seen = np.zeros(len(specs), dtype=bool)
    for src, dst in arcs_idx:
        loads[src] += cap_model.device_capacitance_af(specs[dst].drive_width_nm)
        fanout_seen[src] = True
    for i, spec in enumerate(specs):
        if not fanout_seen[i] and not spec.is_sink:
            loads[i] = default_fanout * cap_model.device_capacitance_af(
                spec.drive_width_nm
            )

    nodes = [
        TimingNode(
            name=spec.name,
            cell_name=spec.cell_name,
            drive_width_nm=spec.drive_width_nm,
            load_af=float(loads[i]),
            is_source=spec.is_source,
            is_sink=spec.is_sink,
        )
        for i, spec in enumerate(specs)
    ]
    arcs = [(specs[src].name, specs[dst].name) for src, dst in arcs_idx]
    graph = TimingGraph(nodes, arcs)
    return DerivedTiming(
        graph=graph,
        node_window=np.array([spec.window for spec in specs], dtype=np.int64),
    )
