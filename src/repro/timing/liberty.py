"""Liberty-style NLDM characterization on top of the gate delay model.

Real signoff flows read cell delays from Liberty non-linear delay model
(NLDM) lookup tables: a small grid of delay values indexed by input slew
(``index_1``) and output load (``index_2``), bilinearly interpolated and
clamped at the grid edges.  This module reproduces that idiom over
:class:`~repro.analysis.delay.GateDelayModel`: every distinct
``(cell, drive width)`` gets one table whose entries are

``t(slew, load) = slew_sensitivity · slew + load / I_nom(W)``

with ``I_nom(W)`` the mean-working-tube nominal drive current.  At the
delay model's own load (``fanout ×`` the device's gate capacitance) and
zero slew the table reproduces ``GateDelayModel.nominal_delay`` exactly,
which pins the characterization to the σ/µ ∝ 1/√N averaging model the
rest of the reproduction uses.  Units compose to picoseconds natively:
aF / µA = ps.

Per-trial Monte Carlo scaling happens *outside* the table: a trial's gate
delay is the table's nominal value times ``I_nom / I_trial``, where
``I_trial`` sums the sampled per-tube currents of the tubes that gate
actually captured (see :mod:`repro.timing.parametric`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.delay import GateDelayModel
from repro.timing.graph import TimingGraph
from repro.units import ensure_positive

#: Default input-slew axis (ps) — 7 points, the classic NLDM grid shape.
DEFAULT_SLEW_INDEX_PS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: Default output-load axis (aF) — 7 points spanning sub-unit to heavy fanout.
DEFAULT_LOAD_INDEX_AF = (40.0, 80.0, 160.0, 320.0, 640.0, 1280.0, 2560.0)

#: Input slew (ps) assumed when a single nominal delay is read per node.
DEFAULT_INPUT_SLEW_PS = 8.0

#: Fraction of the delay added per ps of input slew in the characterization.
DEFAULT_SLEW_SENSITIVITY = 0.05


@dataclass(frozen=True)
class NLDMTable:
    """One Liberty-style delay table: slew × load grid of delays (ps).

    Parameters
    ----------
    slew_index_ps:
        Ascending ``index_1`` axis (input slew, ps).
    load_index_af:
        Ascending ``index_2`` axis (output load, aF).
    values_ps:
        Delay grid of shape ``(len(slew_index_ps), len(load_index_af))``.
    """

    slew_index_ps: Tuple[float, ...]
    load_index_af: Tuple[float, ...]
    values_ps: np.ndarray

    def __post_init__(self) -> None:
        slew = np.asarray(self.slew_index_ps, dtype=float)
        load = np.asarray(self.load_index_af, dtype=float)
        values = np.asarray(self.values_ps, dtype=float)
        if slew.ndim != 1 or slew.size < 2 or np.any(np.diff(slew) <= 0):
            raise ValueError("slew_index_ps must be ascending with >= 2 points")
        if load.ndim != 1 or load.size < 2 or np.any(np.diff(load) <= 0):
            raise ValueError("load_index_af must be ascending with >= 2 points")
        if values.shape != (slew.size, load.size):
            raise ValueError(
                f"values_ps must have shape {(slew.size, load.size)}; "
                f"got {values.shape}"
            )
        object.__setattr__(self, "values_ps", values)

    def lookup(self, slew_ps, load_af) -> np.ndarray:
        """Bilinear table lookup, clamped to the grid edges.

        Accepts scalars or arrays (broadcast together); returns the
        interpolated delay(s) in ps, exactly the Liberty evaluation rule:
        queries outside the grid clamp to the boundary cell rather than
        extrapolating.
        """
        slew_axis = np.asarray(self.slew_index_ps, dtype=float)
        load_axis = np.asarray(self.load_index_af, dtype=float)
        slew = np.clip(np.asarray(slew_ps, dtype=float), slew_axis[0], slew_axis[-1])
        load = np.clip(np.asarray(load_af, dtype=float), load_axis[0], load_axis[-1])
        si = np.clip(np.searchsorted(slew_axis, slew) - 1, 0, slew_axis.size - 2)
        li = np.clip(np.searchsorted(load_axis, load) - 1, 0, load_axis.size - 2)
        s0, s1 = slew_axis[si], slew_axis[si + 1]
        l0, l1 = load_axis[li], load_axis[li + 1]
        fs = (slew - s0) / (s1 - s0)
        fl = (load - l0) / (l1 - l0)
        v = self.values_ps
        return (
            v[si, li] * (1 - fs) * (1 - fl)
            + v[si + 1, li] * fs * (1 - fl)
            + v[si, li + 1] * (1 - fs) * fl
            + v[si + 1, li + 1] * fs * fl
        )

    def scaled(self, factor: float) -> "NLDMTable":
        """A copy with every delay entry multiplied by ``factor``.

        The ``genLib`` derating idiom: one base table per function, scaled
        per drive strength or per corner.
        """
        ensure_positive(factor, "factor")
        return NLDMTable(
            slew_index_ps=self.slew_index_ps,
            load_index_af=self.load_index_af,
            values_ps=self.values_ps * float(factor),
        )


def characterize_cell(
    delay_model: GateDelayModel,
    drive_width_nm: float,
    slew_index_ps: Tuple[float, ...] = DEFAULT_SLEW_INDEX_PS,
    load_index_af: Tuple[float, ...] = DEFAULT_LOAD_INDEX_AF,
    slew_sensitivity: float = DEFAULT_SLEW_SENSITIVITY,
) -> NLDMTable:
    """Build the NLDM table of one drive width from the gate delay model.

    Every entry is ``slew_sensitivity · slew + load / I_nom(W)`` where
    ``I_nom(W)`` is the mean-working-count nominal drive current of the
    delay model, so the table evaluated at zero slew and the model's own
    load (``fanout × C_gate(W)``) equals
    :meth:`~repro.analysis.delay.GateDelayModel.nominal_delay`.
    """
    ensure_positive(drive_width_nm, "drive_width_nm")
    if slew_sensitivity < 0:
        raise ValueError("slew_sensitivity must be non-negative")
    mean_working = (
        delay_model.count_model.mean_count(drive_width_nm)
        * delay_model.type_model.per_cnt_success_probability
    )
    nominal_current = mean_working * delay_model.current_model.semiconducting_on_current_ua(
        delay_model.diameter_mean_nm
    )
    slew = np.asarray(slew_index_ps, dtype=float)
    load = np.asarray(load_index_af, dtype=float)
    if nominal_current <= 0:
        values = np.full((slew.size, load.size), np.inf)
    else:
        values = slew_sensitivity * slew[:, None] + load[None, :] / nominal_current
    return NLDMTable(
        slew_index_ps=tuple(float(s) for s in slew),
        load_index_af=tuple(float(c) for c in load),
        values_ps=values,
    )


def characterize_graph(
    graph: TimingGraph,
    delay_model: GateDelayModel,
    slew_index_ps: Tuple[float, ...] = DEFAULT_SLEW_INDEX_PS,
    load_index_af: Tuple[float, ...] = DEFAULT_LOAD_INDEX_AF,
    slew_sensitivity: float = DEFAULT_SLEW_SENSITIVITY,
) -> Dict[Tuple[str, float], NLDMTable]:
    """One NLDM table per distinct ``(cell_name, drive_width)`` of a graph."""
    tables: Dict[Tuple[str, float], NLDMTable] = {}
    for node in graph.nodes:
        key = (node.cell_name, float(node.drive_width_nm))
        if key not in tables:
            tables[key] = characterize_cell(
                delay_model,
                node.drive_width_nm,
                slew_index_ps=slew_index_ps,
                load_index_af=load_index_af,
                slew_sensitivity=slew_sensitivity,
            )
    return tables


def nominal_node_delays(
    graph: TimingGraph,
    delay_model: GateDelayModel,
    input_slew_ps: float = DEFAULT_INPUT_SLEW_PS,
    tables: Optional[Dict[Tuple[str, float], NLDMTable]] = None,
) -> np.ndarray:
    """Per-node nominal delay (ps) read out of the NLDM tables.

    Each node's delay is its table evaluated at the shared input slew and
    the node's own output load; declared sinks contribute 0 (they only
    capture).  This vector is the trial-independent baseline the Monte
    Carlo scales by each trial's drive-current ratio.
    """
    ensure_positive(input_slew_ps, "input_slew_ps")
    if tables is None:
        tables = characterize_graph(graph, delay_model)
    delays = np.zeros(graph.n_nodes, dtype=float)
    for i, node in enumerate(graph.nodes):
        if node.is_sink:
            continue
        table = tables[(node.cell_name, float(node.drive_width_nm))]
        delays[i] = float(table.lookup(input_slew_ps, node.load_af))
    return delays
