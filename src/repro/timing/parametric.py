"""Parametric (timing) yield from the same per-trial tracks as functional yield.

The paper's correlation argument is exploited twice in one run: the chunk
worker samples the chip's track windows exactly once per trial — through
the *same* kernel and generator consumption as
:meth:`~repro.montecarlo.chip_sim.ChipMonteCarlo.run` — and answers both

* **functional yield**: does any device window capture zero working tubes,
* **parametric yield**: does the critical path meet the clock period, with
  every gate's delay scaled by the drive current its captured tubes carry
  (σ(Ion)/µ(Ion) ∝ 1/√N made concrete per trial).

Because devices along a row share tracks, the counts along a path are
correlated, and so are the delays — the correlation shows up as a heavier
dependence structure than independent per-gate sampling would predict.
Trials are processed in fixed-size chunks through
:func:`~repro.montecarlo.engine.run_chunked`; each chunk consumes its own
``spawn_key``-derived stream, so results are bitwise invariant to
``n_workers``.  ``oracle=True`` swaps the batched levelized STA for the
per-trial scalar walk — same sampled delays, bitwise-equal critical paths.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from repro.analysis.delay import GateDelayModel
from repro.core.count_model import CountModel, PoissonCountModel
from repro.device.capacitance import GateCapacitanceModel
from repro.device.current import CNTCurrentModel
from repro.montecarlo.chip_sim import ChipMonteCarlo, _ChipGeometry, _chip_window_counts
from repro.montecarlo.engine import (
    default_trial_chunk,
    estimate_gap_count,
    run_chunked,
)
from repro.resilience.guards import check_finite
from repro.timing.graph import TimingGraph
from repro.timing.liberty import DEFAULT_INPUT_SLEW_PS, nominal_node_delays
from repro.timing.sta import (
    critical_path_delays,
    propagate_arrivals,
    propagate_arrivals_scalar,
)


@dataclass(frozen=True)
class TimingYieldResult:
    """Joint functional/parametric outcome of one timing Monte Carlo run.

    ``critical_path_ps`` and ``functional_fail`` are per-trial arrays (the
    full distribution, not just its mean), so callers can re-evaluate the
    yields at any clock period without re-sampling.
    """

    n_trials: int
    t_clk_ps: float
    nominal_critical_path_ps: float
    critical_path_ps: np.ndarray
    functional_fail: np.ndarray

    @property
    def functional_yield(self) -> float:
        """P(no device window captured zero working tubes)."""
        return float(np.mean(~self.functional_fail))

    @property
    def timing_yield(self) -> float:
        """P(critical path ≤ t_clk), regardless of functional state."""
        return self.timing_yield_at(self.t_clk_ps)

    @property
    def combined_yield(self) -> float:
        """P(functional AND critical path ≤ t_clk) — the sellable fraction."""
        return self.combined_yield_at(self.t_clk_ps)

    def timing_yield_at(self, t_clk_ps: float) -> float:
        """Timing yield re-evaluated at another clock period."""
        return float(np.mean(self.critical_path_ps <= float(t_clk_ps)))

    def combined_yield_at(self, t_clk_ps: float) -> float:
        """Combined yield re-evaluated at another clock period."""
        ok = (~self.functional_fail) & (
            self.critical_path_ps <= float(t_clk_ps)
        )
        return float(np.mean(ok))

    def slacks_ps(self) -> np.ndarray:
        """Per-trial critical-path slack ``t_clk − delay`` (may be −inf)."""
        return self.t_clk_ps - self.critical_path_ps


def _delays_from_currents(
    scale_ps_ua: np.ndarray, currents_ua: np.ndarray
) -> np.ndarray:
    """Per-(trial, node) delays from per-node scale and per-trial currents.

    ``scale_ps_ua[v] = nominal_delay_ps[v] × nominal_current_ua[v]`` so that
    ``delay = scale / I_trial`` reproduces the nominal delay at nominal
    current and diverges as the captured tubes thin out; a dead gate
    (zero current) gets ``inf``.  Nodes with zero scale (sinks) stay 0
    regardless of their current.
    """
    delays = np.zeros_like(currents_ua, dtype=float)
    active = scale_ps_ua > 0.0
    if np.any(active):
        with np.errstate(divide="ignore"):
            delays[:, active] = scale_ps_ua[active][None, :] / currents_ua[:, active]
    return delays


@dataclass(frozen=True)
class _CorrelatedPayload:
    """Picklable chunk payload of the track-sharing (from-chip) mode."""

    geometry: _ChipGeometry
    graph: TimingGraph
    node_window: np.ndarray
    scale_ps_ua: np.ndarray
    current_model: CNTCurrentModel
    diameter_mean_nm: float
    diameter_std_nm: float
    scalar_oracle: bool = False


def _simulate_timing_chunk(
    payload: _CorrelatedPayload, n_chunk: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """One chunk of joint functional/timing trials over shared tracks.

    The window counts are sampled **first**, through the same kernel and
    generator consumption as the functional chip simulation
    (:func:`~repro.montecarlo.chip_sim._chip_window_counts`); the diameter
    draw only happens afterwards, so the counts — and hence the functional
    verdicts — are bitwise identical to a pure functional run with the
    same root generator and chunking.
    """
    counts = _chip_window_counts(payload.geometry, n_chunk, rng)
    functional_fail = (counts == 0).any(axis=1)
    gate_counts = np.round(counts[:, payload.node_window]).astype(np.int64)
    currents = payload.current_model.on_currents_from_counts(
        gate_counts, rng, payload.diameter_mean_nm, payload.diameter_std_nm
    )
    delays = _delays_from_currents(payload.scale_ps_ua, currents)
    propagate = (
        propagate_arrivals_scalar if payload.scalar_oracle else propagate_arrivals
    )
    arrivals = propagate(payload.graph, delays)
    crit = critical_path_delays(payload.graph, arrivals)
    return functional_fail, crit


@dataclass(frozen=True)
class _IndependentPayload:
    """Picklable chunk payload of the per-node independent (ingested) mode."""

    graph: TimingGraph
    widths_nm: np.ndarray
    count_model: CountModel
    per_cnt_success: float
    scale_ps_ua: np.ndarray
    current_model: CNTCurrentModel
    diameter_mean_nm: float
    diameter_std_nm: float
    scalar_oracle: bool = False


def _simulate_independent_chunk(
    payload: _IndependentPayload, n_chunk: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """One chunk of independent-per-node timing trials (ingested graphs).

    Without placement geometry there are no shared tracks; every node's
    count is drawn from the count model at its own drive width (unique
    widths grouped, ascending, for a deterministic draw order).
    """
    n_nodes = payload.widths_nm.size
    counts = np.empty((n_chunk, n_nodes), dtype=np.int64)
    for width in np.unique(payload.widths_nm):
        columns = np.flatnonzero(payload.widths_nm == width)
        drawn = payload.count_model.sample(
            float(width), n_chunk * columns.size, rng
        )
        counts[:, columns] = np.asarray(drawn, dtype=np.int64).reshape(
            n_chunk, columns.size
        )
    working = rng.binomial(counts, payload.per_cnt_success)
    functional_fail = (working == 0).any(axis=1)
    currents = payload.current_model.on_currents_from_counts(
        working, rng, payload.diameter_mean_nm, payload.diameter_std_nm
    )
    delays = _delays_from_currents(payload.scale_ps_ua, currents)
    propagate = (
        propagate_arrivals_scalar if payload.scalar_oracle else propagate_arrivals
    )
    arrivals = propagate(payload.graph, delays)
    crit = critical_path_delays(payload.graph, arrivals)
    return functional_fail, crit


class TimingMonteCarlo:
    """Monte Carlo timing-yield engine over a characterized timing graph.

    Construct through :meth:`from_chip` (correlated, geometry-backed — the
    paper's track sharing drives both yields from one sampling pass) or
    :meth:`from_graph` (independent per-node counts, for ingested graphs
    without placement information).  Both modes share the NLDM nominal
    characterization, the spawn-keyed chunked execution and the scalar STA
    oracle.
    """

    #: Minimum number of chunks a default-chunked run is split into, so
    #: process pools always receive work (mirrors the chip simulator).
    DEFAULT_PARALLEL_GRAIN = 16

    def __init__(
        self,
        graph: TimingGraph,
        payload,
        worker,
        per_trial_elements: int,
        nominal_delays_ps: np.ndarray,
    ) -> None:
        self.graph = graph
        self._payload = payload
        self._worker = worker
        self._per_trial_elements = max(1, int(per_trial_elements))
        self._nominal_delays_ps = np.asarray(nominal_delays_ps, dtype=float)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def _delay_model_for(
        chip: ChipMonteCarlo,
        current_model: Optional[CNTCurrentModel],
        capacitance_model: Optional[GateCapacitanceModel],
        diameter_mean_nm: float,
        diameter_std_nm: float,
    ) -> GateDelayModel:
        """The NLDM characterization model implied by a chip simulator."""
        return GateDelayModel(
            count_model=PoissonCountModel(chip.pitch.mean_nm),
            type_model=chip.type_model,
            current_model=current_model,
            capacitance_model=capacitance_model,
            diameter_mean_nm=diameter_mean_nm,
            diameter_std_nm=diameter_std_nm,
        )

    @staticmethod
    def _nominal_scale(
        graph: TimingGraph,
        delay_model: GateDelayModel,
        input_slew_ps: float,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-node ``(nominal_delay_ps, delay × current scale)`` vectors."""
        nominal_ps = nominal_node_delays(
            graph, delay_model, input_slew_ps=input_slew_ps
        )
        widths = graph.drive_widths_nm()
        per_tube = delay_model.current_model.semiconducting_on_current_ua(
            delay_model.diameter_mean_nm
        )
        mean_working = np.array(
            [delay_model.count_model.mean_count(float(w)) for w in widths]
        ) * delay_model.type_model.per_cnt_success_probability
        nominal_current = mean_working * per_tube
        return nominal_ps, nominal_ps * nominal_current

    @classmethod
    def from_chip(
        cls,
        chip: ChipMonteCarlo,
        timing: Optional["DerivedTiming"] = None,
        seed: int = 2010,
        current_model: Optional[CNTCurrentModel] = None,
        capacitance_model: Optional[GateCapacitanceModel] = None,
        diameter_mean_nm: float = 1.5,
        diameter_std_nm: float = 0.2,
        input_slew_ps: float = DEFAULT_INPUT_SLEW_PS,
    ) -> "TimingMonteCarlo":
        """Correlated-mode engine over a placed design's track geometry.

        Parameters
        ----------
        chip:
            The functional chip simulator whose geometry (and sampling
            kernel) is shared.
        timing:
            A pre-derived :class:`~repro.timing.ingest.DerivedTiming`;
            derived from ``chip`` with ``seed`` when omitted.
        seed:
            Graph-derivation seed (ignored when ``timing`` is given).
        current_model, capacitance_model:
            Drive-current and load models (defaults when omitted).
        diameter_mean_nm, diameter_std_nm:
            Per-tube diameter statistics of the Monte Carlo.
        input_slew_ps:
            Shared input slew at which the NLDM tables are read.
        """
        from repro.timing.ingest import DerivedTiming, derive_timing_graph

        if timing is None:
            timing = derive_timing_graph(
                chip, seed=seed, capacitance_model=capacitance_model
            )
        if not isinstance(timing, DerivedTiming):
            raise TypeError("timing must be a DerivedTiming (see derive_timing_graph)")
        geometry = chip.chip_geometry()
        if timing.node_window.size and (
            timing.node_window.min() < 0
            or timing.node_window.max() >= geometry.window_lo.size
        ):
            raise ValueError("timing.node_window indexes outside the chip geometry")
        delay_model = cls._delay_model_for(
            chip, current_model, capacitance_model,
            diameter_mean_nm, diameter_std_nm,
        )
        nominal_ps, scale = cls._nominal_scale(
            timing.graph, delay_model, input_slew_ps
        )
        payload = _CorrelatedPayload(
            geometry=geometry,
            graph=timing.graph,
            node_window=timing.node_window,
            scale_ps_ua=scale,
            current_model=delay_model.current_model,
            diameter_mean_nm=diameter_mean_nm,
            diameter_std_nm=diameter_std_nm,
        )
        est_slots = estimate_gap_count(geometry.pitch, geometry.row_height_nm)
        mean_tubes = max(
            1.0,
            float(np.mean(timing.graph.drive_widths_nm())) / geometry.pitch.mean_nm,
        )
        per_trial = geometry.n_rows * est_slots + int(
            timing.graph.n_nodes * mean_tubes
        )
        return cls(
            timing.graph, payload, _simulate_timing_chunk, per_trial, nominal_ps
        )

    @classmethod
    def from_graph(
        cls,
        graph: TimingGraph,
        delay_model: GateDelayModel,
        input_slew_ps: float = DEFAULT_INPUT_SLEW_PS,
    ) -> "TimingMonteCarlo":
        """Independent-mode engine for an ingested graph (no geometry).

        Every node's tube count is drawn independently from the delay
        model's count model at the node's drive width; use
        :meth:`from_chip` when placement geometry is available — it is
        what carries the paper's correlation into the delays.
        """
        nominal_ps, scale = cls._nominal_scale(graph, delay_model, input_slew_ps)
        payload = _IndependentPayload(
            graph=graph,
            widths_nm=graph.drive_widths_nm(),
            count_model=delay_model.count_model,
            per_cnt_success=delay_model.type_model.per_cnt_success_probability,
            scale_ps_ua=scale,
            current_model=delay_model.current_model,
            diameter_mean_nm=delay_model.diameter_mean_nm,
            diameter_std_nm=delay_model.diameter_std_nm,
        )
        widths = graph.drive_widths_nm()
        mean_tubes = max(
            1.0,
            float(np.mean([delay_model.count_model.mean_count(float(w)) for w in widths])),
        )
        per_trial = int(graph.n_nodes * (1 + mean_tubes))
        return cls(graph, payload, _simulate_independent_chunk, per_trial, nominal_ps)

    # ------------------------------------------------------------------
    # Nominal reference
    # ------------------------------------------------------------------

    def nominal_critical_path_ps(self) -> float:
        """Critical-path delay with every node at its nominal delay."""
        arrivals = propagate_arrivals(self.graph, self._nominal_delays_ps)
        return float(critical_path_delays(self.graph, arrivals)[0])

    def default_t_clk_ps(self, factor: float = 1.2) -> float:
        """A clock period ``factor ×`` the nominal critical path."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return factor * self.nominal_critical_path_ps()

    def _default_trial_chunk(self, n_trials: int) -> int:
        """Trials per batch, bounded by the engine's element budget."""
        return default_trial_chunk(
            self._per_trial_elements, n_trials, grain=self.DEFAULT_PARALLEL_GRAIN
        )

    # ------------------------------------------------------------------
    # Monte Carlo
    # ------------------------------------------------------------------

    def run(
        self,
        n_trials: int,
        rng: np.random.Generator,
        t_clk_ps: Optional[float] = None,
        n_workers: int = 1,
        trial_chunk: Optional[int] = None,
        oracle: bool = False,
    ) -> TimingYieldResult:
        """Run ``n_trials`` joint functional/timing fabrications.

        Parameters
        ----------
        n_trials:
            Number of whole-chip trials.
        rng:
            Root generator; each fixed-size trial chunk consumes its own
            spawned stream, so results are bitwise invariant to
            ``n_workers``.
        t_clk_ps:
            Clock period the parametric yield is judged against; defaults
            to :meth:`default_t_clk_ps` (1.2 × the nominal critical path).
        n_workers:
            Processes to spread the chunks over (identical results).
        trial_chunk:
            Trials per batch; the default bounds the per-chunk element
            count while keeping at least
            :attr:`DEFAULT_PARALLEL_GRAIN` chunks.
        oracle:
            Use the per-trial scalar STA walk instead of the batched
            levelized sweep — same sampled delays, bitwise-equal critical
            paths, for equivalence testing and benchmarking.
        """
        if n_trials <= 0:
            raise ValueError("n_trials must be positive")
        if t_clk_ps is None:
            t_clk_ps = self.default_t_clk_ps()
        if t_clk_ps <= 0:
            raise ValueError("t_clk_ps must be positive")
        if trial_chunk is None:
            trial_chunk = self._default_trial_chunk(n_trials)
        payload = replace(self._payload, scalar_oracle=bool(oracle))
        chunks = run_chunked(
            self._worker,
            payload,
            n_trials,
            rng,
            trial_chunk=trial_chunk,
            n_workers=n_workers,
        )
        functional_fail = np.concatenate([c[0] for c in chunks]).astype(bool)
        crit = np.concatenate([c[1] for c in chunks]).astype(float)
        # Infinite critical paths (dead gates) are legitimate; NaN never is.
        check_finite(crit, "timing_mc.critical_path_ps", allow_inf=True)
        return TimingYieldResult(
            n_trials=int(n_trials),
            t_clk_ps=float(t_clk_ps),
            nominal_critical_path_ps=self.nominal_critical_path_ps(),
            critical_path_ps=crit,
            functional_fail=functional_fail,
        )
