"""Static timing propagation: batched levelized sweep plus a scalar oracle.

The batched pass answers every Monte Carlo trial of a chunk at once: per
level it gathers the already-computed fanin arrivals for *all* trials
(``arrival[:, edge_src]``), reduces each receiver's group with one
``np.maximum.reduceat``, and adds the receivers' own delays.  The scalar
oracle walks one trial at a time in plain Python over the same canonical
fanin order.  Because floating-point ``max`` is exact (it selects one of
its operands) and both paths add identical operands, the two produce
**bitwise-equal** arrival matrices — the equivalence the timing tests and
``benchmarks/bench_timing.py`` assert.

Delay matrices may contain ``inf`` (a gate that captured zero working
tubes never switches); ``inf`` propagates through max/add exactly, so an
infinite critical path marks the trial as a parametric failure at any
clock period.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.timing.graph import TimingGraph


def _as_delay_matrix(delays: np.ndarray, n_nodes: int) -> np.ndarray:
    """Validate/normalise a delay array to shape ``(n_trials, n_nodes)``."""
    matrix = np.asarray(delays, dtype=float)
    if matrix.ndim == 1:
        matrix = matrix[None, :]
    if matrix.ndim != 2 or matrix.shape[1] != n_nodes:
        raise ValueError(
            f"delays must have shape (n_trials, {n_nodes}); got {matrix.shape}"
        )
    if np.isnan(matrix).any():
        raise ValueError("delays must not contain NaN (inf marks dead gates)")
    return matrix


def propagate_arrivals(graph: TimingGraph, delays: np.ndarray) -> np.ndarray:
    """Arrival times for all trials in one levelized array sweep.

    Parameters
    ----------
    graph:
        The timing graph to propagate over.
    delays:
        Per-trial node delays, shape ``(n_trials, n_nodes)`` (a 1-D vector
        is treated as one trial).  ``inf`` entries are legal.

    Returns
    -------
    numpy.ndarray
        Arrival matrix of the same shape: ``arrival[t, v] = delay[t, v] +
        max(arrival[t, u] for u in fanins(v))`` with the max over an empty
        fanin set taken as 0 (sources launch at their own delay).
    """
    matrix = _as_delay_matrix(delays, graph.n_nodes)
    arrivals = np.empty_like(matrix)
    roots = graph.levels[0]
    arrivals[:, roots] = matrix[:, roots]
    for level in graph.edge_plan():
        gathered = arrivals[:, level.src]
        fanin_max = np.maximum.reduceat(gathered, level.starts, axis=1)
        arrivals[:, level.dst] = fanin_max + matrix[:, level.dst]
    return arrivals


def propagate_arrivals_scalar(
    graph: TimingGraph, delays: np.ndarray
) -> np.ndarray:
    """Per-trial Python reference of :func:`propagate_arrivals`.

    Walks every trial, level and fanin in scalar Python over the same
    canonical fanin order as the batched plan; retained as the oracle the
    statistical-equivalence tests and the benchmark compare against.
    Bitwise-equal to the batched pass on the same delay matrix.
    """
    matrix = _as_delay_matrix(delays, graph.n_nodes)
    arrivals = np.empty_like(matrix)
    levels = graph.levels
    for trial in range(matrix.shape[0]):
        row = matrix[trial]
        out = arrivals[trial]
        for node in levels[0].tolist():
            out[node] = row[node]
        for level_nodes in levels[1:]:
            for node in level_nodes.tolist():
                best = -np.inf
                for src in graph.fanin_indices(node):
                    value = out[src]
                    if value > best:
                        best = value
                out[node] = best + row[node]
    return arrivals


def critical_path_delays(
    graph: TimingGraph, arrivals: np.ndarray
) -> np.ndarray:
    """Per-trial critical-path delay: the worst sink arrival.

    Sinks are the graph's declared sinks plus any fanout-free node, so
    every path endpoint is covered even in graphs without registers.
    """
    matrix = np.asarray(arrivals, dtype=float)
    if matrix.ndim == 1:
        matrix = matrix[None, :]
    return matrix[:, graph.sink_indices].max(axis=1)


def endpoint_slacks(
    graph: TimingGraph, arrivals: np.ndarray, t_clk_ps: float
) -> np.ndarray:
    """Per-(trial, sink) slack ``t_clk − arrival`` (negative = violation)."""
    matrix = np.asarray(arrivals, dtype=float)
    if matrix.ndim == 1:
        matrix = matrix[None, :]
    return float(t_clk_ps) - matrix[:, graph.sink_indices]


def slack_histogram(
    slacks: np.ndarray,
    n_bins: int = 20,
    range_ps: Optional[tuple] = None,
) -> tuple:
    """Histogram of finite endpoint slacks, as ``(counts, bin_edges)``.

    Infinite slacks (endpoints behind a dead gate) are excluded from the
    binning; the caller accounts for them through the functional-failure
    fraction.
    """
    flat = np.asarray(slacks, dtype=float).ravel()
    finite = flat[np.isfinite(flat)]
    if finite.size == 0:
        edges = np.linspace(0.0, 1.0, n_bins + 1)
        return np.zeros(n_bins, dtype=np.int64), edges
    counts, edges = np.histogram(finite, bins=n_bins, range=range_ps)
    return counts, edges
