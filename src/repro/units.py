"""Unit conventions and conversion helpers used throughout :mod:`repro`.

The library works in a small set of canonical units chosen to keep the
numbers in the original paper directly readable in the code:

* lengths that describe devices and layouts are in **nanometres** (nm),
* lengths that describe carbon nanotubes and placement rows are frequently
  quoted in **micrometres** (µm) in the paper, so conversion helpers are
  provided,
* capacitance is expressed in **arbitrary width-proportional units**
  (the paper's "penalty" metric is a ratio of total gate capacitance, which
  is proportional to total transistor width, so no absolute Farad value is
  ever needed),
* probabilities are plain floats in ``[0, 1]``.

Keeping the units explicit in function and attribute names (``width_nm``,
``length_um`` ...) is the convention across the code base; the helpers here
exist so callers never have to remember the ``1e3`` factors.
"""

from __future__ import annotations

NM_PER_UM = 1000.0
"""Number of nanometres in one micrometre."""

UM_PER_MM = 1000.0
"""Number of micrometres in one millimetre."""

NM_PER_MM = NM_PER_UM * UM_PER_MM
"""Number of nanometres in one millimetre."""


def um_to_nm(value_um: float) -> float:
    """Convert a length from micrometres to nanometres."""
    return float(value_um) * NM_PER_UM


def nm_to_um(value_nm: float) -> float:
    """Convert a length from nanometres to micrometres."""
    return float(value_nm) / NM_PER_UM


def mm_to_nm(value_mm: float) -> float:
    """Convert a length from millimetres to nanometres."""
    return float(value_mm) * NM_PER_MM


def nm_to_mm(value_nm: float) -> float:
    """Convert a length from nanometres to millimetres."""
    return float(value_nm) / NM_PER_MM


def per_um_to_per_nm(value_per_um: float) -> float:
    """Convert a linear density from 1/µm to 1/nm.

    The paper quotes the small-CNFET placement density ``Pmin-CNFET`` in
    FETs per micrometre (1.8 FETs/µm for the OpenRISC case study); internal
    row models work in nanometres.
    """
    return float(value_per_um) / NM_PER_UM


def per_nm_to_per_um(value_per_nm: float) -> float:
    """Convert a linear density from 1/nm to 1/µm."""
    return float(value_per_nm) * NM_PER_UM


def ensure_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive and return it as float.

    Raises
    ------
    ValueError
        If ``value`` is not strictly positive.
    """
    value = float(value)
    if not value > 0.0:
        raise ValueError(f"{name} must be strictly positive, got {value!r}")
    return value


def ensure_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1].

    Raises
    ------
    ValueError
        If ``value`` is outside ``[0, 1]`` or not finite.
    """
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def ensure_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is non-negative and return it as float."""
    value = float(value)
    if value < 0.0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value
