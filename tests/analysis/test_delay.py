"""Tests for the gate-delay variation extension."""

import numpy as np
import pytest

from repro.analysis.delay import GateDelayModel
from repro.core.count_model import PoissonCountModel
from repro.growth.types import CNTTypeModel


@pytest.fixture
def model():
    return GateDelayModel(
        count_model=PoissonCountModel(4.0),
        type_model=CNTTypeModel(1.0 / 3.0, 1.0, 0.0),
        fanout=4,
    )


class TestNominalDelay:
    def test_nominal_delay_positive(self, model):
        assert model.nominal_delay(160.0) > 0.0

    def test_nominal_delay_roughly_width_independent(self, model):
        # Load and drive both scale with width, so the nominal delay is
        # approximately constant across widths.
        d1 = model.nominal_delay(80.0)
        d2 = model.nominal_delay(320.0)
        assert d1 == pytest.approx(d2, rel=0.01)


class TestSampledDelays:
    def test_normalised_mean_near_one(self, model, rng):
        summary = model.summarise(320.0, 2_000, rng)
        assert summary.mean_delay == pytest.approx(1.0, rel=0.1)

    def test_spread_shrinks_with_width(self, model, rng):
        summaries = model.spread_versus_width([40.0, 160.0, 640.0], 2_000, rng)
        spreads = [s.relative_spread for s in summaries]
        assert spreads[0] > spreads[1] > spreads[2]

    def test_tail_quantiles_ordered(self, model, rng):
        summary = model.summarise(160.0, 2_000, rng)
        assert summary.p99_delay >= summary.p95_delay >= summary.mean_delay * 0.8

    def test_failed_devices_reported(self, rng):
        model = GateDelayModel(
            count_model=PoissonCountModel(4.0),
            type_model=CNTTypeModel(1.0 / 3.0, 1.0, 0.3),
            fanout=2,
        )
        summary = model.summarise(6.0, 3_000, rng)
        assert summary.failure_fraction > 0.1
        assert np.isfinite(summary.mean_delay)

    def test_infinite_delays_for_failed_devices(self, model, rng):
        delays = model.sample_delays(4.0, 500, rng, normalise=False)
        assert np.any(np.isinf(delays))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GateDelayModel(count_model=PoissonCountModel(4.0), fanout=0)
        with pytest.raises(ValueError):
            GateDelayModel(count_model=PoissonCountModel(4.0), diameter_std_nm=-1.0)

    def test_invalid_sampling_arguments(self, model, rng):
        with pytest.raises(ValueError):
            model.sample_delays(0.0, 10, rng)
        with pytest.raises(ValueError):
            model.sample_delays(80.0, 0, rng)
