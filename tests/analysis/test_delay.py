"""Tests for the gate-delay variation extension."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.delay import GateDelayModel
from repro.core.count_model import PoissonCountModel
from repro.growth.types import CNTTypeModel


@pytest.fixture
def model():
    return GateDelayModel(
        count_model=PoissonCountModel(4.0),
        type_model=CNTTypeModel(1.0 / 3.0, 1.0, 0.0),
        fanout=4,
    )


class TestNominalDelay:
    def test_nominal_delay_positive(self, model):
        assert model.nominal_delay(160.0) > 0.0

    def test_nominal_delay_roughly_width_independent(self, model):
        # Load and drive both scale with width, so the nominal delay is
        # approximately constant across widths.
        d1 = model.nominal_delay(80.0)
        d2 = model.nominal_delay(320.0)
        assert d1 == pytest.approx(d2, rel=0.01)

    def test_nominal_delay_ratios(self, model):
        # Delay = load / current, load ∝ fanout, current ∝ mean working
        # count: doubling fanout doubles the delay, halving the removal
        # survival halves the current and doubles the delay again.
        doubled_fanout = GateDelayModel(
            count_model=model.count_model,
            type_model=model.type_model,
            fanout=2 * model.fanout,
        )
        assert doubled_fanout.nominal_delay(160.0) == pytest.approx(
            2.0 * model.nominal_delay(160.0), rel=1e-12
        )
        half_survival = GateDelayModel(
            count_model=model.count_model,
            type_model=CNTTypeModel(1.0 / 3.0, 1.0, 0.5),
            fanout=model.fanout,
        )
        ratio = (
            model.type_model.per_cnt_success_probability
            / half_survival.type_model.per_cnt_success_probability
        )
        assert half_survival.nominal_delay(160.0) == pytest.approx(
            ratio * model.nominal_delay(160.0), rel=1e-12
        )


class TestSampledDelays:
    def test_normalised_mean_near_one(self, model, rng):
        summary = model.summarise(320.0, 2_000, rng)
        assert summary.mean_delay == pytest.approx(1.0, rel=0.1)

    def test_spread_shrinks_with_width(self, model, rng):
        summaries = model.spread_versus_width([40.0, 160.0, 640.0], 2_000, rng)
        spreads = [s.relative_spread for s in summaries]
        assert spreads[0] > spreads[1] > spreads[2]

    def test_tail_quantiles_ordered(self, model, rng):
        summary = model.summarise(160.0, 2_000, rng)
        assert summary.p99_delay >= summary.p95_delay >= summary.mean_delay * 0.8

    def test_failed_devices_reported(self, rng):
        model = GateDelayModel(
            count_model=PoissonCountModel(4.0),
            type_model=CNTTypeModel(1.0 / 3.0, 1.0, 0.3),
            fanout=2,
        )
        summary = model.summarise(6.0, 3_000, rng)
        assert summary.failure_fraction > 0.1
        assert np.isfinite(summary.mean_delay)

    def test_infinite_delays_for_failed_devices(self, model, rng):
        delays = model.sample_delays(4.0, 500, rng, normalise=False)
        assert np.any(np.isinf(delays))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GateDelayModel(count_model=PoissonCountModel(4.0), fanout=0)
        with pytest.raises(ValueError):
            GateDelayModel(count_model=PoissonCountModel(4.0), diameter_std_nm=-1.0)

    def test_invalid_sampling_arguments(self, model, rng):
        with pytest.raises(ValueError):
            model.sample_delays(0.0, 10, rng)
        with pytest.raises(ValueError):
            model.sample_delays(80.0, 0, rng)

    def test_tail_quantiles_shrink_with_width(self, model, rng):
        # σ(Ion)/µ(Ion) ∝ 1/√N: wider devices capture more tubes, so the
        # normalised slow tail (p95, p99) tightens toward the mean.
        summaries = model.spread_versus_width([40.0, 160.0, 640.0], 4_000, rng)
        p95s = [s.p95_delay for s in summaries]
        p99s = [s.p99_delay for s in summaries]
        assert p95s[0] > p95s[1] > p95s[2]
        assert p99s[0] > p99s[1] > p99s[2]


class TestDelaysFromCounts:
    def test_normalised_delay_is_mean_over_count(self, model):
        # With nominal diameters, delay ∝ 1/count, so the normalised delay
        # at an integer count k is exactly mean_working / k.
        width = 160.0
        mean_working = (
            model.count_model.mean_count(width)
            * model.type_model.per_cnt_success_probability
        )
        for k in (1, 4, 26, 40):
            delays = model.delays_from_counts(width, np.array([k]))
            assert delays[0] == pytest.approx(mean_working / k, rel=1e-12)

    def test_zero_count_is_infinite(self, model):
        delays = model.delays_from_counts(160.0, np.array([0, 3]))
        assert np.isinf(delays[0])
        assert np.isfinite(delays[1])

    def test_preserves_shape(self, model):
        counts = np.arange(1, 13).reshape(3, 4)
        delays = model.delays_from_counts(160.0, counts)
        assert delays.shape == counts.shape

    def test_deterministic_without_rng(self, model):
        counts = np.array([1, 2, 5, 9])
        first = model.delays_from_counts(160.0, counts)
        second = model.delays_from_counts(160.0, counts)
        assert np.array_equal(first, second)

    def test_sampling_path_unchanged(self, model):
        # The self-sampling path must stay bitwise identical: the new
        # external-count entry point shares no generator consumption with it.
        a = model.sample_delays(160.0, 200, np.random.default_rng(99))
        b = model.sample_delays(160.0, 200, np.random.default_rng(99))
        assert np.array_equal(a, b)

    @settings(max_examples=50, deadline=None)
    @given(
        counts=st.lists(
            st.integers(min_value=0, max_value=200), min_size=2, max_size=16
        ),
        width=st.floats(min_value=20.0, max_value=800.0, allow_nan=False),
    )
    def test_delay_non_increasing_in_working_count(self, counts, width):
        # With nominal diameters (rng=None) every working tube carries the
        # same current, so delay is exactly non-increasing in the count.
        model = GateDelayModel(
            count_model=PoissonCountModel(4.0),
            type_model=CNTTypeModel(1.0 / 3.0, 1.0, 0.0),
            diameter_std_nm=0.0,
        )
        ordered = np.sort(np.asarray(counts, dtype=np.int64))
        delays = model.delays_from_counts(width, ordered, normalise=False)
        # Pairwise (not np.diff): inf - inf would be NaN for repeated
        # zero counts, but inf >= inf compares fine.
        assert np.all(delays[:-1] >= delays[1:])
