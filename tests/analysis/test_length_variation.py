"""Tests for the CNT length-variation extension."""

import numpy as np
import pytest

from repro.analysis.length_variation import (
    ExponentialLengthDistribution,
    FixedLengthDistribution,
    LengthVariationStudy,
    LognormalLengthDistribution,
)


class TestDistributions:
    def test_fixed(self):
        dist = FixedLengthDistribution(200.0)
        rng = np.random.default_rng(0)
        assert dist.mean_um == 200.0
        assert np.all(dist.sample(10, rng) == 200.0)

    def test_exponential_mean(self):
        dist = ExponentialLengthDistribution(200.0)
        rng = np.random.default_rng(1)
        assert dist.mean_um == 200.0
        assert dist.sample(50_000, rng).mean() == pytest.approx(200.0, rel=0.03)

    def test_lognormal_mean(self):
        dist = LognormalLengthDistribution(median_length_um=100.0, sigma_log=0.5)
        rng = np.random.default_rng(2)
        assert dist.sample(100_000, rng).mean() == pytest.approx(dist.mean_um, rel=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedLengthDistribution(0.0)
        with pytest.raises(ValueError):
            ExponentialLengthDistribution(-1.0)
        with pytest.raises(ValueError):
            LognormalLengthDistribution(100.0, 0.0)


class TestLengthVariationStudy:
    def test_fixed_length_matches_naive(self):
        study = LengthVariationStudy(min_cnfet_density_per_um=1.8)
        result = study.evaluate(FixedLengthDistribution(200.0), n_segments=50_000)
        assert result.naive_relaxation == pytest.approx(360.0)
        # With 360 devices per segment essentially no segment is empty, so
        # the effective relaxation matches the naive value closely.
        assert result.effective_relaxation == pytest.approx(360.0, rel=0.05)
        assert result.empty_segment_fraction < 1e-3

    def test_length_spread_does_not_hurt_at_fixed_mean(self):
        study = LengthVariationStudy(min_cnfet_density_per_um=1.8)
        fixed = study.evaluate(FixedLengthDistribution(10.0), n_segments=100_000)
        exponential = study.evaluate(
            ExponentialLengthDistribution(10.0), n_segments=100_000
        )
        # Under perfect within-tube correlation, occupied segments are
        # length-biased, so spreading the lengths at a fixed mean cannot
        # reduce the effective relaxation (it improves it slightly).
        assert exponential.effective_relaxation >= 0.98 * fixed.effective_relaxation
        assert fixed.ratio_to_naive >= 0.99
        assert exponential.ratio_to_naive >= 0.99

    def test_longer_tubes_help(self):
        study = LengthVariationStudy(min_cnfet_density_per_um=1.8)
        results = study.sweep_mean_length([5.0, 50.0, 200.0], "exponential",
                                          n_segments=50_000)
        relaxations = [r.effective_relaxation for r in results]
        assert relaxations[0] < relaxations[1] < relaxations[2]

    def test_sweep_families(self):
        study = LengthVariationStudy()
        for family in ("fixed", "exponential", "lognormal"):
            results = study.sweep_mean_length([20.0], family, n_segments=20_000)
            assert len(results) == 1
            assert results[0].effective_relaxation > 1.0

    def test_unknown_family_rejected(self):
        study = LengthVariationStudy()
        with pytest.raises(ValueError):
            study.sweep_mean_length([20.0], "weibull")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LengthVariationStudy(min_cnfet_density_per_um=0.0)
        with pytest.raises(ValueError):
            LengthVariationStudy(device_failure_probability=0.0)
