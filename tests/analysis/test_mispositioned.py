"""Tests for the mis-positioned / misaligned CNT analysis."""

import numpy as np
import pytest

from repro.analysis.mispositioned import (
    MisalignmentImpactModel,
    count_loss_probability,
)


class TestCountLossProbability:
    def test_zero_angle_no_loss(self):
        assert count_loss_probability(32.0, 80.0, 0.0) == 0.0

    def test_small_angle_negligible_loss(self):
        # The paper's justification for ignoring mis-positioned CNTs: at a
        # 32 nm channel and 1 degree misalignment the loss is < 1 %.
        assert count_loss_probability(32.0, 80.0, 1.0) < 0.01

    def test_loss_grows_with_channel_length(self):
        short = count_loss_probability(32.0, 80.0, 5.0)
        long = count_loss_probability(500.0, 80.0, 5.0)
        assert long > short

    def test_loss_saturates_at_one(self):
        assert count_loss_probability(1000.0, 10.0, 80.0) == 1.0

    def test_symmetric_in_angle(self):
        assert count_loss_probability(32.0, 80.0, 3.0) == pytest.approx(
            count_loss_probability(32.0, 80.0, -3.0)
        )

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            count_loss_probability(0.0, 80.0, 1.0)
        with pytest.raises(ValueError):
            count_loss_probability(32.0, 0.0, 1.0)


class TestMisalignmentImpactModel:
    @pytest.fixture
    def model(self):
        return MisalignmentImpactModel(
            band_width_nm=103.0, cnt_length_um=200.0, min_cnfet_density_per_um=1.8
        )

    def test_zero_angle_keeps_full_length(self, model):
        assert model.run_length_in_band_um(0.0) == 200.0
        impact = model.evaluate(0.0)
        assert impact.effective_relaxation == pytest.approx(360.0)
        assert impact.relaxation_retention == pytest.approx(1.0)

    def test_run_length_shrinks_with_angle(self, model):
        lengths = [model.run_length_in_band_um(a) for a in (0.01, 0.1, 1.0, 5.0)]
        assert all(a >= b for a, b in zip(lengths, lengths[1:]))

    def test_run_length_geometry(self, model):
        # At 0.1 degrees, W / tan(theta) = 103 nm / 0.001745 ≈ 59 um.
        assert model.run_length_in_band_um(0.1) == pytest.approx(59.0, rel=0.02)

    def test_relaxation_never_below_one(self, model):
        assert model.relaxation_for_angle(89.0) >= 1.0

    def test_effective_relaxation_decreases_with_spread(self, model):
        results = model.sweep([0.0, 0.05, 0.2, 1.0], n_samples=5_000)
        relaxations = [r.effective_relaxation for r in results]
        assert all(a >= b for a, b in zip(relaxations, relaxations[1:]))
        # Sub-0.05-degree alignment keeps most of the 360X benefit; a one
        # degree spread costs the large majority of it.
        assert results[1].relaxation_retention > 0.5
        assert results[-1].relaxation_retention < 0.2

    def test_negative_spread_rejected(self, model):
        with pytest.raises(ValueError):
            model.evaluate(-1.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MisalignmentImpactModel(band_width_nm=0.0)
