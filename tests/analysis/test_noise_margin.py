"""Tests for the surviving-m-CNT noise-margin extension."""

import pytest

from repro.analysis.noise_margin import NoiseMarginModel
from repro.core.count_model import PoissonCountModel
from repro.growth.types import CNTTypeModel


def make_model(p_rm=0.999, pm=1.0 / 3.0):
    return NoiseMarginModel(
        count_model=PoissonCountModel(4.0),
        type_model=CNTTypeModel(pm, p_rm, 0.0),
    )


class TestDeviceLevel:
    def test_perfect_removal_no_hazard(self):
        model = make_model(p_rm=1.0)
        assert model.prob_device_has_surviving_mcnt(160.0) == 0.0
        assert model.expected_surviving_mcnt(160.0) == 0.0

    def test_no_removal_many_hazards(self):
        model = make_model(p_rm=0.0)
        assert model.prob_device_has_surviving_mcnt(160.0) > 0.99

    def test_hazard_probability_increases_with_width(self):
        model = make_model(p_rm=0.99)
        assert model.prob_device_has_surviving_mcnt(
            320.0
        ) > model.prob_device_has_surviving_mcnt(80.0)

    def test_expected_count_formula(self):
        model = make_model(p_rm=0.99)
        # mean count 40, q = pm (1-pRm) = 0.3333 * 0.01
        assert model.expected_surviving_mcnt(160.0) == pytest.approx(
            40.0 * (1.0 / 3.0) * 0.01, rel=1e-6
        )

    def test_at_least_k_monotone(self):
        model = make_model(p_rm=0.9)
        p1 = model.prob_device_has_at_least(160.0, 1)
        p2 = model.prob_device_has_at_least(160.0, 2)
        assert p1 >= p2
        assert model.prob_device_has_at_least(160.0, 0) == 1.0

    def test_at_least_one_matches_pgf_route(self):
        model = make_model(p_rm=0.9)
        assert model.prob_device_has_at_least(160.0, 1) == pytest.approx(
            model.prob_device_has_surviving_mcnt(160.0), rel=1e-6
        )


class TestChipLevel:
    def test_summary_scaling(self):
        model = make_model(p_rm=0.9999)
        summary = model.summarise_chip(160.0, chip_device_count=1e8)
        assert summary.expected_hazardous_devices_per_chip == pytest.approx(
            summary.prob_device_has_surviving_mcnt * 1e8
        )

    def test_required_removal_probability_is_high(self):
        # Reproduces the style of the paper's "pRm > 99.99 %" requirement:
        # keeping hazards below ~1e4 devices on a 1e8-device chip requires a
        # removal probability extremely close to 1.
        model = make_model(p_rm=1.0)
        required = model.required_removal_probability(
            160.0, chip_device_count=1e8, max_hazardous_devices=1e4
        )
        assert required > 0.999

    def test_required_removal_zero_when_no_metallic(self):
        model = NoiseMarginModel(
            count_model=PoissonCountModel(4.0),
            type_model=CNTTypeModel(0.0, 0.0, 0.0),
        )
        assert model.required_removal_probability(160.0, 1e8) == 0.0

    def test_hazard_curve_monotone_in_prm(self):
        model = make_model()
        curve = model.hazard_curve(160.0, [0.9, 0.99, 0.999, 1.0])
        assert all(a >= b for a, b in zip(curve, curve[1:]))
        assert curve[-1] == 0.0
