"""Fixtures for the cross-backend conformance suite.

``backend_spec`` parametrises every conformance test over the available
backends and both dtype policies.  NumPy variants always run; CuPy and
torch variants carry the ``gpu`` marker and skip themselves when the
runtime is not importable — so the suite passes cleanly on CPU-only boxes
and automatically widens on machines with the GPU stacks installed.
"""

from __future__ import annotations

import pytest

from repro.backend import BackendUnavailableError, get_backend

BACKEND_PARAMS = [
    pytest.param(("numpy", "float64"), id="numpy-f64"),
    pytest.param(("numpy", "float32"), id="numpy-f32"),
    pytest.param(("cupy", "float64"), id="cupy-f64", marks=pytest.mark.gpu),
    pytest.param(("cupy", "float32"), id="cupy-f32", marks=pytest.mark.gpu),
    pytest.param(("torch", "float64"), id="torch-f64", marks=pytest.mark.gpu),
    pytest.param(("torch", "float32"), id="torch-f32", marks=pytest.mark.gpu),
]


@pytest.fixture(params=BACKEND_PARAMS)
def backend(request):
    """One (backend, dtype) combination; GPU ones skip when unavailable."""
    name, dtype = request.param
    try:
        return get_backend(name, dtype=dtype)
    except BackendUnavailableError as exc:
        pytest.skip(str(exc))


@pytest.fixture
def reference_backend():
    """The bit-identity anchor: NumPy at float64."""
    return get_backend("numpy", dtype="float64")
