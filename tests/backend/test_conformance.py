"""Cross-backend conformance suite for the engine and rare-event kernels.

Every kernel of :mod:`repro.montecarlo.engine` and the hot paths of
:mod:`repro.montecarlo.rare_event` run against each available backend in
both dtype policies and are pinned to scalar oracles coded here from
first principles:

* NumPy/float64 is held to *bit identity* against a frozen re-implementation
  of the pre-dispatch engine (same NumPy calls, same order, same stream);
* NumPy/float32 shares the float64 stream (draws are cast after sampling),
  so it is held to dtype-scaled tolerances against the same oracles;
* CuPy/torch draw different (equally valid) device streams and are held
  to brute-force agreement on *given* positions and to statistical
  agreement on sampled ones; they skip automatically when not importable.

The stopped likelihood-ratio weight path gets its own oracle — it is the
easiest place for a backend port to silently break (an off-by-one stop
index or a dtype promotion changes weights by factors of ``β``).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.backend import get_backend, match_dtype
from repro.growth.pitch import ExponentialPitch, GammaPitch
from repro.montecarlo.engine import (
    count_in_windows,
    count_in_windows_flat,
    estimate_gap_count,
    sample_track_batch,
    window_stop_indices,
)
from repro.montecarlo.rare_event import (
    estimate_device_failure_tilted,
    sample_weighted_track_batch,
    window_stopped_log_weights,
)


def tolerance_for(backend) -> float:
    """Dtype-scaled relative tolerance for value comparisons.

    float64 NumPy is held to exact equality elsewhere; this tolerance
    covers float32 storage (~1e-7 rounding amplified through cumsums over
    a few hundred gaps) and GPU backends, whose different-but-valid RNG
    streams are compared statistically, not bitwise.
    """
    if backend.name == "numpy":
        return 5e-4 if backend.dtype == np.dtype(np.float32) else 1e-14
    return 0.05


def _pre_dispatch_sample_track_batch(pitch, span_nm, n_trials, rng):
    """The PR-1 engine's sampler, frozen verbatim as the bit-identity oracle."""
    start_offsets = rng.random(n_trials) * pitch.mean_nm
    n_gaps = estimate_gap_count(pitch, span_nm)
    gaps = pitch.sample_batch((n_trials, n_gaps), rng)
    positions = np.cumsum(gaps, axis=1)
    positions -= start_offsets[:, None]
    while np.any(positions[:, -1] <= span_nm):
        block = max(16, n_gaps // 4)
        extra = pitch.sample_batch((n_trials, block), rng)
        tail = positions[:, -1][:, None] + np.cumsum(extra, axis=1)
        positions = np.concatenate([positions, tail], axis=1)
    valid = (positions >= 0.0) & (positions <= span_nm)
    return positions, valid, start_offsets


def _brute_force_counts(positions, weights, lo, hi, trial_index):
    out = np.zeros(lo.size)
    for q in range(lo.size):
        row = positions[trial_index[q]]
        mask = (row >= lo[q]) & (row <= hi[q])
        out[q] = weights[trial_index[q]][mask].sum()
    return out


class TestSampleTrackBatch:
    def test_numpy_float64_bit_identical_to_pre_dispatch_engine(
        self, reference_backend
    ):
        pitch = GammaPitch(5.0, 0.6)
        oracle_pos, oracle_valid, oracle_off = _pre_dispatch_sample_track_batch(
            pitch, 240.0, 128, np.random.default_rng(2010)
        )
        batch = sample_track_batch(
            pitch, 240.0, 128, np.random.default_rng(2010),
            backend=reference_backend,
        )
        np.testing.assert_array_equal(batch.positions, oracle_pos)
        np.testing.assert_array_equal(batch.valid, oracle_valid)
        np.testing.assert_array_equal(batch.start_offsets, oracle_off)

    def test_poisson_count_statistics(self, backend):
        # Exponential gaps + uniform offset = Poisson counts over the span,
        # whatever the backend or dtype.
        batch = sample_track_batch(
            ExponentialPitch(4.0), 400.0, 4_000, np.random.default_rng(42),
            backend=backend,
        )
        counts = backend.to_numpy(batch.counts())
        assert counts.mean() == pytest.approx(100.0, rel=0.05)
        assert counts.var() == pytest.approx(100.0, rel=0.15)

    def test_positions_sorted_and_dtype_policy_respected(self, backend):
        batch = sample_track_batch(
            GammaPitch(6.0, 0.8), 300.0, 64, np.random.default_rng(3),
            backend=backend,
        )
        positions = backend.to_numpy(batch.positions)
        assert positions.dtype == backend.dtype
        assert np.all(np.diff(positions, axis=1) >= 0.0)
        in_span = positions[backend.to_numpy(batch.valid)]
        assert np.all((in_span >= 0.0) & (in_span <= 300.0))

    def test_float32_counts_match_float64_stream(self):
        # The NumPy float32 policy consumes the same draws as float64;
        # integer counts may differ only where a track sits within
        # rounding distance of a window edge (none, at these sizes).
        b32 = get_backend("numpy", dtype="float32")
        b64 = get_backend("numpy", dtype="float64")
        c32 = sample_track_batch(
            ExponentialPitch(4.0), 200.0, 2_000, np.random.default_rng(11),
            backend=b32,
        ).counts()
        c64 = sample_track_batch(
            ExponentialPitch(4.0), 200.0, 2_000, np.random.default_rng(11),
            backend=b64,
        ).counts()
        assert np.mean(c32 == c64) > 0.999


class TestWindowCounting:
    def test_counts_match_brute_force(self, backend):
        batch = sample_track_batch(
            ExponentialPitch(6.0), 300.0, 48, np.random.default_rng(5),
            backend=backend,
        )
        positions = backend.to_numpy(batch.positions)
        weights = (
            (np.random.default_rng(6).random(positions.shape) < 0.7)
            & backend.to_numpy(batch.valid)
        )
        host_rng = np.random.default_rng(7)
        lo = host_rng.random(40) * 250.0
        hi = lo + host_rng.random(40) * 45.0
        trial_index = host_rng.integers(0, 48, size=40)
        counts = backend.to_numpy(count_in_windows_flat(
            backend.asarray(positions),
            backend.asarray(weights, dtype=backend.dtype),
            300.0, lo, hi, trial_index,
            backend=backend,
        ))
        expected = _brute_force_counts(
            positions.astype(float), weights, lo, hi, trial_index
        )
        # Counts of 0/1 weights accumulate exactly in the float64
        # accumulator; float32 *positions* can flip a window decision only
        # within rounding distance of an edge (none for these draws).
        np.testing.assert_allclose(counts, expected, atol=1e-9)

    def test_grid_counts_match_flat(self, backend):
        batch = sample_track_batch(
            GammaPitch(5.0, 0.5), 200.0, 16, np.random.default_rng(9),
            backend=backend,
        )
        weights = backend.asarray(batch.valid, dtype=backend.dtype)
        lo = np.linspace(0.0, 150.0, 7)
        hi = lo + 40.0
        grid = backend.to_numpy(
            count_in_windows(batch, weights, lo, hi, backend=backend)
        )
        flat = backend.to_numpy(count_in_windows_flat(
            batch.positions, weights, batch.span_nm,
            np.tile(lo, 16), np.tile(hi, 16), np.repeat(np.arange(16), 7),
            backend=backend,
        )).reshape(16, 7)
        np.testing.assert_array_equal(grid, flat)

    def test_stop_indices_match_scan(self, backend):
        batch = sample_track_batch(
            ExponentialPitch(5.0), 150.0, 32, np.random.default_rng(13),
            backend=backend,
        )
        positions = backend.to_numpy(batch.positions)
        host_rng = np.random.default_rng(14)
        hi = host_rng.random(20) * 150.0
        trial_index = host_rng.integers(0, 32, size=20)
        got = backend.to_numpy(window_stop_indices(
            backend.asarray(positions), 150.0, hi, trial_index,
            backend=backend,
        ))
        expected = np.array([
            np.searchsorted(positions[trial_index[q]], hi[q], side="right")
            for q in range(20)
        ])
        np.testing.assert_array_equal(got, expected)


class TestStoppedLikelihoodRatios:
    """The stopped-LR weight path — the easiest place to silently break."""

    def _scalar_log_weights(self, positions, offsets, tilt, hi, trial_index):
        out = np.empty(hi.size)
        for q in range(hi.size):
            row = positions[trial_index[q]]
            stop = int(np.searchsorted(row, hi[q], side="right"))
            gap_sum = row[stop] + offsets[trial_index[q]]
            out[q] = (
                (stop + 1) * tilt.log_const_per_gap
                + gap_sum * tilt.log_slope_per_nm
            )
        return out

    def test_full_span_weights_match_scalar_oracle(self, backend):
        tilt = GammaPitch(4.0, 0.7).exponential_tilt(2.0)
        batch, log_w = sample_weighted_track_batch(
            tilt, 120.0, 64, np.random.default_rng(17), backend=backend
        )
        positions = backend.to_numpy(batch.positions).astype(float)
        offsets = backend.to_numpy(batch.start_offsets).astype(float)
        expected = np.empty(64)
        for t in range(64):
            stop = int(np.sum(positions[t] <= 120.0))
            gap_sum = positions[t, stop] + offsets[t]
            expected[t] = (
                (stop + 1) * tilt.log_const_per_gap
                + gap_sum * tilt.log_slope_per_nm
            )
        np.testing.assert_allclose(
            backend.to_numpy(log_w), expected, rtol=tolerance_for(backend),
            atol=1e-6 if backend.dtype == np.dtype(np.float32) else 1e-12,
        )

    def test_window_stopped_weights_match_scalar_oracle(self, backend):
        tilt = ExponentialPitch(5.0).exponential_tilt(3.0)
        batch, _ = sample_weighted_track_batch(
            tilt, 200.0, 32, np.random.default_rng(19), backend=backend
        )
        host_rng = np.random.default_rng(20)
        hi = host_rng.random(25) * 200.0
        trial_index = host_rng.integers(0, 32, size=25)
        log_w = backend.to_numpy(window_stopped_log_weights(
            batch, tilt, hi, trial_index, backend=backend
        ))
        positions = backend.to_numpy(batch.positions).astype(float)
        offsets = backend.to_numpy(batch.start_offsets).astype(float)
        expected = self._scalar_log_weights(
            positions, offsets, tilt, hi, trial_index
        )
        np.testing.assert_allclose(
            log_w, expected, rtol=tolerance_for(backend),
            atol=1e-6 if backend.dtype == np.dtype(np.float32) else 1e-12,
        )

    def test_weights_are_unbiased_against_nominal_sampling(self, backend):
        # E_tilted[w] = 1 for the stopped trajectory: the weighted trial
        # count must reproduce the unweighted one within tolerance.
        tilt = ExponentialPitch(4.0).exponential_tilt(2.5)
        _, log_w = sample_weighted_track_batch(
            tilt, 80.0, 20_000, np.random.default_rng(23), backend=backend
        )
        w = np.exp(backend.to_numpy(log_w).astype(float))
        assert w.mean() == pytest.approx(1.0, abs=4.0 * w.std() / math.sqrt(w.size))


class TestTiltedEstimator:
    def test_float64_reference_value(self, reference_backend):
        est = estimate_device_failure_tilted(
            GammaPitch(4.0, 0.7), 0.55, 120.0, 2048,
            np.random.default_rng(20100618), backend=reference_backend,
        )
        # Exact value pinned by tests/fixtures/golden_engine_values.json;
        # here we only anchor the magnitude so this test stays meaningful
        # for every backend param through the shared helper below.
        assert est.estimate == pytest.approx(1.900964811055155e-07, rel=1e-12)

    def test_matches_reference_within_dtype_tolerance(self, backend):
        est = estimate_device_failure_tilted(
            GammaPitch(4.0, 0.7), 0.55, 120.0, 4096,
            np.random.default_rng(29), backend=backend,
        )
        reference = estimate_device_failure_tilted(
            GammaPitch(4.0, 0.7), 0.55, 120.0, 4096,
            np.random.default_rng(29),
            backend=get_backend("numpy", dtype="float64"),
        )
        if backend.name == "numpy":
            assert est.estimate == pytest.approx(
                reference.estimate, rel=max(tolerance_for(backend), 1e-15)
            )
        else:
            # Different device streams: statistical agreement only.
            se = math.hypot(est.standard_error, reference.standard_error)
            assert abs(est.estimate - reference.estimate) <= 6.0 * se

    def test_casting_helper_round_trip(self, backend):
        base = backend.asarray(np.linspace(0.0, 1.0, 8), dtype=backend.dtype)
        cast = backend.cast_like(np.arange(4, dtype=np.float64), base)
        assert backend.to_numpy(cast).dtype == backend.dtype
        host = match_dtype(np.arange(4, dtype=np.float64),
                           np.empty(1, dtype=backend.dtype))
        assert host.dtype == backend.dtype
