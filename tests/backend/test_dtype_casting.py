"""Dtype policy, searchsorted promotion audit, and backend registry tests.

NumPy silently promotes mixed-dtype ``searchsorted`` operands: a float32
haystack with float64 needles upcasts the *haystack* on every query
batch, which defeats the float32 policy's bandwidth saving and is a hard
error on torch.  These tests audit the engine's hot path for that
promotion (every intermediate must stay in the policy dtype) and pin the
explicit-cast helper that prevents it.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.backend import (
    ArrayBackend,
    BackendUnavailableError,
    available_backends,
    default_backend,
    get_backend,
    match_dtype,
    resolve_dtype,
)
from repro.montecarlo.engine import (
    _banded_positions,
    count_in_windows_flat,
    sample_track_batch,
)
from repro.growth.pitch import ExponentialPitch


class TestMatchDtype:
    def test_casts_down_to_float32(self):
        out = match_dtype(np.array([1.0, 2.0]), np.empty(1, dtype=np.float32))
        assert out.dtype == np.float32

    def test_no_copy_when_already_matching(self):
        values = np.array([1.0, 2.0], dtype=np.float32)
        assert match_dtype(values, np.empty(1, dtype=np.float32)) is values

    def test_casts_lists_and_scalars(self):
        out = match_dtype([1.0, 2.5], np.empty(1, dtype=np.float64))
        assert out.dtype == np.float64


class TestFloat32PipelineStaysFloat32:
    """Audit: no step of the float32 window-count path promotes to float64."""

    def test_banded_positions_keep_policy_dtype(self):
        b32 = get_backend("numpy", dtype="float32")
        batch = sample_track_batch(
            ExponentialPitch(4.0), 100.0, 16, np.random.default_rng(1),
            backend=b32,
        )
        assert batch.positions.dtype == np.float32
        flat, offsets = _banded_positions(batch.positions, 100.0, b32)
        assert flat.dtype == np.float32
        assert offsets.dtype == np.float32

    def test_float64_queries_are_cast_not_promoted(self):
        b32 = get_backend("numpy", dtype="float32")
        batch = sample_track_batch(
            ExponentialPitch(4.0), 100.0, 8, np.random.default_rng(2),
            backend=b32,
        )
        # Deliberately float64 queries: the engine must cast them to the
        # positions dtype instead of letting NumPy upcast the haystack.
        lo = np.zeros(8, dtype=np.float64)
        hi = np.full(8, 100.0, dtype=np.float64)
        counts = count_in_windows_flat(
            batch.positions,
            batch.valid.astype(np.float32),
            100.0, lo, hi, np.arange(8),
            backend=b32,
        )
        np.testing.assert_array_equal(counts, np.asarray(batch.counts()))
        # Accumulation stays in the accumulator dtype (float64 default).
        assert counts.dtype == b32.accum_dtype

    def test_accumulator_dtype_is_configurable(self):
        b = get_backend("numpy", dtype="float32", accum_dtype="float32")
        assert b.prefix_sum(np.ones(4, dtype=np.float32)).dtype == np.float32

    def test_huge_batches_promote_band_to_float64(self):
        # Band offsets grow with the trial count; once the float32 ulp at
        # the top band could move a track across a window edge, the band
        # must be built in float64 even under the float32 policy.
        b32 = get_backend("numpy", dtype="float32")
        small = np.sort(
            np.random.default_rng(0).random((64, 4), dtype=np.float32) * 100.0,
            axis=1,
        )
        flat, offsets = _banded_positions(small, 100.0, b32)
        assert flat.dtype == np.float32
        big = np.broadcast_to(small[:1], (200_000, 4))
        flat, offsets = _banded_positions(big, 100.0, b32)
        assert flat.dtype == np.float64
        assert offsets.dtype == np.float64

    def test_accum_env_variable_uses_alias_resolution(self, monkeypatch):
        import repro.backend.core as core

        monkeypatch.setenv("REPRO_ACCUM_DTYPE", "f32")
        core._CACHE.clear()
        try:
            assert get_backend("numpy").accum_dtype == np.dtype(np.float32)
            monkeypatch.setenv("REPRO_ACCUM_DTYPE", "int64")
            core._CACHE.clear()
            with pytest.raises(ValueError, match="dtype policy"):
                get_backend("numpy")
        finally:
            core._CACHE.clear()


class TestRegistry:
    def test_known_backends(self):
        assert {"numpy", "cupy", "torch"} <= set(available_backends())

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("tpu")

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype policy"):
            get_backend("numpy", dtype="float16")
        with pytest.raises(ValueError, match="unknown dtype"):
            resolve_dtype("bfloat16")

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        monkeypatch.setenv("REPRO_DTYPE", "float32")
        backend = default_backend()
        assert backend.name == "numpy"
        assert backend.dtype == np.dtype(np.float32)

    def test_instances_cached(self):
        assert get_backend("numpy", dtype="float64") is get_backend(
            "numpy", dtype="float64"
        )

    def test_pickle_round_trip(self):
        backend = get_backend("numpy", dtype="float32")
        clone = pickle.loads(pickle.dumps(backend))
        assert clone is backend  # reconstructed through the cache

    def test_unavailable_gpu_backend_raises(self):
        for name in ("cupy", "torch"):
            try:
                __import__(name)
            except ImportError:
                with pytest.raises(BackendUnavailableError):
                    get_backend(name)
            else:  # pragma: no cover - GPU runtime present
                assert get_backend(name).name == name

    def test_protocol_base_is_abstract(self):
        backend = ArrayBackend()
        with pytest.raises(NotImplementedError):
            backend.uniform(np.random.default_rng(0), 4)
        with pytest.raises(NotImplementedError):
            backend.sample_gaps(ExponentialPitch(4.0), (2, 2),
                                np.random.default_rng(0))
