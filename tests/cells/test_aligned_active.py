"""Tests for the aligned-active enforcement heuristic (Sec. 3.2 / Fig. 3.2)."""

import pytest

from repro.cells.aligned_active import AlignedActiveTransform, enforce_aligned_active
from repro.cells.cell import CellFamily, CellTransistor, StandardCell
from repro.cells.library import CellLibrary
from repro.device.active_region import Polarity


def make_cell(transistors, n_columns, name="CELL_X1"):
    return StandardCell(
        name=name,
        family=CellFamily.COMBINATIONAL,
        transistors=tuple(transistors),
        n_columns=n_columns,
        gate_pitch_nm=190.0,
        height_nm=1400.0,
    )


def nfet(name, width, column, slot=0):
    return CellTransistor(name, Polarity.NFET, width, column, slot)


def pfet(name, width, column, slot=0):
    return CellTransistor(name, Polarity.PFET, width, column, slot)


class TestCellTransform:
    def test_upsizes_critical_devices(self):
        cell = make_cell([nfet("MN0", 80.0, 0), pfet("MP0", 160.0, 0)], 2)
        result = AlignedActiveTransform(wmin_nm=103.0).apply_to_cell(cell)
        widths = {t.name: t.width_nm for t in result.modified.transistors}
        assert widths["MN0"] == 103.0
        assert widths["MP0"] == 160.0  # non-critical, untouched
        assert result.upsized_device_count == 1
        assert not result.has_area_penalty

    def test_no_penalty_without_stacking(self):
        cell = make_cell([nfet("MN0", 80.0, 0), nfet("MN1", 80.0, 1)], 3)
        result = AlignedActiveTransform(103.0).apply_to_cell(cell)
        assert result.extra_columns == 0
        assert result.width_penalty == 0.0

    def test_stacked_critical_pair_widens_cell(self):
        cell = make_cell(
            [nfet("MN0", 80.0, 0, 0), nfet("MN1", 80.0, 0, 1), nfet("MN2", 80.0, 1)],
            11,
        )
        result = AlignedActiveTransform(103.0).apply_to_cell(cell)
        assert result.extra_columns == 1
        assert result.width_penalty == pytest.approx(1.0 / 11.0)
        # The displaced device landed in the new column on band 0.
        moved = next(t for t in result.modified.transistors if t.name == "MN1")
        assert moved.column == 11
        assert moved.row_slot == 0

    def test_two_aligned_regions_absorb_stacked_pair(self):
        cell = make_cell(
            [nfet("MN0", 80.0, 0, 0), nfet("MN1", 80.0, 0, 1)], 5
        )
        result = AlignedActiveTransform(103.0, aligned_region_groups=2).apply_to_cell(cell)
        assert result.extra_columns == 0
        assert result.width_penalty == 0.0

    def test_non_critical_stacked_pair_not_penalised(self):
        # Wide (non-critical) stacked devices do not have to sit on the band.
        cell = make_cell(
            [nfet("MN0", 320.0, 0, 0), nfet("MN1", 320.0, 0, 1)], 5
        )
        result = AlignedActiveTransform(103.0).apply_to_cell(cell)
        assert result.extra_columns == 0

    def test_physical_cell_passthrough(self):
        cell = StandardCell(
            name="FILL_X1", family=CellFamily.PHYSICAL, transistors=tuple(),
            n_columns=1, gate_pitch_nm=190.0, height_nm=1400.0,
        )
        result = AlignedActiveTransform(103.0).apply_to_cell(cell)
        assert result.modified is cell
        assert result.critical_device_count == 0

    def test_area_penalty_nm2(self):
        cell = make_cell(
            [nfet("MN0", 80.0, 0, 0), nfet("MN1", 80.0, 0, 1)], 10
        )
        result = AlignedActiveTransform(103.0).apply_to_cell(cell)
        assert result.area_penalty_nm2 == pytest.approx(190.0 * 1400.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AlignedActiveTransform(wmin_nm=0.0)
        with pytest.raises(ValueError):
            AlignedActiveTransform(wmin_nm=100.0, aligned_region_groups=0)


class TestLibraryTransform:
    def test_nangate_four_cells_penalised(self, nangate45):
        result = enforce_aligned_active(nangate45, wmin_nm=103.0)
        assert result.cell_count == 134
        assert result.penalised_cell_count == 4
        names = {r.original.name for r in result.penalised_cells}
        assert "AOI222_X1" in names

    def test_aoi222_penalty_near_nine_percent(self, nangate45):
        result = enforce_aligned_active(nangate45, wmin_nm=103.0)
        aoi = result.result_for("AOI222_X1")
        # Paper: the AOI222_X1 cell width grows by ~9 %.
        assert aoi.width_penalty == pytest.approx(0.09, abs=0.01)

    def test_nangate_penalty_range(self, nangate45):
        result = enforce_aligned_active(nangate45, wmin_nm=103.0)
        assert 0.03 <= result.min_penalty <= 0.06
        assert 0.10 <= result.max_penalty <= 0.16

    def test_commercial65_roughly_twenty_percent(self, commercial65):
        result = enforce_aligned_active(commercial65, wmin_nm=107.0)
        assert result.penalised_fraction == pytest.approx(0.20, abs=0.05)
        assert result.min_penalty >= 0.09
        assert result.max_penalty <= 0.75

    def test_commercial65_two_regions_no_penalty(self, commercial65):
        result = enforce_aligned_active(
            commercial65, wmin_nm=112.0, aligned_region_groups=2
        )
        assert result.penalised_cell_count == 0
        assert result.min_penalty == 0.0
        assert result.max_penalty == 0.0

    def test_to_library_preserves_count(self, nangate45):
        result = enforce_aligned_active(nangate45, wmin_nm=103.0)
        modified = result.to_library()
        assert len(modified) == len(nangate45)

    def test_result_for_unknown_cell(self, nangate45):
        result = enforce_aligned_active(nangate45, wmin_nm=103.0)
        with pytest.raises(KeyError):
            result.result_for("NOT_A_CELL")
