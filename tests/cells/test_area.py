"""Tests for the area-penalty reporting (Table 2)."""

import pytest

from repro.cells.aligned_active import enforce_aligned_active
from repro.cells.area import (
    area_penalty_report,
    compare_region_variants,
    design_area_increase,
)


class TestAreaPenaltyReport:
    def test_report_fields(self, nangate45):
        result = enforce_aligned_active(nangate45, wmin_nm=103.0)
        report = area_penalty_report(result)
        assert report.cell_count == 134
        assert report.penalised_cell_count == 4
        assert report.penalised_fraction == pytest.approx(4 / 134)
        assert report.min_penalty_percent < report.max_penalty_percent
        assert report.wmin_nm == 103.0

    def test_report_no_penalty_case(self, nangate45):
        result = enforce_aligned_active(nangate45, wmin_nm=103.0, aligned_region_groups=2)
        report = area_penalty_report(result)
        assert report.penalised_cell_count == 0
        assert report.min_penalty == 0.0
        assert report.max_penalty == 0.0
        assert report.mean_penalty_over_penalised == 0.0

    def test_as_table_row(self, nangate45):
        result = enforce_aligned_active(nangate45, wmin_nm=103.0)
        row = area_penalty_report(result).as_table_row()
        assert row["num_cells"] == 134
        assert row["cells_with_penalty"] == 4
        assert "wmin_nm" in row

    def test_compare_region_variants(self, nangate45):
        one = area_penalty_report(enforce_aligned_active(nangate45, 103.0, 1))
        two = area_penalty_report(enforce_aligned_active(nangate45, 103.0, 2))
        indexed = compare_region_variants([one, two])
        assert indexed[1].penalised_cell_count == 4
        assert indexed[2].penalised_cell_count == 0


class TestDesignAreaIncrease:
    def test_zero_when_no_penalised_cells_used(self, nangate45):
        result = enforce_aligned_active(nangate45, wmin_nm=103.0)
        increase = design_area_increase(result, {"INV_X1": 1000, "NAND2_X1": 500})
        assert increase == pytest.approx(0.0)

    def test_positive_when_penalised_cells_used(self, nangate45):
        result = enforce_aligned_active(nangate45, wmin_nm=103.0)
        increase = design_area_increase(result, {"AOI222_X1": 100, "INV_X1": 100})
        assert increase > 0.0

    def test_weighting_matters(self, nangate45):
        result = enforce_aligned_active(nangate45, wmin_nm=103.0)
        heavy = design_area_increase(result, {"AOI222_X1": 1000, "INV_X1": 10})
        light = design_area_increase(result, {"AOI222_X1": 10, "INV_X1": 1000})
        assert heavy > light

    def test_missing_cell_handling(self, nangate45):
        result = enforce_aligned_active(nangate45, wmin_nm=103.0)
        assert design_area_increase(result, {"NOT_A_CELL": 10}) == 0.0
        with pytest.raises(KeyError):
            design_area_increase(result, {"NOT_A_CELL": 10}, ignore_missing=False)
