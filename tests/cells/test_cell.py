"""Tests for the standard-cell model."""

import pytest

from repro.cells.cell import CellFamily, CellPin, CellTransistor, StandardCell
from repro.device.active_region import Polarity


def make_transistor(name="MN0", polarity=Polarity.NFET, width=80.0, column=0, slot=0):
    return CellTransistor(
        name=name, polarity=polarity, width_nm=width, column=column, row_slot=slot
    )


def make_cell(transistors, n_columns=4, name="TEST_X1"):
    return StandardCell(
        name=name,
        family=CellFamily.COMBINATIONAL,
        transistors=tuple(transistors),
        n_columns=n_columns,
        gate_pitch_nm=190.0,
        height_nm=1400.0,
        pins=(CellPin("A", 0), CellPin("ZN", 3, "output")),
    )


class TestCellTransistor:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_transistor(width=0.0)
        with pytest.raises(ValueError):
            CellTransistor("M", Polarity.NFET, 80.0, column=-1)
        with pytest.raises(ValueError):
            CellTransistor("M", Polarity.NFET, 80.0, column=0, row_slot=-1)

    def test_resized(self):
        t = make_transistor(width=80.0).resized(103.0)
        assert t.width_nm == 103.0

    def test_moved(self):
        t = make_transistor(column=0, slot=1).moved(column=5, row_slot=0)
        assert t.column == 5
        assert t.row_slot == 0


class TestStandardCell:
    def test_width_and_area(self):
        cell = make_cell([make_transistor()], n_columns=4)
        assert cell.width_nm == 4 * 190.0
        assert cell.area_nm2 == 4 * 190.0 * 1400.0

    def test_column_bounds_validated(self):
        with pytest.raises(ValueError):
            make_cell([make_transistor(column=10)], n_columns=4)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            make_cell([make_transistor("M0"), make_transistor("M0", column=1)])

    def test_polarity_filter(self):
        cell = make_cell([
            make_transistor("MN0", Polarity.NFET),
            make_transistor("MP0", Polarity.PFET, column=1),
        ])
        assert len(cell.transistors_of(Polarity.NFET)) == 1
        assert len(cell.transistors_of(Polarity.PFET)) == 1

    def test_widths(self):
        cell = make_cell([
            make_transistor("MN0", width=80.0),
            make_transistor("MP0", Polarity.PFET, width=160.0, column=1),
        ])
        assert sorted(cell.transistor_widths_nm()) == [80.0, 160.0]
        assert cell.min_transistor_width_nm() == 80.0

    def test_min_width_empty_cell_raises(self):
        cell = make_cell([])
        with pytest.raises(ValueError):
            cell.min_transistor_width_nm()

    def test_stacking_detection(self):
        cell = make_cell([
            make_transistor("MN0", column=0, slot=0),
            make_transistor("MN1", column=0, slot=1),
            make_transistor("MN2", column=1, slot=0),
        ])
        stacked = cell.columns_with_stacking(Polarity.NFET)
        assert stacked == {0: 2}
        assert cell.max_stacking_depth() == 2

    def test_no_stacking(self):
        cell = make_cell([
            make_transistor("MN0", column=0),
            make_transistor("MN1", column=1),
        ])
        assert cell.columns_with_stacking(Polarity.NFET) == {}
        assert cell.max_stacking_depth() == 1

    def test_active_regions_positions(self):
        cell = make_cell([
            make_transistor("MN0", column=1, slot=0),
            make_transistor("MP0", Polarity.PFET, column=1, slot=0),
        ])
        regions = cell.active_regions(x_origin_nm=1000.0)
        n_region = next(r for r in regions if r.transistor.name == "MN0").region
        p_region = next(r for r in regions if r.transistor.name == "MP0").region
        assert n_region.x_nm == pytest.approx(1000.0 + 190.0)
        assert p_region.y_nm > n_region.y_nm
        assert n_region.polarity is Polarity.NFET

    def test_active_regions_stacked_offset(self):
        cell = make_cell([
            make_transistor("MN0", column=0, slot=0),
            make_transistor("MN1", column=0, slot=1),
        ])
        regions = cell.active_regions()
        y_values = {r.transistor.name: r.region.y_nm for r in regions}
        assert y_values["MN1"] > y_values["MN0"]

    def test_with_transistors(self):
        cell = make_cell([make_transistor()])
        wider = cell.with_transistors(
            [make_transistor(width=103.0)], n_columns=5
        )
        assert wider.n_columns == 5
        assert wider.transistors[0].width_nm == 103.0
        assert wider.name == cell.name

    def test_renamed(self):
        cell = make_cell([make_transistor()])
        assert cell.renamed("OTHER_X1").name == "OTHER_X1"
