"""Tests for the synthetic commercial-65-nm-like library."""

import pytest

from repro.cells.cell import CellFamily
from repro.cells.commercial65 import (
    COMMERCIAL65_TARGET_CELL_COUNT,
    build_commercial65_library,
    commercial65_stacked_cell_names,
)


class TestCommercial65Library:
    def test_cell_count_matches_paper(self, commercial65):
        assert len(commercial65) == COMMERCIAL65_TARGET_CELL_COUNT == 775

    def test_roughly_twenty_percent_stacked(self, commercial65):
        stacked = commercial65_stacked_cell_names(commercial65)
        fraction = len(stacked) / len(commercial65)
        # Paper: ~20 % of cells are affected by the aligned-active restriction.
        assert 0.15 <= fraction <= 0.25

    def test_stacked_cells_are_sequential_or_high_fanin(self, commercial65):
        stacked = set(commercial65_stacked_cell_names(commercial65))
        sequential = {c.name for c in commercial65.cells_of_family(CellFamily.SEQUENTIAL)}
        non_sequential_stacked = stacked - sequential
        # Non-sequential stacked cells are the high fan-in complex gates.
        for name in non_sequential_stacked:
            assert any(
                key in name
                for key in ("AOI", "OAI", "XOR", "XNOR", "MXIT", "FAC", "CMPR")
            ), name

    def test_contains_richer_sequential_matrix(self, commercial65):
        for name in ("DFF_X1", "SDFFRS_X2", "EDFFR_X1", "DFFQ4_X1",
                     "SDLH_X1", "CLKGATETST_X4", "RETSDFFRS_X1"):
            assert name in commercial65

    def test_bigger_than_nangate(self, commercial65, nangate45):
        assert len(commercial65) > len(nangate45)
        assert (
            commercial65.statistics().transistor_count
            > nangate45.statistics().transistor_count
        )

    def test_deterministic(self):
        a = build_commercial65_library()
        b = build_commercial65_library()
        assert a.cell_names == b.cell_names

    def test_custom_target_count(self):
        small = build_commercial65_library(target_cell_count=700)
        assert len(small) == 700

    def test_drive_scaling(self, commercial65):
        x1 = commercial65.get("INV_X1")
        x8 = commercial65.get("INV_X8")
        assert x8.transistors[0].width_nm == pytest.approx(
            8.0 * x1.transistors[0].width_nm
        )

    def test_physical_padding_has_no_devices(self, commercial65):
        for cell in commercial65.cells_of_family(CellFamily.PHYSICAL):
            assert cell.transistor_count == 0
