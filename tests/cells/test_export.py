"""Tests for the LEF-style / Liberty-style library exporters."""

import pytest

from repro.cells.aligned_active import enforce_aligned_active
from repro.cells.export import (
    export_liberty_view,
    export_physical_view,
    parse_physical_view,
    total_input_capacitance_af,
)


class TestPhysicalView:
    def test_contains_every_cell(self, nangate45):
        text = export_physical_view(nangate45)
        for name in nangate45.cell_names:
            assert f"MACRO {name}" in text

    def test_round_trip_macro_count(self, nangate45):
        text = export_physical_view(nangate45)
        macros = parse_physical_view(text)
        assert len(macros) == len(nangate45)

    def test_round_trip_dimensions_and_devices(self, nangate45):
        text = export_physical_view(nangate45)
        macros = parse_physical_view(text)
        for cell in nangate45:
            macro = macros[cell.name]
            assert macro.width_nm == pytest.approx(cell.width_nm, abs=0.1)
            assert macro.height_nm == pytest.approx(cell.height_nm, abs=0.1)
            assert macro.transistor_count == cell.transistor_count

    def test_active_rect_widths_match_transistors(self, nangate45):
        text = export_physical_view(nangate45)
        macros = parse_physical_view(text)
        inv = nangate45.get("INV_X1")
        macro = macros["INV_X1"]
        widths_from_rects = sorted(
            round(r["y2"] - r["y1"], 1) for r in macro.active_rects
        )
        assert widths_from_rects == sorted(
            round(w, 1) for w in inv.transistor_widths_nm()
        )

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_physical_view("MACRO A\n  FROBNICATE 1\nEND MACRO")
        with pytest.raises(ValueError):
            parse_physical_view("MACRO A\n  CLASS COMBINATIONAL")
        with pytest.raises(ValueError):
            parse_physical_view("  CLASS COMBINATIONAL")


class TestLibertyView:
    def test_contains_cells_and_pins(self, nangate45):
        text = export_liberty_view(nangate45)
        assert 'cell ("INV_X1")' in text
        assert "direction : input;" in text
        assert "capacitance :" in text

    def test_total_capacitance_positive(self, nangate45):
        text = export_liberty_view(nangate45)
        assert total_input_capacitance_af(text) > 0.0

    def test_aligned_library_has_larger_input_capacitance(self, nangate45):
        # Upsizing the critical devices to Wmin increases input capacitance;
        # the Liberty views expose that directly.
        before = total_input_capacitance_af(export_liberty_view(nangate45))
        aligned = enforce_aligned_active(nangate45, wmin_nm=103.0).to_library()
        after = total_input_capacitance_af(export_liberty_view(aligned))
        assert after > before

    def test_drive_strength_emitted(self, nangate45):
        text = export_liberty_view(nangate45)
        assert "drive_strength : 32;" in text
