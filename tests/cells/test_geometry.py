"""Tests for layout geometry primitives."""

import pytest

from repro.cells.geometry import PlacementGrid, Rect, snap_up


class TestRect:
    def test_edges_and_area(self):
        r = Rect(10.0, 20.0, 100.0, 50.0)
        assert r.x_end_nm == 110.0
        assert r.y_end_nm == 70.0
        assert r.area_nm2 == 5000.0

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Rect(0.0, 0.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            Rect(0.0, 0.0, 10.0, -1.0)

    def test_overlap(self):
        a = Rect(0.0, 0.0, 100.0, 100.0)
        b = Rect(50.0, 50.0, 100.0, 100.0)
        c = Rect(100.0, 0.0, 10.0, 10.0)  # touching edge only
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_contains_point(self):
        r = Rect(0.0, 0.0, 100.0, 50.0)
        assert r.contains_point(50.0, 25.0)
        assert r.contains_point(0.0, 0.0)
        assert not r.contains_point(101.0, 25.0)

    def test_translated(self):
        r = Rect(0.0, 0.0, 10.0, 10.0).translated(5.0, -3.0)
        assert r.x_nm == 5.0
        assert r.y_nm == -3.0


class TestPlacementGrid:
    def test_lines(self):
        grid = PlacementGrid(origin_nm=100.0, pitch_nm=50.0)
        assert grid.line(0) == 100.0
        assert grid.line(3) == 250.0

    def test_snap(self):
        grid = PlacementGrid(origin_nm=0.0, pitch_nm=100.0)
        assert grid.snap(140.0) == 100.0
        assert grid.snap(160.0) == 200.0

    def test_snap_index(self):
        grid = PlacementGrid(origin_nm=0.0, pitch_nm=100.0)
        assert grid.snap_index(260.0) == 3

    def test_is_on_grid(self):
        grid = PlacementGrid(origin_nm=10.0, pitch_nm=100.0)
        assert grid.is_on_grid(210.0)
        assert not grid.is_on_grid(215.0)

    def test_distance(self):
        grid = PlacementGrid(origin_nm=0.0, pitch_nm=100.0)
        assert grid.distance_to_grid(130.0) == pytest.approx(30.0)

    def test_invalid_pitch(self):
        with pytest.raises(ValueError):
            PlacementGrid(origin_nm=0.0, pitch_nm=0.0)


class TestSnapUp:
    def test_exact_multiple_unchanged(self):
        assert snap_up(300.0, 100.0) == 300.0

    def test_rounds_up(self):
        assert snap_up(301.0, 100.0) == 400.0

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            snap_up(10.0, 0.0)
