"""Tests for the cell library container."""

import numpy as np
import pytest

from repro.cells.cell import CellFamily, CellTransistor, StandardCell
from repro.cells.library import CellLibrary
from repro.device.active_region import Polarity


def simple_cell(name, width=80.0, family=CellFamily.COMBINATIONAL):
    return StandardCell(
        name=name,
        family=family,
        transistors=(
            CellTransistor("MN0", Polarity.NFET, width, 0),
            CellTransistor("MP0", Polarity.PFET, 2 * width, 0),
        ),
        n_columns=2,
        gate_pitch_nm=190.0,
        height_nm=1400.0,
    )


class TestCellLibrary:
    def test_add_and_get(self):
        library = CellLibrary("lib", [simple_cell("INV_X1")])
        assert "INV_X1" in library
        assert library.get("INV_X1").name == "INV_X1"
        assert len(library) == 1

    def test_duplicate_rejected(self):
        library = CellLibrary("lib", [simple_cell("INV_X1")])
        with pytest.raises(ValueError):
            library.add(simple_cell("INV_X1"))

    def test_replace_allows_overwrite(self):
        library = CellLibrary("lib", [simple_cell("INV_X1", 80.0)])
        library.replace(simple_cell("INV_X1", 100.0))
        assert library.get("INV_X1").transistors[0].width_nm == 100.0

    def test_missing_cell_error_message(self):
        library = CellLibrary("lib")
        with pytest.raises(KeyError, match="lib"):
            library.get("NAND2_X1")

    def test_iteration_order(self):
        library = CellLibrary("lib", [simple_cell("A_X1"), simple_cell("B_X1")])
        assert library.cell_names == ["A_X1", "B_X1"]

    def test_family_filter(self):
        library = CellLibrary("lib", [
            simple_cell("INV_X1"),
            simple_cell("DFF_X1", family=CellFamily.SEQUENTIAL),
        ])
        assert len(library.cells_of_family(CellFamily.SEQUENTIAL)) == 1

    def test_all_widths(self):
        library = CellLibrary("lib", [simple_cell("INV_X1", 80.0)])
        widths = library.all_transistor_widths_nm()
        assert sorted(widths) == [80.0, 160.0]
        n_only = library.all_transistor_widths_nm(Polarity.NFET)
        assert list(n_only) == [80.0]

    def test_width_histogram(self):
        library = CellLibrary("lib", [simple_cell("INV_X1", 80.0)])
        counts, edges = library.width_histogram([0.0, 100.0, 200.0])
        assert counts.tolist() == [1, 1]

    def test_statistics(self):
        library = CellLibrary("lib", [
            simple_cell("INV_X1", 80.0),
            simple_cell("DFF_X1", 80.0, family=CellFamily.SEQUENTIAL),
        ])
        stats = library.statistics()
        assert stats.cell_count == 2
        assert stats.transistor_count == 4
        assert stats.min_transistor_width_nm == 80.0
        assert stats.max_transistor_width_nm == 160.0
        assert stats.sequential_cell_count == 1

    def test_statistics_empty_library_raises(self):
        with pytest.raises(ValueError):
            CellLibrary("lib").statistics()

    def test_copy(self):
        library = CellLibrary("lib", [simple_cell("INV_X1")])
        clone = library.copy("lib2")
        assert clone.name == "lib2"
        assert len(clone) == 1
