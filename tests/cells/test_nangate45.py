"""Tests for the synthetic Nangate-45-like library."""

import pytest

from repro.cells.cell import CellFamily
from repro.cells.nangate45 import (
    BASE_WIDTH_NM,
    NANGATE45_STACKED_CELLS,
    build_nangate45_library,
    nangate45_cell_count,
)
from repro.device.active_region import Polarity


class TestNangate45Library:
    def test_cell_count_matches_paper(self, nangate45):
        assert len(nangate45) == 134
        assert nangate45_cell_count() == 134

    def test_contains_core_cells(self, nangate45):
        for name in ("INV_X1", "NAND2_X1", "NOR2_X2", "AOI222_X1", "DFF_X1",
                     "BUF_X32", "FA_X1", "FILLCELL_X8"):
            assert name in nangate45

    def test_drive_strength_scales_widths(self, nangate45):
        x1 = nangate45.get("INV_X1")
        x4 = nangate45.get("INV_X4")
        assert x4.transistors[0].width_nm == pytest.approx(
            4.0 * x1.transistors[0].width_nm
        )

    def test_inv_x1_widths(self, nangate45):
        inv = nangate45.get("INV_X1")
        n_widths = inv.transistor_widths_nm(Polarity.NFET)
        p_widths = inv.transistor_widths_nm(Polarity.PFET)
        assert n_widths == [BASE_WIDTH_NM]
        assert p_widths == [2.0 * BASE_WIDTH_NM]

    def test_nand2_series_upsizing(self, nangate45):
        nand2 = nangate45.get("NAND2_X1")
        n_widths = nand2.transistor_widths_nm(Polarity.NFET)
        # Two series devices, each upsized by the stack depth.
        assert n_widths == [2 * BASE_WIDTH_NM, 2 * BASE_WIDTH_NM]

    def test_exactly_four_stacked_cells(self, nangate45):
        stacked = [c.name for c in nangate45 if c.max_stacking_depth() > 1]
        assert sorted(stacked) == sorted(NANGATE45_STACKED_CELLS)
        assert len(stacked) == 4

    def test_aoi222_x1_is_stacked_but_x2_is_not(self, nangate45):
        assert nangate45.get("AOI222_X1").max_stacking_depth() == 2
        assert nangate45.get("AOI222_X2").max_stacking_depth() == 1

    def test_sequential_cells_present(self, nangate45):
        sequential = nangate45.cells_of_family(CellFamily.SEQUENTIAL)
        assert len(sequential) >= 20

    def test_physical_cells_have_no_transistors(self, nangate45):
        for cell in nangate45.cells_of_family(CellFamily.PHYSICAL):
            assert cell.transistor_count == 0

    def test_all_cells_have_positive_dimensions(self, nangate45):
        for cell in nangate45:
            assert cell.width_nm > 0
            assert cell.height_nm > 0

    def test_width_quantisation(self, nangate45):
        # Every device width is a multiple of the 80 nm quantum, which is
        # what produces the clean 80/160/240/320 histogram bins of Fig. 2.2a.
        widths = nangate45.all_transistor_widths_nm()
        remainders = widths % BASE_WIDTH_NM
        assert max(abs(r) for r in remainders) < 1e-9

    def test_library_is_deterministic(self):
        a = build_nangate45_library()
        b = build_nangate45_library()
        assert a.cell_names == b.cell_names
        assert (
            a.all_transistor_widths_nm().tolist()
            == b.all_transistor_widths_nm().tolist()
        )

    def test_pins_defined_for_logic_cells(self, nangate45):
        aoi = nangate45.get("AOI222_X1")
        directions = {p.direction for p in aoi.pins}
        assert "input" in directions
        assert "output" in directions
