"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cells.commercial65 import build_commercial65_library
from repro.cells.nangate45 import build_nangate45_library
from repro.core.calibration import CalibratedSetup
from repro.core.count_model import PoissonCountModel
from repro.growth.pitch import ExponentialPitch
from repro.growth.types import CNTTypeModel
from repro.netlist.openrisc import openrisc_width_histogram


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for Monte Carlo tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def type_model() -> CNTTypeModel:
    """The paper's pessimistic processing corner (pm=33 %, pRs=30 %, pRm=1)."""
    return CNTTypeModel(
        metallic_fraction=1.0 / 3.0,
        removal_prob_metallic=1.0,
        removal_prob_semiconducting=0.30,
    )


@pytest.fixture
def poisson_counts() -> PoissonCountModel:
    """Poisson CNT count model at the paper's 4 nm mean pitch."""
    return PoissonCountModel(mean_pitch_nm=4.0)


@pytest.fixture
def exponential_pitch() -> ExponentialPitch:
    """Exponential pitch distribution at the 4 nm mean."""
    return ExponentialPitch(mean_pitch_nm=4.0)


@pytest.fixture
def setup() -> CalibratedSetup:
    """The calibrated 45 nm case-study setup."""
    return CalibratedSetup()


@pytest.fixture(scope="session")
def nangate45():
    """Synthetic Nangate-45-like library (built once per session)."""
    return build_nangate45_library()


@pytest.fixture(scope="session")
def commercial65():
    """Synthetic commercial-65-like library (built once per session)."""
    return build_commercial65_library()


@pytest.fixture
def openrisc_design():
    """Statistical OpenRISC width distribution at the 1e8-transistor scale."""
    return openrisc_width_histogram(1.0e8)
