"""Tests for the calibrated default setup."""

import pytest

from repro.core.calibration import CalibratedSetup, default_setup
from repro.core.count_model import PoissonCountModel
from repro.core.failure import FIG2_1_CORNERS


class TestCalibratedSetup:
    def test_default_count_model_is_poisson(self):
        setup = CalibratedSetup()
        assert isinstance(setup.count_model, PoissonCountModel)

    def test_min_size_device_count(self):
        setup = CalibratedSetup()
        assert setup.min_size_device_count == pytest.approx(0.33e8)

    def test_required_pf_matches_paper_budget(self):
        # (1 - 0.9) / 33e6 ≈ 3e-9 — the horizontal line of Fig. 2.1.
        setup = CalibratedSetup()
        assert setup.required_pf() == pytest.approx(3.03e-9, rel=0.01)

    def test_relaxation_factor_near_350(self):
        setup = CalibratedSetup()
        assert setup.relaxation_factor() == pytest.approx(360.0, rel=0.05)

    def test_relaxed_budget(self):
        setup = CalibratedSetup()
        relaxed = setup.required_pf(setup.relaxation_factor())
        # Paper: ≈1.1e-6 after the 350X relaxation.
        assert relaxed == pytest.approx(1.09e-6, rel=0.05)

    def test_wmin_ordering(self):
        setup = CalibratedSetup()
        assert setup.wmin_correlated_nm() < setup.wmin_uncorrelated_nm()

    def test_wmin_uncorrelated_in_paper_regime(self):
        # Paper: 155 nm; the Poisson calibration gives ≈168 nm (within ~10 %).
        setup = CalibratedSetup()
        assert setup.wmin_uncorrelated_nm() == pytest.approx(155.0, rel=0.12)

    def test_wmin_correlated_in_paper_regime(self):
        # Paper: 103 nm; the Poisson calibration gives ≈118 nm (within ~15 %).
        setup = CalibratedSetup()
        assert setup.wmin_correlated_nm() == pytest.approx(103.0, rel=0.17)

    def test_failure_model_for_other_corner(self):
        setup = CalibratedSetup()
        worst = setup.failure_model
        best = setup.failure_model_for(FIG2_1_CORNERS[-1])
        w = 100.0
        assert best.failure_probability(w) < worst.failure_probability(w)

    def test_count_model_cached(self):
        setup = CalibratedSetup()
        assert setup.count_model is setup.count_model

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CalibratedSetup(mean_pitch_nm=0.0)
        with pytest.raises(ValueError):
            CalibratedSetup(pitch_cv=-1.0)
        with pytest.raises(ValueError):
            CalibratedSetup(yield_target=1.5)

    def test_default_setup_helper(self):
        assert isinstance(default_setup(), CalibratedSetup)
