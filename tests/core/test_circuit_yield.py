"""Tests for the circuit-level yield model — Eq. 2.3 / 2.5."""

import math

import numpy as np
import pytest

from repro.core.circuit_yield import (
    chip_yield,
    chip_yield_from_failure_probabilities,
    expected_failing_devices,
    required_device_failure_probability,
    yield_from_uniform_failure_probability,
    yield_loss,
)
from repro.core.count_model import PoissonCountModel
from repro.core.failure import CNFETFailureModel


class TestChipYield:
    def test_empty_design_yields_one(self):
        assert chip_yield_from_failure_probabilities([]) == 1.0

    def test_exact_product(self):
        assert chip_yield_from_failure_probabilities([0.1, 0.2]) == pytest.approx(
            0.9 * 0.8
        )

    def test_counts_weighting(self):
        direct = chip_yield_from_failure_probabilities([0.01] * 10)
        weighted = chip_yield_from_failure_probabilities([0.01], counts=[10])
        assert direct == pytest.approx(weighted)

    def test_first_order_approximation(self):
        approx = chip_yield_from_failure_probabilities(
            [1e-9], counts=[3.3e7], exact=False
        )
        exact = chip_yield_from_failure_probabilities([1e-9], counts=[3.3e7])
        assert approx == pytest.approx(exact, rel=1e-3)

    def test_certain_failure(self):
        assert chip_yield_from_failure_probabilities([1.0], counts=[1]) == 0.0

    def test_paper_operating_point(self):
        # Mmin = 33e6 devices at pF = 3.03e-9 should give ~90 % yield.
        result = chip_yield_from_failure_probabilities(
            [3.0303e-9], counts=[33e6]
        )
        assert result == pytest.approx(0.905, abs=0.01)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            chip_yield_from_failure_probabilities([1.2])

    def test_mismatched_counts_rejected(self):
        with pytest.raises(ValueError):
            chip_yield_from_failure_probabilities([0.1, 0.2], counts=[1])

    def test_chip_yield_from_widths(self):
        counts_model = PoissonCountModel(4.0)
        failure = CNFETFailureModel(counts_model, per_cnt_failure=0.533)
        y = chip_yield([160.0, 320.0], failure, counts=[1e6, 1e6])
        assert 0.0 < y <= 1.0
        # Wider devices only help.
        y_wider = chip_yield([320.0, 640.0], failure, counts=[1e6, 1e6])
        assert y_wider >= y


class TestBudgets:
    def test_yield_loss(self):
        assert yield_loss(0.9) == pytest.approx(0.1)

    def test_required_pf_first_order(self):
        budget = required_device_failure_probability(0.9, 33e6)
        assert budget == pytest.approx(0.1 / 33e6)

    def test_required_pf_exact_close_to_first_order(self):
        first = required_device_failure_probability(0.9, 33e6)
        exact = required_device_failure_probability(0.9, 33e6, exact=True)
        assert exact == pytest.approx(first, rel=0.06)

    def test_required_pf_perfect_yield(self):
        assert required_device_failure_probability(1.0, 1e6) == 0.0

    def test_required_pf_invalid_count(self):
        with pytest.raises(ValueError):
            required_device_failure_probability(0.9, 0.0)

    def test_budget_round_trip(self):
        # Using the exact budget should reproduce the yield target exactly.
        budget = required_device_failure_probability(0.9, 1e6, exact=True)
        assert yield_from_uniform_failure_probability(budget, 1e6) == pytest.approx(0.9)

    def test_expected_failures(self):
        assert expected_failing_devices([1e-9, 2e-9], counts=[1e6, 1e6]) == pytest.approx(
            3e-3
        )

    def test_uniform_yield_certain_failure(self):
        assert yield_from_uniform_failure_probability(1.0, 10) == 0.0
