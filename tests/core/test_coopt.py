"""Tests for the Pareto process/design co-optimization driver."""

import dataclasses
import inspect
import json

import numpy as np
import pytest

from repro.core.calibration import CalibratedSetup
from repro.core.coopt import (
    ParetoCoOptimizer,
    ProcessPoint,
    pareto_front,
    process_grid,
)
from repro.core.failure import FIG2_1_CORNERS
from repro.netlist.openrisc import openrisc_width_histogram

DESIGN = openrisc_width_histogram(1.0e8)


def make_optimizer(**kwargs):
    defaults = dict(
        widths_nm=DESIGN.widths_nm,
        counts=DESIGN.counts,
        yield_target=0.99,
    )
    defaults.update(kwargs)
    return ParetoCoOptimizer(**defaults)


def front_fingerprint(result):
    return [
        (
            c.process.describe(),
            c.thresholds_nm,
            c.capacitance_penalty,
            c.chip_yield,
            c.yield_lower,
            c.yield_upper,
            c.escalated,
        )
        for c in result.front
    ]


class TestProcessPoint:
    def test_mean_pitch(self):
        assert ProcessPoint(cnt_density_per_um=250.0).mean_pitch_nm == 4.0

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            ProcessPoint(cnt_density_per_um=0.0)

    def test_invalid_misalignment(self):
        with pytest.raises(ValueError):
            ProcessPoint(misalignment_sigma_deg=-1.0)

    def test_grid_order_is_deterministic(self):
        grid = process_grid(
            densities_per_um=(200.0, 250.0), pitch_cvs=(1.0, 0.5)
        )
        assert len(grid) == 2 * 2
        assert grid == process_grid(
            densities_per_um=(200.0, 250.0), pitch_cvs=(1.0, 0.5)
        )
        assert grid[0].cnt_density_per_um == 200.0
        assert grid[0].pitch_cv == 1.0
        assert grid[1].pitch_cv == 0.5

    def test_grid_axes_cover_every_process_knob(self):
        # Arity gate: every ProcessPoint field must be a process_grid
        # axis, so a new processing knob cannot land without joining the
        # grid enumeration (and hence the determinism tests below).
        point_fields = {f.name for f in dataclasses.fields(ProcessPoint)}
        grid_axes = set(inspect.signature(process_grid).parameters)
        assert len(grid_axes) == len(point_fields), (
            f"process_grid axes {sorted(grid_axes)} out of step with "
            f"ProcessPoint fields {sorted(point_fields)}"
        )
        # Full-arity grid: every axis given two values enumerates 2**k
        # points, so a knob missing from the product would show up here.
        grid = process_grid(
            densities_per_um=(200.0, 250.0),
            pitch_cvs=(1.0, 0.5),
            corners=FIG2_1_CORNERS[:2],
            cnt_lengths_um=(100.0, 200.0),
            misalignments_deg=(0.0, 5.0),
            removal_etas=(0.98, 1.0),
        )
        assert len(grid) == 2 ** len(point_fields)
        assert len(set(grid)) == len(grid)

    def test_removal_eta_varies_fastest(self):
        # The eta axis was appended last so existing grids keep their
        # enumeration order at the default (1.0,).
        grid = process_grid(
            densities_per_um=(200.0, 250.0), removal_etas=(0.95, 1.0)
        )
        assert [p.metallic_removal_eta for p in grid] == [0.95, 1.0, 0.95, 1.0]
        assert [p.cnt_density_per_um for p in grid] == [
            200.0, 200.0, 250.0, 250.0,
        ]
        opens_only = process_grid(densities_per_um=(200.0, 250.0))
        assert grid[1::2] == opens_only

    def test_short_probability_knob(self):
        point = ProcessPoint(metallic_removal_eta=0.97)
        expected = point.corner.metallic_fraction * (1.0 - 0.97)
        assert point.short_probability == pytest.approx(expected, abs=1e-15)
        assert ProcessPoint().short_probability == 0.0
        with pytest.raises(ValueError):
            ProcessPoint(metallic_removal_eta=1.5)


class TestParetoFrontHelper:
    def test_dominated_points_dropped(self):
        penalties = np.array([0.1, 0.2, 0.3])
        yields = np.array([0.95, 0.94, 0.99])
        keep = pareto_front(penalties, yields)
        assert keep.tolist() == [0, 2]

    def test_duplicates_resolve_to_first(self):
        keep = pareto_front(np.array([0.1, 0.1]), np.array([0.9, 0.9]))
        assert keep.tolist() == [0]

    def test_empty(self):
        assert pareto_front(np.array([]), np.array([])).size == 0


class TestConstructorValidation:
    def test_requires_widths(self):
        with pytest.raises(ValueError):
            ParetoCoOptimizer(widths_nm=None)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            make_optimizer(widths_nm=[80.0], counts=[-1.0])

    def test_unreachable_target_rejected(self):
        with pytest.raises(ValueError):
            make_optimizer(yield_target=1.0)

    def test_empty_process_points_rejected(self):
        with pytest.raises(ValueError):
            make_optimizer(process_points=[])

    def test_max_combos_guard(self):
        optimizer = make_optimizer(extra_levels=8, max_combos=2)
        with pytest.raises(ValueError, match="max_combos"):
            optimizer.run()


class TestInnerLoop:
    @pytest.fixture(scope="class")
    def result(self):
        return make_optimizer().run()

    def test_meets_target_cheaper_than_uniform(self, result):
        # Acceptance criterion: at least one configuration reaches the
        # 99 % chip-yield target at a penalty no worse than the uniform
        # upsizing baseline of CoOptimizationFlow.
        assert result.meets_target
        assert result.best.chip_yield >= result.yield_target
        assert result.best.capacitance_penalty <= result.uniform_penalty
        assert result.beats_uniform

    def test_front_is_pareto(self, result):
        penalties = [c.capacitance_penalty for c in result.front]
        yields = [c.chip_yield for c in result.front]
        assert penalties == sorted(penalties)
        assert yields == sorted(yields)
        assert all(c.chip_yield >= result.yield_target for c in result.front)

    def test_uniform_plan_is_representable(self, result):
        # The ladder always contains max(W_c, uniform Wt), so the search
        # space includes the uniform-upsizing plan — the structural
        # reason the front can never lose to it.
        optimizer = make_optimizer()
        uniform = optimizer._uniform_optimized.wmin_nm
        for width, levels in zip(DESIGN.widths_nm, optimizer.class_levels):
            assert np.round(max(width, uniform), 6) in levels

    def test_counters_consistent(self, result):
        assert result.candidates_evaluated == (
            result.process_point_count
            * make_optimizer().combos_per_process_point()
        )
        assert result.candidates_pruned > 0
        assert 0 < result.candidates_feasible <= (
            result.candidates_evaluated - result.candidates_pruned
        )

    def test_bounds_bracket_estimate(self, result):
        for c in result.front:
            assert c.yield_lower <= c.chip_yield <= c.yield_upper

    def test_bitwise_deterministic_across_reruns(self, result):
        again = make_optimizer().run()
        assert front_fingerprint(again) == front_fingerprint(result)

    def test_summary_lines(self, result):
        text = "\n".join(result.summary_lines())
        assert "Pareto front" in text
        assert "pruned" in text


class TestEscalation:
    def test_wide_bounds_escalate_to_exact_and_agree(self):
        # A service with an absurd n_sigma stretches every bound until
        # no candidate can be pruned or accepted outright: the whole
        # space must straddle, escalate to the exact closed form, and
        # reproduce the tight-bound front's decisions.  (1e4 sigma keeps
        # log_p + err below the exp overflow threshold.)
        from repro.serving import YieldService

        points = process_grid(densities_per_um=(250.0, 320.0))
        tight = make_optimizer(process_points=points).run()
        wide = make_optimizer(
            process_points=points,
            service=YieldService(n_sigma=1e4),
            surface_method="tilted",
            surface_mc_samples=2000,
            grid_points=(9, 5),
        ).run()
        assert wide.candidates_escalated == wide.candidates_evaluated
        assert wide.candidates_pruned == 0
        assert all(c.escalated for c in wide.front)
        assert [c.thresholds_nm for c in wide.front] == [
            c.thresholds_nm for c in tight.front
        ]
        assert [c.capacitance_penalty for c in wide.front] == [
            c.capacitance_penalty for c in tight.front
        ]


class TestShortsDeterminism:
    def test_shorts_active_front_is_bitwise_deterministic(self):
        # The determinism contract must survive the (p_m, eta) knob:
        # a shorts-active grid (distinct surface per eta) reruns to the
        # identical front fingerprint.
        points = process_grid(
            densities_per_um=(250.0,), removal_etas=(0.995, 1.0)
        )
        first = make_optimizer(process_points=points).run()
        again = make_optimizer(process_points=points).run()
        assert front_fingerprint(again) == front_fingerprint(first)
        etas = {
            c.process.metallic_removal_eta for c in first.front
        }
        assert etas <= {0.995, 1.0}

    def test_imperfect_removal_never_improves_yield(self):
        # At identical thresholds, eta < 1 adds a failure channel, so
        # the best feasible candidate cannot beat the opens-only one.
        # (1e8 devices leave room for only a whisker of short risk; a
        # larger eta deficit makes the 0.99 target unreachable outright.)
        clean = make_optimizer(
            process_points=process_grid(densities_per_um=(250.0,))
        ).run()
        shorted = make_optimizer(
            process_points=process_grid(
                densities_per_um=(250.0,), removal_etas=(1.0 - 1e-10,)
            )
        ).run()
        assert clean.meets_target and shorted.meets_target
        assert shorted.best.chip_yield < clean.best.chip_yield
        assert (
            shorted.best.capacitance_penalty
            >= clean.best.capacitance_penalty - 1e-12
        )


class TestValidation:
    @pytest.fixture(scope="class")
    def validated(self):
        return make_optimizer(
            process_points=process_grid(densities_per_um=(250.0,))
        ).run(validate_trials=48, validate_top=1)

    def test_validation_fields(self, validated):
        assert len(validated.validations) == 1
        v = validated.validations[0]
        assert v.n_trials == 48
        assert v.device_count > 0
        assert 0.0 <= v.mc_chip_yield <= 1.0
        assert v.predicted_mean_failing_devices >= 0.0
        assert np.isfinite(v.z_score)
        assert v.t_clk_ps > 0.0
        assert 0.0 <= v.functional_yield <= 1.0
        assert 0.0 <= v.timing_yield <= 1.0
        assert v.combined_yield <= min(v.functional_yield, v.timing_yield) + 1e-12

    def test_invariant_to_n_workers(self, validated):
        # Acceptance criterion: the front (and the spawn-keyed
        # validation) is bitwise identical for any worker count.
        again = make_optimizer(
            process_points=process_grid(densities_per_um=(250.0,))
        ).run(validate_trials=48, validate_top=1, n_workers=2)
        assert front_fingerprint(again) == front_fingerprint(validated)
        a, b = validated.validations[0], again.validations[0]
        assert a.mc_chip_yield == b.mc_chip_yield
        assert a.mc_mean_failing_devices == b.mc_mean_failing_devices
        assert a.functional_yield == b.functional_yield
        assert a.timing_yield == b.timing_yield

    def test_seed_changes_validation_not_front(self, validated):
        other = make_optimizer(
            process_points=process_grid(densities_per_um=(250.0,)),
            seed=7,
        ).run(validate_trials=48, validate_top=1)
        assert front_fingerprint(other) == front_fingerprint(validated)

    def test_run_rejects_bad_arguments(self):
        optimizer = make_optimizer()
        with pytest.raises(ValueError):
            optimizer.run(validate_trials=-1)
        with pytest.raises(ValueError):
            optimizer.run(validate_top=0)
        with pytest.raises(ValueError):
            optimizer.run(n_workers=0)


class TestDifferentCorners:
    def test_cleaner_corner_needs_less_upsizing(self):
        # FIG2_1_CORNERS[0] is the worst corner (pm=33%, pRs=30%);
        # corners[1] removes the pRs loss, so its per-CNT failure is
        # lower and the target is reachable with less upsizing.
        worst = make_optimizer(
            process_points=process_grid(densities_per_um=(250.0,))
        ).run()
        cleaner = make_optimizer(
            process_points=process_grid(
                densities_per_um=(250.0,), corners=(FIG2_1_CORNERS[1],)
            ),
            setup=CalibratedSetup(corner=FIG2_1_CORNERS[1]),
        ).run()
        assert worst.meets_target and cleaner.meets_target
        assert (
            cleaner.best.capacitance_penalty
            <= worst.best.capacitance_penalty
        )


class TestCLI:
    def run_cli(self, argv, capsys):
        from repro.cli import main

        code = main(argv)
        return code, capsys.readouterr()

    def test_json_payload(self, capsys):
        code, captured = self.run_cli(
            ["co-opt", "--yield-target", "0.99", "--densities", "250,320",
             "--json"],
            capsys,
        )
        assert code == 0
        payload = json.loads(captured.out)
        assert payload["meets_target"] is True
        assert payload["beats_uniform"] is True
        assert payload["best"]["capacitance_penalty"] <= payload["uniform_penalty"]
        assert payload["candidates_evaluated"] > 0
        assert len(payload["front"]) >= 1

    def test_human_output(self, capsys):
        code, captured = self.run_cli(
            ["co-opt", "--yield-target", "0.99", "--densities", "250"],
            capsys,
        )
        assert code == 0
        assert "Pareto front" in captured.out

    @pytest.mark.parametrize("argv", [
        ["co-opt", "--workers", "0"],
        ["co-opt", "--validate-trials", "-1"],
        ["co-opt", "--validate-top", "0"],
        ["co-opt", "--max-combos", "0"],
        ["co-opt", "--extra-levels", "-1"],
        ["co-opt", "--densities", "not-a-number"],
        ["co-opt", "--pitch-cvs", ""],
    ])
    def test_usage_errors_exit_2(self, argv, capsys):
        code, captured = self.run_cli(argv, capsys)
        assert code == 2
        assert "error:" in captured.err
