"""Tests for the row-based correlation yield model — Eq. 3.1 / 3.2, Table 1."""

import math

import numpy as np
import pytest

from repro.core.correlation import (
    CorrelationParameters,
    LayoutScenario,
    RowYieldModel,
    relaxation_factor,
)
from repro.core.count_model import PoissonCountModel


@pytest.fixture
def params():
    return CorrelationParameters(
        cnt_length_um=200.0, min_cnfet_density_per_um=1.8, alignment_fraction=0.5
    )


@pytest.fixture
def model(params):
    return RowYieldModel(
        parameters=params, count_model=PoissonCountModel(4.0), mc_samples=5_000
    )


class TestCorrelationParameters:
    def test_devices_per_row_eq_3_2(self, params):
        # MRmin = LCNT * Pmin-CNFET = 200 µm * 1.8 FETs/µm = 360.
        assert params.devices_per_row == pytest.approx(360.0)

    def test_two_region_groups_halve_devices_per_row(self):
        params = CorrelationParameters(aligned_region_groups=2)
        single = CorrelationParameters(aligned_region_groups=1)
        assert params.devices_per_row == pytest.approx(single.devices_per_row / 2.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CorrelationParameters(cnt_length_um=0.0)
        with pytest.raises(ValueError):
            CorrelationParameters(aligned_region_groups=0)
        with pytest.raises(ValueError):
            CorrelationParameters(alignment_fraction=1.5)


class TestRowFailureProbability:
    def test_aligned_equals_device_pf(self, model):
        assert model.row_failure_probability(
            LayoutScenario.DIRECTIONAL_ALIGNED, 1e-6
        ) == pytest.approx(1e-6)

    def test_uncorrelated_is_m_r_times_larger(self, model, params):
        p_f = 1e-8
        p_rf = model.row_failure_probability(LayoutScenario.UNCORRELATED_GROWTH, p_f)
        assert p_rf == pytest.approx(params.devices_per_row * p_f, rel=1e-3)

    def test_uncorrelated_saturates_at_one(self, model):
        assert model.row_failure_probability(
            LayoutScenario.UNCORRELATED_GROWTH, 0.5
        ) <= 1.0

    def test_non_aligned_between_extremes(self, model):
        p_f = 1e-6
        aligned = model.row_failure_probability(LayoutScenario.DIRECTIONAL_ALIGNED, p_f)
        uncorrelated = model.row_failure_probability(
            LayoutScenario.UNCORRELATED_GROWTH, p_f
        )
        middle = model.row_failure_probability(
            LayoutScenario.DIRECTIONAL_NON_ALIGNED, p_f,
            width_nm=103.0, per_cnt_failure=0.5333,
        )
        assert aligned <= middle <= uncorrelated

    def test_non_aligned_cluster_model(self, model, params):
        # With the default offset-cluster model, the unmodified library
        # behaves like `unaligned_offset_groups` independent classes per row.
        p_f = 1e-8
        middle = model.row_failure_probability(
            LayoutScenario.DIRECTIONAL_NON_ALIGNED, p_f
        )
        assert middle == pytest.approx(params.unaligned_offset_groups * p_f, rel=1e-3)

    def test_alignment_fraction_one_reduces_to_aligned(self):
        params = CorrelationParameters(
            unaligned_offset_groups=None, alignment_fraction=1.0
        )
        model = RowYieldModel(parameters=params)
        assert model.row_failure_probability(
            LayoutScenario.DIRECTIONAL_NON_ALIGNED, 1e-6
        ) == pytest.approx(1e-6)

    def test_alignment_fraction_zero_reduces_to_uncorrelated(self):
        params = CorrelationParameters(
            unaligned_offset_groups=None, alignment_fraction=0.0
        )
        model = RowYieldModel(parameters=params)
        p_f = 1e-6
        assert model.row_failure_probability(
            LayoutScenario.DIRECTIONAL_NON_ALIGNED, p_f
        ) == pytest.approx(
            model.row_failure_probability(LayoutScenario.UNCORRELATED_GROWTH, p_f)
        )

    def test_shared_fraction_model_between_extremes(self):
        params = CorrelationParameters(
            unaligned_offset_groups=None, alignment_fraction=0.5
        )
        model = RowYieldModel(parameters=params)
        p_f = 1e-4
        aligned = model.row_failure_probability(LayoutScenario.DIRECTIONAL_ALIGNED, p_f)
        uncorrelated = model.row_failure_probability(
            LayoutScenario.UNCORRELATED_GROWTH, p_f
        )
        middle = model.row_failure_probability(
            LayoutScenario.DIRECTIONAL_NON_ALIGNED, p_f
        )
        assert aligned <= middle <= uncorrelated


class TestChipLevelEvaluation:
    def test_row_count(self, model):
        result = model.evaluate(
            LayoutScenario.DIRECTIONAL_ALIGNED, 1e-8, min_size_device_count=33e6
        )
        assert result.row_count == pytest.approx(33e6 / 360.0, rel=1e-6)

    def test_chip_yield_improves_with_alignment(self, model):
        p_f = 3e-9 * 360.0  # relaxed operating point
        aligned = model.evaluate(LayoutScenario.DIRECTIONAL_ALIGNED, p_f, 33e6)
        uncorrelated = model.evaluate(LayoutScenario.UNCORRELATED_GROWTH, p_f, 33e6)
        assert aligned.chip_yield > uncorrelated.chip_yield

    def test_aligned_yield_matches_paper_construction(self, model):
        # At pF = 350 x budget the aligned chip yield should be ≈ the target.
        budget = 0.1 / 33e6
        p_f = budget * 360.0
        result = model.evaluate(LayoutScenario.DIRECTIONAL_ALIGNED, p_f, 33e6)
        assert result.chip_yield == pytest.approx(0.9, abs=0.01)


class TestRelaxationFactor:
    def test_headline_value(self):
        # LCNT = 200 µm, Pmin-CNFET = 1.8 FETs/µm -> ≈360X (paper rounds to 350X).
        factor = relaxation_factor(200.0, 1.8, device_failure_probability=1e-8)
        assert factor == pytest.approx(360.0, rel=0.01)

    def test_scales_with_cnt_length(self):
        short = relaxation_factor(50.0, 1.8)
        long = relaxation_factor(200.0, 1.8)
        assert long == pytest.approx(4.0 * short, rel=0.01)

    def test_two_region_groups_halve_benefit(self):
        one = relaxation_factor(200.0, 1.8, aligned_region_groups=1)
        two = relaxation_factor(200.0, 1.8, aligned_region_groups=2)
        assert one / two == pytest.approx(2.0, rel=0.01)

    def test_model_level_relaxation(self, model):
        assert model.relaxation_factor(1e-8) == pytest.approx(360.0, rel=0.01)
