"""Tests for the CNT count models Prob{N(W)}."""

import math

import numpy as np
import pytest

from repro.core.count_model import (
    EmpiricalCountModel,
    PoissonCountModel,
    RenewalCountModel,
    count_model_from_cv,
    count_model_from_pitch,
)
from repro.growth.pitch import DeterministicPitch, ExponentialPitch, GammaPitch


class TestPoissonCountModel:
    def test_mean_count(self):
        model = PoissonCountModel(mean_pitch_nm=4.0)
        assert model.mean_count(160.0) == pytest.approx(40.0)

    def test_pmf_sums_to_one(self):
        model = PoissonCountModel(4.0)
        assert model.pmf(80.0).sum() == pytest.approx(1.0, abs=1e-9)

    def test_pgf_closed_form(self):
        model = PoissonCountModel(4.0)
        lam = 160.0 / 4.0
        assert model.pgf(160.0, 0.5) == pytest.approx(math.exp(-lam * 0.5))

    def test_pgf_bounds(self):
        model = PoissonCountModel(4.0)
        with pytest.raises(ValueError):
            model.pgf(100.0, 1.5)

    def test_prob_zero(self):
        model = PoissonCountModel(4.0)
        assert model.prob_zero(8.0) == pytest.approx(math.exp(-2.0))

    def test_sampling_matches_mean(self):
        model = PoissonCountModel(4.0)
        rng = np.random.default_rng(0)
        counts = model.sample(160.0, 20_000, rng)
        assert counts.mean() == pytest.approx(40.0, rel=0.02)

    def test_std_count(self):
        model = PoissonCountModel(4.0)
        assert model.std_count(160.0) == pytest.approx(math.sqrt(40.0), rel=0.01)


class TestRenewalCountModel:
    def test_exponential_pitch_matches_poisson(self):
        renewal = RenewalCountModel(ExponentialPitch(4.0))
        poisson = PoissonCountModel(4.0)
        for width in (20.0, 80.0, 160.0):
            assert renewal.pgf(width, 0.533) == pytest.approx(
                poisson.pgf(width, 0.533), rel=0.02
            )

    def test_deterministic_pitch_pmf_is_degenerate(self):
        model = RenewalCountModel(DeterministicPitch(10.0))
        pmf = model.pmf(95.0)
        # Exactly 9 gaps fit below 95 nm, so the count is 9 with certainty.
        assert pmf[9] == pytest.approx(1.0, abs=1e-9)

    def test_gamma_pitch_lower_variance_than_poisson(self):
        regular = RenewalCountModel(GammaPitch(4.0, 0.3))
        poisson = PoissonCountModel(4.0)
        assert regular.std_count(160.0) < poisson.std_count(160.0)

    def test_pmf_sums_to_one(self):
        model = RenewalCountModel(GammaPitch(4.0, 0.5))
        assert model.pmf(120.0).sum() == pytest.approx(1.0, abs=1e-9)

    def test_mean_count(self):
        model = RenewalCountModel(GammaPitch(4.0, 0.5))
        assert model.mean_count(120.0) == pytest.approx(30.0)

    def test_pmf_cache_consistency(self):
        model = RenewalCountModel(GammaPitch(4.0, 0.5))
        first = model.pmf(100.0)
        second = model.pmf(100.0)
        assert np.array_equal(first, second)

    def test_sampling_respects_pmf(self):
        model = RenewalCountModel(GammaPitch(4.0, 0.5))
        rng = np.random.default_rng(1)
        counts = model.sample(100.0, 20_000, rng)
        assert counts.mean() == pytest.approx(model.mean_count(100.0), rel=0.05)


class TestEmpiricalCountModel:
    def test_round_trip(self):
        rng = np.random.default_rng(2)
        reference = PoissonCountModel(4.0)
        samples = reference.sample(80.0, 50_000, rng)
        empirical = EmpiricalCountModel()
        empirical.add_samples(80.0, samples)
        assert empirical.mean_count(80.0) == pytest.approx(20.0, rel=0.03)
        assert empirical.pgf(80.0, 0.5) == pytest.approx(
            reference.pgf(80.0, 0.5), rel=0.05
        )

    def test_unknown_width_raises(self):
        empirical = EmpiricalCountModel()
        with pytest.raises(KeyError):
            empirical.pmf(80.0)

    def test_add_merges_samples(self):
        empirical = EmpiricalCountModel()
        empirical.add_samples(40.0, np.array([1, 2, 3]))
        empirical.add_samples(40.0, np.array([4, 5]))
        assert empirical.mean_count(40.0) == pytest.approx(3.0)

    def test_rejects_negative_counts(self):
        empirical = EmpiricalCountModel()
        with pytest.raises(ValueError):
            empirical.add_samples(40.0, np.array([-1, 2]))

    def test_widths_listing(self):
        empirical = EmpiricalCountModel()
        empirical.add_samples(40.0, np.array([1]))
        empirical.add_samples(80.0, np.array([2]))
        assert empirical.widths_nm == [40.0, 80.0]


class TestFactories:
    def test_exponential_maps_to_poisson(self):
        assert isinstance(count_model_from_pitch(ExponentialPitch(4.0)), PoissonCountModel)

    def test_gamma_maps_to_renewal(self):
        assert isinstance(count_model_from_pitch(GammaPitch(4.0, 0.5)), RenewalCountModel)

    def test_from_cv(self):
        assert isinstance(count_model_from_cv(4.0, 1.0), PoissonCountModel)
        assert isinstance(count_model_from_cv(4.0, 0.5), RenewalCountModel)
