"""Tests for the device failure probability pF(W) — Eq. 2.2 / Fig. 2.1."""

import math

import numpy as np
import pytest

from repro.core.count_model import PoissonCountModel
from repro.core.failure import CNFETFailureModel, FIG2_1_CORNERS, ProcessingCorner
from repro.growth.types import CNTTypeModel


@pytest.fixture
def counts():
    return PoissonCountModel(mean_pitch_nm=4.0)


class TestEquation22:
    def test_poisson_closed_form(self, counts):
        model = CNFETFailureModel(counts, per_cnt_failure=0.5)
        width = 80.0
        lam = width / 4.0
        assert model.failure_probability(width) == pytest.approx(
            math.exp(-lam * 0.5), rel=1e-9
        )

    def test_pf_one_always_fails(self, counts):
        model = CNFETFailureModel(counts, per_cnt_failure=1.0)
        assert model.failure_probability(200.0) == 1.0

    def test_pf_zero_only_empty_window_fails(self, counts):
        model = CNFETFailureModel(counts, per_cnt_failure=0.0)
        assert model.failure_probability(8.0) == pytest.approx(math.exp(-2.0))

    def test_monotone_decreasing_in_width(self, counts):
        model = CNFETFailureModel(counts, per_cnt_failure=0.533)
        widths = np.arange(20.0, 200.0, 10.0)
        values = model.failure_probabilities(widths)
        assert np.all(np.diff(values) < 0)

    def test_exponential_decrease(self, counts):
        # With Poisson counts, log pF is linear in W: doubling the width
        # squares the failure probability.
        model = CNFETFailureModel(counts, per_cnt_failure=0.533)
        p40 = model.failure_probability(40.0)
        p80 = model.failure_probability(80.0)
        assert p80 == pytest.approx(p40 ** 2, rel=1e-6)

    def test_log10_matches_probability(self, counts):
        model = CNFETFailureModel(counts, per_cnt_failure=0.533)
        w = 100.0
        assert 10 ** model.log10_failure_probability(w) == pytest.approx(
            model.failure_probability(w), rel=1e-9
        )

    def test_survival_probability(self, counts):
        model = CNFETFailureModel(counts, per_cnt_failure=0.5)
        w = 60.0
        assert model.survival_probability(w) == pytest.approx(
            1.0 - model.failure_probability(w)
        )

    def test_corner_ordering_matches_fig2_1(self, counts):
        # At any fixed width the three curves of Fig. 2.1 are ordered:
        # (pm=33%, pRs=30%) > (pm=33%, pRs=0%) > (pm=0%, pRs=0%).
        values = [
            CNFETFailureModel.from_corner(counts, corner).failure_probability(100.0)
            for corner in FIG2_1_CORNERS
        ]
        assert values[0] > values[1] > values[2]

    def test_from_type_model_equivalent_to_corner(self, counts):
        corner = FIG2_1_CORNERS[0]
        type_model = CNTTypeModel(1.0 / 3.0, 1.0, 0.3)
        a = CNFETFailureModel.from_corner(counts, corner)
        b = CNFETFailureModel.from_type_model(counts, type_model)
        assert a.failure_probability(120.0) == pytest.approx(
            b.failure_probability(120.0)
        )


class TestInverseProblem:
    def test_width_for_failure_probability(self, counts):
        model = CNFETFailureModel(counts, per_cnt_failure=0.533)
        target = 3.0e-9
        width = model.width_for_failure_probability(target)
        assert model.failure_probability(width) <= target
        assert model.failure_probability(width - 1.0) > target

    def test_zero_target_rejected(self, counts):
        model = CNFETFailureModel(counts, per_cnt_failure=0.5)
        with pytest.raises(ValueError):
            model.width_for_failure_probability(0.0)

    def test_bad_bracket_rejected(self, counts):
        model = CNFETFailureModel(counts, per_cnt_failure=0.533)
        with pytest.raises(ValueError):
            model.width_for_failure_probability(1e-12, w_high_nm=30.0)

    def test_already_satisfied_at_low_bound(self, counts):
        model = CNFETFailureModel(counts, per_cnt_failure=0.1)
        assert model.width_for_failure_probability(0.99, w_low_nm=5.0) == 5.0


class TestFailureCurve:
    def test_curve_interpolation(self, counts):
        model = CNFETFailureModel(counts, per_cnt_failure=0.533)
        curve = model.curve(np.arange(20.0, 200.0, 2.0))
        target = 3.0e-9
        w_interp = curve.interpolate_width(target)
        w_exact = model.width_for_failure_probability(target)
        assert w_interp == pytest.approx(w_exact, abs=2.5)

    def test_unreachable_target_raises(self, counts):
        model = CNFETFailureModel(counts, per_cnt_failure=0.533)
        curve = model.curve(np.arange(20.0, 60.0, 2.0))
        with pytest.raises(ValueError):
            curve.interpolate_width(1e-30)


class TestProcessingCorner:
    def test_per_cnt_failure(self):
        corner = ProcessingCorner("test", 0.25, 0.2)
        assert corner.per_cnt_failure_probability == pytest.approx(0.25 + 0.75 * 0.2)

    def test_to_type_model(self):
        corner = ProcessingCorner("test", 0.25, 0.2)
        model = corner.to_type_model()
        assert model.removal_prob_metallic == 1.0
        assert model.per_cnt_failure_probability == pytest.approx(
            corner.per_cnt_failure_probability
        )
