"""Tests for the end-to-end co-optimization flow."""

import numpy as np
import pytest

from repro.core.calibration import CalibratedSetup
from repro.core.correlation import LayoutScenario
from repro.core.optimizer import CoOptimizationFlow
from repro.netlist.openrisc import openrisc_width_histogram


@pytest.fixture
def flow():
    setup = CalibratedSetup()
    design = openrisc_width_histogram(setup.chip_transistor_count)
    return CoOptimizationFlow(
        setup=setup,
        widths_nm=design.widths_nm,
        counts=design.counts,
        min_size_device_count=design.min_size_device_count,
    )


class TestCoOptimizationFlow:
    def test_requires_widths(self):
        with pytest.raises(ValueError):
            CoOptimizationFlow(setup=CalibratedSetup(), widths_nm=None)

    def test_baseline_and_optimized_wmin(self, flow):
        baseline = flow.baseline_wmin()
        optimized = flow.optimized_wmin()
        assert optimized.wmin_nm < baseline.wmin_nm

    def test_relaxation_factor(self, flow):
        assert flow.relaxation_factor() == pytest.approx(360.0, rel=0.05)

    def test_scenario_results_ordering(self, flow):
        wmin = flow.optimized_wmin().wmin_nm
        results = flow.scenario_results(wmin)
        uncorrelated = results[LayoutScenario.UNCORRELATED_GROWTH]
        non_aligned = results[LayoutScenario.DIRECTIONAL_NON_ALIGNED]
        aligned = results[LayoutScenario.DIRECTIONAL_ALIGNED]
        assert (
            uncorrelated.row_failure_probability
            > non_aligned.row_failure_probability
            > aligned.row_failure_probability
        )

    def test_full_report(self, flow):
        report = flow.run()
        assert report.relaxation_factor == pytest.approx(360.0, rel=0.05)
        assert report.wmin_reduction_nm > 0
        # Penalty is reduced by the optimization at the 45 nm node.
        assert (
            report.optimized_upsizing.capacitance_penalty
            < report.baseline_upsizing.capacitance_penalty
        )
        assert report.penalty_reduction > 0
        # Scaling series span the four nodes.
        assert list(report.baseline_scaling.nodes_nm) == [45, 32, 22, 16]
        assert list(report.optimized_scaling.nodes_nm) == [45, 32, 22, 16]

    def test_summary_lines_mention_key_numbers(self, flow):
        report = flow.run()
        text = "\n".join(report.summary_lines())
        assert "Relaxation factor" in text
        assert "Wmin" in text
        assert "pRF" in text

    def test_table1_total_gain(self, flow):
        report = flow.run()
        uncorrelated = report.scenario_results[LayoutScenario.UNCORRELATED_GROWTH]
        aligned = report.scenario_results[LayoutScenario.DIRECTIONAL_ALIGNED]
        total_gain = (
            uncorrelated.row_failure_probability / aligned.row_failure_probability
        )
        # Paper: ≈350X total (26.5X growth × 13X alignment); model: ≈360X.
        assert total_gain == pytest.approx(360.0, rel=0.05)

    def test_mismatched_counts_rejected(self):
        with pytest.raises(ValueError):
            CoOptimizationFlow(
                setup=CalibratedSetup(),
                widths_nm=np.array([80.0, 160.0]),
                counts=np.array([1.0]),
            )

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            CoOptimizationFlow(
                setup=CalibratedSetup(),
                widths_nm=np.array([80.0, 160.0]),
                counts=np.array([1.0, -2.0]),
            )

    def test_nonpositive_widths_rejected(self):
        with pytest.raises(ValueError, match="strictly positive"):
            CoOptimizationFlow(
                setup=CalibratedSetup(),
                widths_nm=np.array([80.0, -160.0]),
            )

    def test_table1_scenarios_evaluated_at_baseline_wmin(self, flow):
        # Table 1 convention: every scenario column shares the *baseline*
        # (Sec. 2) Wmin operating point, so the pRF ratios isolate the
        # growth/layout effect rather than mixing in a device pF change.
        report = flow.run()
        at_baseline = flow.scenario_results(report.baseline_wmin.wmin_nm)
        at_optimized = flow.scenario_results(report.optimized_wmin.wmin_nm)
        for scenario in LayoutScenario:
            assert (
                report.scenario_results[scenario].row_failure_probability
                == at_baseline[scenario].row_failure_probability
            )
        # Guard against silently reverting to the optimized point: the
        # baseline Wmin is wider, so its pRF sits orders of magnitude
        # below the optimized operating point's.
        uncorrelated = LayoutScenario.UNCORRELATED_GROWTH
        assert (
            10.0 * report.scenario_results[uncorrelated].row_failure_probability
            < at_optimized[uncorrelated].row_failure_probability
        )
