"""Tests for the technology scaling analysis — Fig. 2.2b / Fig. 3.3."""

import numpy as np
import pytest

from repro.core.scaling import (
    TechnologyScaler,
    penalty_comparison,
    penalty_versus_node,
)


WIDTHS = np.array([80.0, 160.0, 240.0, 320.0])
COUNTS = np.array([0.13, 0.20, 0.30, 0.37]) * 1e8


class TestTechnologyScaler:
    def test_scale_factor(self):
        scaler = TechnologyScaler(45.0)
        assert scaler.scale_factor(16.0) == pytest.approx(16.0 / 45.0)

    def test_reference_node_identity(self):
        scaler = TechnologyScaler(45.0)
        assert np.allclose(scaler.scale_widths(WIDTHS, 45.0), WIDTHS)

    def test_linear_scaling(self):
        scaler = TechnologyScaler(45.0)
        scaled = scaler.scale_widths(WIDTHS, 22.0)
        assert np.allclose(scaled, WIDTHS * 22.0 / 45.0)

    def test_invalid_node_rejected(self):
        with pytest.raises(ValueError):
            TechnologyScaler(45.0).scale_factor(0.0)


class TestPenaltyVersusNode:
    def test_penalty_grows_as_node_shrinks(self):
        study = penalty_versus_node(WIDTHS, COUNTS, wmin_nm=155.0)
        penalties = study.penalties_percent
        assert np.all(np.diff(penalties) > 0)  # 45 -> 32 -> 22 -> 16 grows

    def test_nodes_recorded(self):
        study = penalty_versus_node(WIDTHS, COUNTS, wmin_nm=155.0)
        assert list(study.nodes_nm) == [45, 32, 22, 16]

    def test_penalty_at_lookup(self):
        study = penalty_versus_node(WIDTHS, COUNTS, wmin_nm=155.0)
        assert study.penalty_at(45) == pytest.approx(study.points[0].penalty)
        with pytest.raises(KeyError):
            study.penalty_at(90)

    def test_all_devices_upsized_at_16nm(self):
        study = penalty_versus_node(WIDTHS, COUNTS, wmin_nm=155.0)
        point_16 = study.points[-1]
        # At 16 nm every scaled width (max 320*16/45 ≈ 114 nm) is below Wmin.
        assert point_16.devices_upsized_fraction == pytest.approx(1.0)

    def test_penalty_magnitude_at_16nm(self):
        # The paper's Fig. 2.2b shows the penalty growing towards ~100 % at
        # 16 nm; with this histogram the model lands in the same regime.
        study = penalty_versus_node(WIDTHS, COUNTS, wmin_nm=155.0)
        assert study.penalty_at(16) > 0.5


class TestPenaltyComparison:
    def test_correlated_always_cheaper(self):
        without, with_corr = penalty_comparison(
            WIDTHS, COUNTS, wmin_uncorrelated_nm=155.0, wmin_correlated_nm=103.0
        )
        assert np.all(
            with_corr.penalties_percent <= without.penalties_percent
        )

    def test_penalty_nearly_eliminated_at_45nm(self):
        without, with_corr = penalty_comparison(
            WIDTHS, COUNTS, wmin_uncorrelated_nm=155.0, wmin_correlated_nm=103.0
        )
        # Fig. 3.3: at 45 nm the optimised penalty is close to zero and much
        # smaller than the unoptimised one.
        assert with_corr.penalty_at(45) < 0.5 * without.penalty_at(45)

    def test_labels(self):
        without, with_corr = penalty_comparison(
            WIDTHS, COUNTS, wmin_uncorrelated_nm=155.0, wmin_correlated_nm=103.0
        )
        assert "Without" in without.label
        assert "aligned-active" in with_corr.label
