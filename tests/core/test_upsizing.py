"""Tests for the upsizing operator and penalty metric — Fig. 2.2b."""

import numpy as np
import pytest

from repro.core.upsizing import UpsizingAnalysis, upsize_widths


class TestUpsizeOperator:
    def test_max_semantics(self):
        result = upsize_widths([80.0, 160.0, 240.0], 155.0)
        assert np.allclose(result, [155.0, 160.0, 240.0])

    def test_no_change_when_threshold_small(self):
        widths = [80.0, 160.0]
        assert np.allclose(upsize_widths(widths, 10.0), widths)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            upsize_widths([80.0], 0.0)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            upsize_widths([80.0, -1.0], 100.0)


class TestUpsizingAnalysis:
    @pytest.fixture
    def analysis(self):
        widths = np.array([80.0, 160.0, 240.0, 320.0])
        counts = np.array([13.0, 20.0, 30.0, 37.0])
        return UpsizingAnalysis(widths, counts)

    def test_device_count(self, analysis):
        assert analysis.device_count == 100.0

    def test_total_width(self, analysis):
        expected = 80 * 13 + 160 * 20 + 240 * 30 + 320 * 37
        assert analysis.total_width_nm == pytest.approx(expected)

    def test_penalty_positive_when_upsizing(self, analysis):
        assert analysis.capacitance_penalty(155.0) > 0.0

    def test_penalty_zero_below_min_width(self, analysis):
        assert analysis.capacitance_penalty(50.0) == pytest.approx(0.0)

    def test_penalty_matches_hand_computation(self, analysis):
        # Upsizing to 155 nm only changes the 80 nm bin.
        before = analysis.total_width_nm
        after = before + (155.0 - 80.0) * 13.0
        assert analysis.capacitance_penalty(155.0) == pytest.approx(after / before - 1.0)

    def test_penalty_monotone_in_threshold(self, analysis):
        thresholds = [100.0, 155.0, 250.0, 400.0]
        penalties = analysis.penalty_curve(thresholds)
        assert np.all(np.diff(penalties) >= 0)

    def test_analyse_result_fields(self, analysis):
        result = analysis.analyse(155.0)
        assert result.devices_upsized == 13.0
        assert result.upsized_fraction == pytest.approx(0.13)
        assert result.penalty_percent == pytest.approx(
            100.0 * result.capacitance_penalty
        )

    def test_empty_widths_rejected(self):
        with pytest.raises(ValueError):
            UpsizingAnalysis([], [])

    def test_mismatched_counts_rejected(self):
        with pytest.raises(ValueError):
            UpsizingAnalysis([80.0, 160.0], [1.0])

    def test_larger_wmin_costs_more(self, analysis):
        # The correlation benefit (smaller Wmin) must reduce the penalty.
        assert analysis.capacitance_penalty(103.0) < analysis.capacitance_penalty(155.0)


class TestFixedCapacitanceBranch:
    """Regression coverage for the ``fixed_capacitance_af != 0`` path."""

    def test_fixed_term_dilutes_penalty(self):
        from repro.device.capacitance import GateCapacitanceModel

        widths = np.array([80.0, 160.0, 240.0, 320.0])
        counts = np.array([13.0, 20.0, 30.0, 37.0])
        plain = UpsizingAnalysis(widths, counts)
        with_fixed = UpsizingAnalysis(
            widths, counts,
            capacitance_model=GateCapacitanceModel(fixed_capacitance_af=50.0),
        )
        threshold = 155.0
        # The fixed (width-independent) term is unaffected by upsizing, so
        # it dilutes the fractional penalty below the pure width ratio.
        assert (
            with_fixed.capacitance_penalty(threshold)
            < plain.capacitance_penalty(threshold)
        )
        assert with_fixed.capacitance_penalty(threshold) > 0.0

    def test_fixed_term_penalty_matches_hand_computation(self):
        from repro.device.capacitance import GateCapacitanceModel

        widths = np.array([100.0, 200.0])
        counts = np.array([3.0, 1.0])
        model = GateCapacitanceModel(
            capacitance_per_width_af_per_nm=2.0, fixed_capacitance_af=40.0
        )
        analysis = UpsizingAnalysis(widths, counts, capacitance_model=model)
        # Upsize to 150 nm: total width 500 -> 650; capacitance
        # 2*500 + 4*40 = 1160 -> 2*650 + 4*40 = 1460.
        expected = 1460.0 / 1160.0 - 1.0
        assert analysis.capacitance_penalty(150.0) == pytest.approx(expected)
