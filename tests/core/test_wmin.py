"""Tests for the Wmin solver — Eq. 2.4 / 2.5."""

import numpy as np
import pytest

from repro.core.count_model import PoissonCountModel
from repro.core.failure import CNFETFailureModel
from repro.core.wmin import WminSolver


@pytest.fixture
def failure_model():
    return CNFETFailureModel(
        PoissonCountModel(mean_pitch_nm=4.0), per_cnt_failure=0.5333
    )


@pytest.fixture
def solver(failure_model):
    return WminSolver(failure_model, yield_target=0.90)


class TestSimplifiedWmin:
    def test_required_pf(self, solver):
        assert solver.required_pf(33e6) == pytest.approx(0.1 / 33e6)

    def test_relaxation_scales_budget(self, solver):
        base = solver.required_pf(33e6)
        relaxed = solver.required_pf(33e6, relaxation_factor=350.0)
        assert relaxed == pytest.approx(350.0 * base)

    def test_budget_capped_at_one(self, solver):
        assert solver.required_pf(1.0, relaxation_factor=1e12) == 1.0

    def test_wmin_meets_budget(self, solver, failure_model):
        result = solver.solve_simplified(33e6)
        assert failure_model.failure_probability(result.wmin_nm) <= result.required_pf
        assert failure_model.failure_probability(result.wmin_nm - 1.0) > result.required_pf

    def test_relaxation_reduces_wmin(self, solver):
        base = solver.solve_simplified(33e6)
        relaxed = solver.solve_simplified(33e6, relaxation_factor=350.0)
        assert relaxed.wmin_nm < base.wmin_nm
        # The paper's ratio is 155/103 ≈ 1.5; with the Poisson calibration the
        # ratio is slightly smaller but clearly in the same regime.
        assert base.wmin_nm / relaxed.wmin_nm == pytest.approx(1.45, abs=0.15)

    def test_invalid_yield_target(self, failure_model):
        with pytest.raises(ValueError):
            WminSolver(failure_model, yield_target=1.0)

    def test_result_metadata(self, solver):
        result = solver.solve_simplified(33e6, relaxation_factor=10.0)
        assert result.relaxation_factor == 10.0
        assert result.yield_target == 0.90
        assert result.min_size_device_count == 33e6


class TestExactWmin:
    @pytest.fixture
    def histogram(self):
        widths = np.array([80.0, 160.0, 240.0, 320.0])
        counts = np.array([0.13, 0.20, 0.30, 0.37]) * 1.0e8
        return widths, counts

    def test_exact_meets_yield(self, solver, failure_model, histogram):
        widths, counts = histogram
        result = solver.solve_exact(widths, counts)
        assert result.achieved_yield is not None
        assert result.achieved_yield >= 0.90

    def test_exact_close_to_simplified(self, solver, histogram):
        widths, counts = histogram
        exact = solver.solve_exact(widths, counts)
        simplified = solver.solve_simplified(0.33e8)
        assert exact.wmin_nm == pytest.approx(simplified.wmin_nm, rel=0.05)

    def test_relaxation_reduces_exact_wmin(self, solver, histogram):
        widths, counts = histogram
        base = solver.solve_exact(widths, counts)
        relaxed = solver.solve_exact(widths, counts, relaxation_factor=350.0)
        assert relaxed.wmin_nm < base.wmin_nm

    def test_no_upsizing_needed_case(self, failure_model):
        solver = WminSolver(failure_model, yield_target=0.5)
        widths = np.array([400.0, 500.0])
        counts = np.array([10.0, 10.0])
        result = solver.solve_exact(widths, counts)
        assert result.wmin_nm == pytest.approx(400.0)

    def test_empty_histogram_rejected(self, solver):
        with pytest.raises(ValueError):
            solver.solve_exact(np.array([]), np.array([]))

    def test_verify_min_size_count(self, solver, histogram):
        widths, counts = histogram
        result = solver.solve_exact(widths, counts)
        m_min = solver.verify_min_size_count(widths, counts, result)
        # Wmin lands between the 160 nm and 240 nm bins, so the two smallest
        # bins (33 % of devices) are the minimum-size population — matching
        # the paper's Mmin choice.
        assert m_min == pytest.approx(0.33e8)
