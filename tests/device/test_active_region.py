"""Tests for active regions and their alignment geometry."""

import pytest

from repro.device.active_region import ActiveRegion, Polarity


def region(**kwargs):
    defaults = dict(x_nm=0.0, y_nm=0.0, length_nm=200.0, width_nm=80.0)
    defaults.update(kwargs)
    return ActiveRegion(**defaults)


class TestPolarity:
    def test_opposite(self):
        assert Polarity.NFET.opposite is Polarity.PFET
        assert Polarity.PFET.opposite is Polarity.NFET


class TestGeometry:
    def test_edges(self):
        r = region(x_nm=10.0, y_nm=20.0)
        assert r.x_end_nm == 210.0
        assert r.y_end_nm == 100.0
        assert r.y_center_nm == 60.0

    def test_area(self):
        assert region().area_nm2 == 200.0 * 80.0

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            region(width_nm=0.0)
        with pytest.raises(ValueError):
            region(length_nm=-5.0)

    def test_y_overlap(self):
        a = region(y_nm=0.0, width_nm=80.0)
        b = region(y_nm=40.0, width_nm=80.0)
        assert a.y_overlap_nm(b) == pytest.approx(40.0)
        c = region(y_nm=200.0)
        assert a.y_overlap_nm(c) == 0.0

    def test_x_overlap(self):
        a = region(x_nm=0.0)
        b = region(x_nm=150.0)
        assert a.x_overlap_nm(b) == pytest.approx(50.0)


class TestAlignment:
    def test_aligned_same_window(self):
        a = region(x_nm=0.0, y_nm=100.0)
        b = region(x_nm=5000.0, y_nm=100.0)
        assert a.is_aligned_with(b)

    def test_not_aligned_different_y(self):
        a = region(y_nm=100.0)
        b = region(y_nm=101.0)
        assert not a.is_aligned_with(b)

    def test_not_aligned_different_width(self):
        a = region(width_nm=80.0)
        b = region(width_nm=100.0)
        assert not a.is_aligned_with(b)

    def test_shares_tracks_when_overlapping(self):
        a = region(y_nm=0.0, width_nm=80.0)
        b = region(y_nm=50.0, width_nm=80.0)
        assert a.shares_tracks_with(b)

    def test_no_shared_tracks_when_disjoint(self):
        a = region(y_nm=0.0, width_nm=80.0)
        b = region(y_nm=100.0, width_nm=80.0)
        assert not a.shares_tracks_with(b)


class TestTransformations:
    def test_moved_to_y(self):
        r = region(y_nm=10.0).moved_to_y(200.0)
        assert r.y_nm == 200.0

    def test_widened_to(self):
        r = region(width_nm=80.0).widened_to(103.0)
        assert r.width_nm == 103.0

    def test_cannot_shrink(self):
        with pytest.raises(ValueError):
            region(width_nm=80.0).widened_to(40.0)

    def test_moved_by(self):
        r = region(x_nm=10.0, y_nm=20.0).moved_by(dx_nm=5.0, dy_nm=-5.0)
        assert r.x_nm == 15.0
        assert r.y_nm == 15.0
