"""Tests for the gate capacitance model and penalty metric."""

import pytest

from repro.device.capacitance import GateCapacitanceModel


class TestGateCapacitance:
    def test_device_capacitance_proportional_to_width(self):
        model = GateCapacitanceModel(capacitance_per_width_af_per_nm=2.0)
        assert model.device_capacitance_af(100.0) == pytest.approx(200.0)

    def test_fixed_term(self):
        model = GateCapacitanceModel(fixed_capacitance_af=10.0)
        assert model.device_capacitance_af(100.0) == pytest.approx(110.0)

    def test_total_capacitance(self):
        model = GateCapacitanceModel()
        assert model.total_capacitance_af([80.0, 160.0, 240.0]) == pytest.approx(480.0)

    def test_total_capacitance_empty(self):
        assert GateCapacitanceModel().total_capacitance_af([]) == 0.0

    def test_total_capacitance_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            GateCapacitanceModel().total_capacitance_af([80.0, 0.0])

    def test_penalty_is_width_increase_ratio(self):
        model = GateCapacitanceModel()
        original = [80.0, 160.0, 320.0]
        upsized = [160.0, 160.0, 320.0]
        assert model.capacitance_increase_ratio(original, upsized) == pytest.approx(
            (640.0 / 560.0) - 1.0
        )

    def test_penalty_zero_when_unchanged(self):
        model = GateCapacitanceModel()
        widths = [100.0, 200.0]
        assert model.capacitance_increase_ratio(widths, widths) == pytest.approx(0.0)

    def test_penalty_rejects_empty_original(self):
        with pytest.raises(ValueError):
            GateCapacitanceModel().capacitance_increase_ratio([], [])

    def test_dynamic_power_equals_capacitance_ratio(self):
        model = GateCapacitanceModel()
        original = [80.0, 80.0]
        upsized = [120.0, 120.0]
        assert model.dynamic_power_increase_ratio(
            original, upsized
        ) == pytest.approx(model.capacitance_increase_ratio(original, upsized))

    def test_invalid_model_parameters(self):
        with pytest.raises(ValueError):
            GateCapacitanceModel(capacitance_per_width_af_per_nm=0.0)
        with pytest.raises(ValueError):
            GateCapacitanceModel(fixed_capacitance_af=-1.0)
