"""Tests for the CNFET device object."""

import pytest

from repro.device.active_region import ActiveRegion, Polarity
from repro.device.cnfet import CNFET, CNFETFailure
from repro.growth.cnt import CNT, CNTTrack, CNTType


def make_region(width_nm=80.0, y_nm=0.0):
    return ActiveRegion(x_nm=0.0, y_nm=y_nm, length_nm=200.0, width_nm=width_nm)


def make_cnt(y=10.0, cnt_type=CNTType.SEMICONDUCTING, removed=False):
    return CNT(y_nm=y, x_start_nm=0.0, x_end_nm=200.0, cnt_type=cnt_type, removed=removed)


class TestCNFETBasics:
    def test_width_and_polarity(self):
        fet = CNFET("m0", make_region(120.0))
        assert fet.width_nm == 120.0
        assert fet.polarity is Polarity.NFET

    def test_counts(self):
        cnts = (
            make_cnt(5.0),
            make_cnt(10.0, CNTType.METALLIC),
            make_cnt(15.0, removed=True),
        )
        fet = CNFET("m0", make_region(), cnts=cnts)
        assert fet.total_cnt_count == 3
        assert fet.working_cnt_count == 1
        assert fet.surviving_metallic_count == 1

    def test_failure_classification(self):
        ok = CNFET("m0", make_region(), cnts=(make_cnt(),))
        bad = CNFET("m1", make_region(), cnts=(make_cnt(cnt_type=CNTType.METALLIC),))
        empty = CNFET("m2", make_region(), cnts=())
        assert ok.failure is CNFETFailure.NONE
        assert not ok.failed
        assert bad.failed
        assert empty.failed


class TestFromTracks:
    def test_captures_only_covering_tracks(self):
        region = make_region(width_nm=80.0, y_nm=0.0)
        tracks = [
            CNTTrack(10.0, 0.0, 1000.0, CNTType.SEMICONDUCTING),
            CNTTrack(90.0, 0.0, 1000.0, CNTType.SEMICONDUCTING),   # outside y window
            CNTTrack(50.0, 500.0, 1000.0, CNTType.SEMICONDUCTING),  # outside x window
        ]
        fet = CNFET.from_tracks("m0", region, tracks)
        assert fet.total_cnt_count == 1
        assert fet.working_cnt_count == 1

    def test_removed_tracks_counted_but_not_working(self):
        region = make_region()
        tracks = [CNTTrack(10.0, 0.0, 1000.0, CNTType.SEMICONDUCTING, removed=True)]
        fet = CNFET.from_tracks("m0", region, tracks)
        assert fet.total_cnt_count == 1
        assert fet.working_cnt_count == 0
        assert fet.failed


class TestElectrical:
    def test_on_current_scales_with_tubes(self):
        one = CNFET("a", make_region(), cnts=(make_cnt(),))
        three = CNFET("b", make_region(), cnts=(make_cnt(1.0), make_cnt(2.0), make_cnt(3.0)))
        assert three.on_current_ua() == pytest.approx(3 * one.on_current_ua())

    def test_off_current_only_from_surviving_metallic(self):
        clean = CNFET("a", make_region(), cnts=(make_cnt(),))
        shorted = CNFET(
            "b", make_region(),
            cnts=(make_cnt(), make_cnt(5.0, CNTType.METALLIC)),
        )
        assert clean.off_current_ua() == 0.0
        assert shorted.off_current_ua() > 0.0

    def test_shares_tracks_with(self):
        a = CNFET("a", make_region(y_nm=0.0))
        b = CNFET("b", make_region(y_nm=40.0))
        c = CNFET("c", make_region(y_nm=500.0))
        assert a.shares_tracks_with(b)
        assert not a.shares_tracks_with(c)
