"""Tests for the per-tube / per-device current model."""

import numpy as np
import pytest

from repro.device.current import CNTCurrentModel, device_on_current
from repro.growth.cnt import CNT, CNTType


class TestPerTubeCurrent:
    def test_nominal_current_at_reference(self):
        model = CNTCurrentModel(nominal_on_current_ua=20.0, reference_diameter_nm=1.5)
        assert model.semiconducting_on_current_ua(1.5) == pytest.approx(20.0)

    def test_diameter_scaling(self):
        model = CNTCurrentModel(diameter_exponent=1.0)
        assert model.semiconducting_on_current_ua(3.0) == pytest.approx(
            2.0 * model.semiconducting_on_current_ua(1.5)
        )

    def test_overdrive_scaling(self):
        low = CNTCurrentModel(vdd=0.6, threshold_voltage=0.3, reference_vdd=0.9)
        high = CNTCurrentModel(vdd=0.9, threshold_voltage=0.3, reference_vdd=0.9)
        assert low.semiconducting_on_current_ua(1.5) == pytest.approx(
            0.5 * high.semiconducting_on_current_ua(1.5)
        )

    def test_vdd_below_threshold_rejected(self):
        with pytest.raises(ValueError):
            CNTCurrentModel(vdd=0.2, threshold_voltage=0.3)

    def test_invalid_diameter_rejected(self):
        model = CNTCurrentModel()
        with pytest.raises(ValueError):
            model.semiconducting_on_current_ua(0.0)


class TestDeviceAggregation:
    def make_cnt(self, cnt_type=CNTType.SEMICONDUCTING, removed=False, diameter=1.5):
        return CNT(0.0, 0.0, 100.0, cnt_type, diameter_nm=diameter, removed=removed)

    def test_parallel_tubes_sum(self):
        model = CNTCurrentModel(nominal_on_current_ua=20.0)
        cnts = [self.make_cnt() for _ in range(5)]
        assert model.device_on_current_ua(cnts) == pytest.approx(100.0)

    def test_removed_tubes_excluded(self):
        model = CNTCurrentModel()
        cnts = [self.make_cnt(), self.make_cnt(removed=True)]
        assert model.device_on_current_ua(cnts) == pytest.approx(
            model.semiconducting_on_current_ua(1.5)
        )

    def test_surviving_metallic_adds_current(self):
        model = CNTCurrentModel(metallic_current_ua=40.0)
        cnts = [self.make_cnt(), self.make_cnt(CNTType.METALLIC)]
        on = model.device_on_current_ua(cnts)
        assert on == pytest.approx(model.semiconducting_on_current_ua(1.5) + 40.0)
        assert model.device_off_current_ua(cnts) == pytest.approx(40.0)

    def test_sample_on_current_statistics(self):
        model = CNTCurrentModel(nominal_on_current_ua=20.0)
        rng = np.random.default_rng(0)
        samples = [model.sample_on_current_ua(10, rng) for _ in range(500)]
        assert np.mean(samples) == pytest.approx(200.0, rel=0.05)

    def test_sample_zero_tubes(self):
        model = CNTCurrentModel()
        rng = np.random.default_rng(0)
        assert model.sample_on_current_ua(0, rng) == 0.0

    def test_sample_negative_tubes_rejected(self):
        model = CNTCurrentModel()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            model.sample_on_current_ua(-1, rng)


class TestIdealisedHelper:
    def test_linear_in_count(self):
        assert device_on_current(5, 20.0) == 100.0

    def test_zero_count(self):
        assert device_on_current(0) == 0.0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            device_on_current(-1)
