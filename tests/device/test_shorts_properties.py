"""Property-based tests (hypothesis) on the metallic-short failure mode.

The joint opens+shorts closed form of :mod:`repro.device.shorts` is a
thinning of the renewal count distribution: per tube, *good* with
probability ``1 - pf``, *surviving short* with ``b = p_m · (1 - eta)``,
*dud* with ``pf - b``.  These tests pin the structural facts the rest of
the PR leans on: monotonicity in the ``(p_m, eta)`` processing knobs,
the bitwise reduction to the opens-only Eq. 2.2 path at ``b = 0``, the
Poisson independence identity the thinning derivation predicts, and the
sign of the opens/shorts coupling through the shared tube count.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.count_model import PoissonCountModel, RenewalCountModel
from repro.core.failure import CNFETFailureModel
from repro.device.shorts import (
    ShortsModel,
    joint_failure_probability,
    log_joint_failure_probabilities,
    surviving_short_probability,
)
from repro.growth.pitch import GammaPitch
from repro.growth.types import CNTTypeModel, per_cnt_failure_probability

DEFAULT_SETTINGS = settings(max_examples=50, deadline=None)

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
fractions = st.floats(min_value=0.0, max_value=0.9, allow_nan=False)
etas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
widths = st.floats(min_value=1.0, max_value=500.0, allow_nan=False)
pitches = st.floats(min_value=0.5, max_value=50.0, allow_nan=False)


def _joint(width, pm, eta, p_rs, count_model=None, n_min=1):
    """Joint pF at one width from the raw (p_m, eta, pRs) knobs."""
    model = count_model if count_model is not None else PoissonCountModel(4.0)
    return joint_failure_probability(
        model,
        width,
        per_cnt_failure_probability(pm, p_rs),
        surviving_short_probability(pm, eta),
        min_working_tubes=n_min,
    )


class TestJointClosedFormProperties:
    @DEFAULT_SETTINGS
    @given(pm=fractions, eta=etas, p_rs=probabilities, width=widths)
    def test_is_probability(self, pm, eta, p_rs, width):
        value = _joint(width, pm, eta, p_rs)
        assert 0.0 <= value <= 1.0

    @DEFAULT_SETTINGS
    @given(pm=fractions, eta=etas, p_rs=probabilities, width=widths)
    def test_monotone_nondecreasing_in_metallic_fraction(
        self, pm, eta, p_rs, width
    ):
        # More metallic tubes hurt both channels: pf and b both grow.
        lower = _joint(width, pm, eta, p_rs)
        higher = _joint(width, min(pm + 0.05, 1.0), eta, p_rs)
        assert higher >= lower - 1e-12

    @DEFAULT_SETTINGS
    @given(pm=fractions, eta=etas, p_rs=probabilities, width=widths)
    def test_monotone_nonincreasing_in_removal_eta(self, pm, eta, p_rs, width):
        # Better metallic removal can only help: b shrinks, pf unchanged.
        at_eta = _joint(width, pm, eta, p_rs)
        improved = _joint(width, pm, min(eta + 0.05, 1.0), p_rs)
        assert improved <= at_eta + 1e-12

    @DEFAULT_SETTINGS
    @given(eta=etas, p_rs=probabilities, width=widths, pitch=pitches)
    def test_pm_zero_reduces_bitwise_to_opens_only(
        self, eta, p_rs, width, pitch
    ):
        # p_m = 0 gives b = 0 whatever eta is; the joint form must route
        # through the identical opens-only Eq. 2.2 code path, bit for bit.
        counts = PoissonCountModel(pitch)
        assert surviving_short_probability(0.0, eta) == 0.0
        joint = _joint(width, 0.0, eta, p_rs, count_model=counts)
        opens_only = CNFETFailureModel(
            counts, per_cnt_failure_probability(0.0, p_rs)
        ).failure_probability(width)
        assert joint == opens_only

    @DEFAULT_SETTINGS
    @given(pm=fractions, eta=etas, p_rs=probabilities, width=widths)
    def test_bracketed_by_marginals_and_union_bound(
        self, pm, eta, p_rs, width
    ):
        # P{open or short} is at least each marginal and at most their sum.
        counts = PoissonCountModel(4.0)
        pf = per_cnt_failure_probability(pm, p_rs)
        b = surviving_short_probability(pm, eta)
        joint = _joint(width, pm, eta, p_rs)
        p_open = counts.pgf(width, pf) if pf > 0.0 else counts.prob_zero(width)
        p_short = 1.0 - counts.pgf(width, 1.0 - b)
        assert joint >= p_open - 1e-12
        assert joint >= p_short - 1e-12
        assert joint <= p_open + p_short + 1e-12

    @DEFAULT_SETTINGS
    @given(
        pm=st.floats(min_value=0.05, max_value=0.9),
        eta=st.floats(min_value=0.0, max_value=0.95),
        p_rs=st.floats(min_value=0.0, max_value=0.9),
        width=widths,
        pitch=pitches,
    )
    def test_poisson_thinning_independence_identity(
        self, pm, eta, p_rs, width, pitch
    ):
        # Poisson thinning splits the tube stream into independent good /
        # short / dud substreams, so the joint failure must factor as
        # 1 - (1 - p_open)(1 - p_short) exactly — the sharpest check the
        # thinning derivation admits.
        counts = PoissonCountModel(pitch)
        pf = per_cnt_failure_probability(pm, p_rs)
        b = surviving_short_probability(pm, eta)
        joint = _joint(width, pm, eta, p_rs, count_model=counts)
        p_open = counts.pgf(width, pf)
        p_short = 1.0 - counts.pgf(width, 1.0 - b)
        assert joint == pytest.approx(
            1.0 - (1.0 - p_open) * (1.0 - p_short), abs=1e-12
        )

    @DEFAULT_SETTINGS
    @given(
        pm=fractions,
        eta=etas,
        p_rs=probabilities,
        width=widths,
        n_min=st.integers(min_value=1, max_value=4),
    )
    def test_monotone_in_min_working_tubes(self, pm, eta, p_rs, width, n_min):
        # Requiring more conducting tubes can only add failures.
        loose = _joint(width, pm, eta, p_rs, n_min=n_min)
        strict = _joint(width, pm, eta, p_rs, n_min=n_min + 1)
        assert strict >= loose - 1e-9

    def test_short_probability_above_pf_rejected(self):
        with pytest.raises(ValueError, match="short_probability"):
            joint_failure_probability(PoissonCountModel(4.0), 40.0, 0.1, 0.2)


class TestLogJointConsistency:
    @DEFAULT_SETTINGS
    @given(
        pm=st.floats(min_value=0.05, max_value=0.9),
        eta=st.floats(min_value=0.0, max_value=0.95),
        p_rs=st.floats(min_value=0.0, max_value=0.9),
        width=widths,
    )
    def test_log_form_matches_linear_form(self, pm, eta, p_rs, width):
        counts = PoissonCountModel(4.0)
        pf = per_cnt_failure_probability(pm, p_rs)
        b = surviving_short_probability(pm, eta)
        if b <= 0.0:
            return
        logs = log_joint_failure_probabilities(counts, [width], pf, b)
        linear = joint_failure_probability(counts, width, pf, b)
        if linear > 0.0:
            assert logs[0] == pytest.approx(math.log(linear), abs=1e-9)
        assert logs[0] <= 0.0

    def test_opens_only_regime_rejected(self):
        with pytest.raises(ValueError, match="opens-only"):
            log_joint_failure_probabilities(
                PoissonCountModel(4.0), [40.0], 0.4, 0.0
            )


class TestSharedCountCoupling:
    @pytest.mark.parametrize("cv", [0.3, 0.7, 1.5])
    def test_opens_and_shorts_anticorrelated_through_count(self, cv):
        # The two channels read the *same* tube count: more tubes mean
        # fewer opens (pf**N falls) and more shorts (1 - (1-b)**N rises),
        # so the Rao-Blackwellised per-trial values must be negatively
        # correlated whenever the count is non-degenerate — the
        # anticorrelation the shared-track engine inherits.
        model = ShortsModel(metallic_fraction=1.0 / 3.0, removal_eta=0.9)
        pf = per_cnt_failure_probability(1.0 / 3.0, 0.3)
        b = model.short_probability
        counts = RenewalCountModel(GammaPitch(4.0, cv)).sample(
            120.0, 4_000, np.random.default_rng(2010)
        ).astype(float)
        assert np.std(counts) > 0.0
        p_open = np.power(pf, counts)
        p_short = 1.0 - np.power(1.0 - b, counts)
        cov = float(np.cov(p_open, p_short)[0, 1])
        assert cov < 0.0


class TestShortsModelKnob:
    @DEFAULT_SETTINGS
    @given(pm=probabilities, eta=etas, p_rs=probabilities)
    def test_type_model_roundtrip(self, pm, eta, p_rs):
        model = ShortsModel(metallic_fraction=pm, removal_eta=eta)
        type_model = model.to_type_model(removal_prob_semiconducting=p_rs)
        assert ShortsModel.from_type_model(type_model) == model
        assert type_model.surviving_metallic_probability == pytest.approx(
            model.short_probability, abs=1e-15
        )

    @DEFAULT_SETTINGS
    @given(pm=probabilities, eta=etas)
    def test_short_probability_never_exceeds_any_pf(self, pm, eta):
        # b <= p_m <= pf for every pRs, so the closed form's b <= pf
        # precondition holds for all knob settings reachable from a
        # CNTTypeModel — the joint engine never needs to clamp.
        b = surviving_short_probability(pm, eta)
        assert b <= pm + 1e-15
        assert b <= per_cnt_failure_probability(pm, 0.0) + 1e-15
