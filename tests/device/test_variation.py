"""Tests for the drive-current variation model (statistical averaging)."""

import numpy as np
import pytest

from repro.core.count_model import PoissonCountModel
from repro.device.variation import DriveCurrentVariationModel
from repro.growth.types import CNTTypeModel


@pytest.fixture
def model():
    return DriveCurrentVariationModel(
        count_model=PoissonCountModel(mean_pitch_nm=4.0),
        type_model=CNTTypeModel(
            metallic_fraction=1.0 / 3.0,
            removal_prob_metallic=1.0,
            removal_prob_semiconducting=0.0,
        ),
        diameter_std_nm=0.2,
    )


class TestVariationModel:
    def test_summary_fields(self, model):
        rng = np.random.default_rng(1)
        summary = model.summarise(160.0, 2000, rng)
        assert summary.width_nm == 160.0
        assert summary.mean_on_current_ua > 0
        assert summary.mean_working_count == pytest.approx(
            40.0 * (2.0 / 3.0), rel=0.1
        )
        assert summary.n_samples == 2000

    def test_relative_spread_decreases_with_width(self, model):
        rng = np.random.default_rng(2)
        spreads = model.relative_spread_vs_width(
            np.array([40.0, 160.0, 640.0]), 2000, rng
        )
        assert spreads[0] > spreads[1] > spreads[2]

    def test_spread_roughly_inverse_sqrt(self, model):
        # Quadrupling the width should roughly halve the relative spread.
        rng = np.random.default_rng(3)
        s_small = model.summarise(80.0, 4000, rng).relative_spread
        s_large = model.summarise(320.0, 4000, rng).relative_spread
        assert s_small / s_large == pytest.approx(2.0, rel=0.35)

    def test_failure_fraction_for_narrow_devices(self, model):
        rng = np.random.default_rng(4)
        summary = model.summarise(4.0, 4000, rng)
        assert summary.failure_fraction > 0.2

    def test_invalid_sample_count(self, model):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            model.sample_on_currents(80.0, 0, rng)

    def test_negative_diameter_std_rejected(self):
        with pytest.raises(ValueError):
            DriveCurrentVariationModel(
                count_model=PoissonCountModel(4.0), diameter_std_nm=-0.1
            )
