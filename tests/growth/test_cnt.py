"""Tests for CNT / CNT-track value objects."""

import pytest

from repro.growth.cnt import CNT, CNTTrack, CNTType


class TestCNTType:
    def test_semiconducting_flags(self):
        assert CNTType.SEMICONDUCTING.is_semiconducting
        assert not CNTType.SEMICONDUCTING.is_metallic

    def test_metallic_flags(self):
        assert CNTType.METALLIC.is_metallic
        assert not CNTType.METALLIC.is_semiconducting


class TestCNT:
    def make(self, **kwargs):
        defaults = dict(
            y_nm=10.0, x_start_nm=0.0, x_end_nm=100.0,
            cnt_type=CNTType.SEMICONDUCTING,
        )
        defaults.update(kwargs)
        return CNT(**defaults)

    def test_length(self):
        assert self.make().length_nm == 100.0

    def test_inverted_extent_rejected(self):
        with pytest.raises(ValueError):
            self.make(x_start_nm=10.0, x_end_nm=5.0)

    def test_non_positive_diameter_rejected(self):
        with pytest.raises(ValueError):
            self.make(diameter_nm=0.0)

    def test_semiconducting_not_removed_contributes(self):
        assert self.make().contributes_to_channel

    def test_metallic_does_not_contribute(self):
        assert not self.make(cnt_type=CNTType.METALLIC).contributes_to_channel

    def test_removed_semiconducting_does_not_contribute(self):
        assert not self.make(removed=True).contributes_to_channel

    def test_covers_x_overlap(self):
        cnt = self.make()
        assert cnt.covers_x(50.0, 150.0)
        assert not cnt.covers_x(100.0, 200.0)  # touching, no overlap
        assert not cnt.covers_x(-50.0, 0.0)

    def test_with_removed_returns_copy(self):
        cnt = self.make()
        removed = cnt.with_removed()
        assert removed.removed
        assert not cnt.removed
        assert removed.y_nm == cnt.y_nm


class TestCNTTrack:
    def make(self, **kwargs):
        defaults = dict(
            y_nm=20.0, x_start_nm=0.0, x_end_nm=200_000.0,
            cnt_type=CNTType.SEMICONDUCTING,
        )
        defaults.update(kwargs)
        return CNTTrack(**defaults)

    def test_length(self):
        assert self.make().length_nm == 200_000.0

    def test_working(self):
        assert self.make().working
        assert not self.make(cnt_type=CNTType.METALLIC).working
        assert not self.make(removed=True).working

    def test_covers_inside_window(self):
        track = self.make()
        assert track.covers(0.0, 80.0, 100.0, 300.0)

    def test_covers_outside_y_window(self):
        track = self.make()
        assert not track.covers(30.0, 80.0, 100.0, 300.0)

    def test_covers_outside_x_window(self):
        track = self.make(x_start_nm=0.0, x_end_nm=50.0)
        assert not track.covers(0.0, 80.0, 100.0, 300.0)

    def test_as_cnt_preserves_fields(self):
        track = self.make(removed=True)
        cnt = track.as_cnt()
        assert isinstance(cnt, CNT)
        assert cnt.removed
        assert cnt.y_nm == track.y_nm
        assert cnt.cnt_type is track.cnt_type
