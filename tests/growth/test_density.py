"""Tests for density statistics helpers."""

import numpy as np
import pytest

from repro.growth.density import (
    density_from_pitch,
    density_statistics_from_counts,
    pitch_from_density,
    statistical_averaging_cv,
)
from repro.growth.pitch import ExponentialPitch, GammaPitch


class TestDensityConversions:
    def test_density_from_pitch(self):
        assert density_from_pitch(ExponentialPitch(4.0)) == pytest.approx(250.0)

    def test_pitch_from_density_roundtrip(self):
        pitch = pitch_from_density(250.0, cv=0.5)
        assert isinstance(pitch, GammaPitch)
        assert density_from_pitch(pitch) == pytest.approx(250.0)

    def test_pitch_from_density_rejects_non_positive(self):
        with pytest.raises(ValueError):
            pitch_from_density(0.0)


class TestDensityStatistics:
    def test_mean_density(self):
        counts = np.array([10, 12, 8, 10])
        stats = density_statistics_from_counts(counts, window_width_nm=100.0)
        assert stats.mean_per_um == pytest.approx(100.0)
        assert stats.n_windows == 4

    def test_single_window_zero_std(self):
        stats = density_statistics_from_counts(np.array([7]), window_width_nm=50.0)
        assert stats.std_per_um == 0.0

    def test_cv(self):
        counts = np.array([10, 10, 10, 10])
        stats = density_statistics_from_counts(counts, window_width_nm=100.0)
        assert stats.cv == 0.0

    def test_empty_counts_rejected(self):
        with pytest.raises(ValueError):
            density_statistics_from_counts(np.array([]), window_width_nm=100.0)


class TestStatisticalAveraging:
    def test_inverse_sqrt(self):
        assert statistical_averaging_cv(4.0) == pytest.approx(0.5)
        assert statistical_averaging_cv(100.0) == pytest.approx(0.1)

    def test_monotone_decreasing(self):
        values = [statistical_averaging_cv(n) for n in (1, 4, 16, 64)]
        assert values == sorted(values, reverse=True)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            statistical_averaging_cv(0.0)
