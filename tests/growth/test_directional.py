"""Tests for the directional CNT growth simulator."""

import numpy as np
import pytest

from repro.growth.cnt import CNTType
from repro.growth.directional import (
    DirectionalGrowthModel,
    count_correlation_between_fets,
)
from repro.growth.pitch import DeterministicPitch, ExponentialPitch
from repro.growth.types import CNTTypeModel


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestDirectionalGrowth:
    def test_track_count_matches_density(self, rng):
        model = DirectionalGrowthModel(
            pitch=ExponentialPitch(4.0),
            type_model=CNTTypeModel(metallic_fraction=0.0),
            cnt_length_nm=1.0e6,
            apply_removal=False,
        )
        counts = []
        for _ in range(50):
            region = model.grow(width_nm=400.0, length_nm=1000.0, rng=rng)
            counts.append(len({t.y_nm for t in region.tracks}))
        # Expected ~100 tracks across 400 nm at 4 nm mean pitch.
        assert np.mean(counts) == pytest.approx(100.0, rel=0.1)

    def test_deterministic_pitch_track_positions(self, rng):
        model = DirectionalGrowthModel(
            pitch=DeterministicPitch(10.0),
            type_model=CNTTypeModel(metallic_fraction=0.0),
            cnt_length_nm=1.0e6,
            apply_removal=False,
        )
        region = model.grow(width_nm=95.0, length_nm=500.0, rng=rng)
        ys = sorted({t.y_nm for t in region.tracks})
        gaps = np.diff(ys)
        assert np.allclose(gaps, 10.0)

    def test_tubes_tile_long_rows(self, rng):
        model = DirectionalGrowthModel(
            pitch=ExponentialPitch(8.0),
            cnt_length_nm=1000.0,
            apply_removal=False,
        )
        region = model.grow(width_nm=40.0, length_nm=5000.0, rng=rng)
        # Every track position should be tiled by segments covering the row.
        by_y = {}
        for t in region.tracks:
            by_y.setdefault(t.y_nm, []).append(t)
        for segments in by_y.values():
            segments = sorted(segments, key=lambda s: s.x_start_nm)
            assert segments[0].x_start_nm == pytest.approx(0.0)
            assert segments[-1].x_end_nm == pytest.approx(5000.0)
            for a, b in zip(segments, segments[1:]):
                assert b.x_start_nm == pytest.approx(a.x_end_nm)

    def test_removal_marks_metallic(self, rng):
        model = DirectionalGrowthModel(
            pitch=ExponentialPitch(4.0),
            type_model=CNTTypeModel(1.0 / 3.0, 1.0, 0.0),
            cnt_length_nm=1.0e6,
            apply_removal=True,
        )
        region = model.grow(width_nm=200.0, length_nm=500.0, rng=rng)
        metallic = [t for t in region.tracks if t.cnt_type is CNTType.METALLIC]
        assert metallic, "expected at least one metallic track"
        assert all(t.removed for t in metallic)

    def test_window_queries(self, rng):
        model = DirectionalGrowthModel(
            pitch=ExponentialPitch(4.0),
            type_model=CNTTypeModel(metallic_fraction=0.0),
            cnt_length_nm=1.0e6,
            apply_removal=False,
        )
        region = model.grow(width_nm=100.0, length_nm=1000.0, rng=rng)
        full = region.working_count_in_window(0.0, 100.0, 0.0, 1000.0)
        half = region.working_count_in_window(0.0, 50.0, 0.0, 1000.0)
        assert full >= half
        assert full == region.working_track_count

    def test_expected_tracks_helper(self):
        model = DirectionalGrowthModel(pitch=ExponentialPitch(4.0))
        assert model.expected_tracks(80.0) == pytest.approx(20.0)

    def test_correlation_length(self):
        model = DirectionalGrowthModel(cnt_length_nm=123_456.0)
        assert model.correlation_length_nm() == 123_456.0

    def test_invalid_dimensions_rejected(self, rng):
        model = DirectionalGrowthModel()
        with pytest.raises(ValueError):
            model.grow(width_nm=0.0, length_nm=100.0, rng=rng)
        with pytest.raises(ValueError):
            model.grow(width_nm=100.0, length_nm=-1.0, rng=rng)


class TestSharedTrackCorrelation:
    def test_aligned_fets_share_all_working_tracks(self, rng):
        model = DirectionalGrowthModel(
            pitch=ExponentialPitch(4.0),
            type_model=CNTTypeModel(metallic_fraction=0.0),
            cnt_length_nm=1.0e7,
            apply_removal=False,
        )
        region = model.grow(width_nm=100.0, length_nm=3000.0, rng=rng)
        shared = count_correlation_between_fets(
            region, fet_width_nm=80.0, fet_y_low_nm=0.0,
            fet1_x_nm=(0.0, 200.0), fet2_x_nm=(1000.0, 1200.0),
        )
        direct = region.working_count_in_window(0.0, 80.0, 0.0, 200.0)
        assert shared == direct

    def test_disjoint_y_windows_share_nothing(self, rng):
        model = DirectionalGrowthModel(
            pitch=ExponentialPitch(4.0),
            type_model=CNTTypeModel(metallic_fraction=0.0),
            cnt_length_nm=1.0e7,
            apply_removal=False,
        )
        region = model.grow(width_nm=400.0, length_nm=3000.0, rng=rng)
        tracks_low = {
            t.label for t in region.tracks_in_window(0.0, 80.0, 0.0, 200.0)
        }
        tracks_high = {
            t.label for t in region.tracks_in_window(200.0, 280.0, 0.0, 200.0)
        }
        assert tracks_low.isdisjoint(tracks_high)
