"""Tests for the uncorrelated (isotropic) growth simulator."""

import numpy as np
import pytest

from repro.growth.isotropic import IsotropicGrowthModel
from repro.growth.pitch import DeterministicPitch, ExponentialPitch
from repro.growth.types import CNTTypeModel


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestCountSampling:
    def test_mean_count_matches_density(self, rng):
        model = IsotropicGrowthModel(pitch=ExponentialPitch(4.0))
        counts = model.sample_counts(120.0, 3000, rng)
        assert counts.mean() == pytest.approx(30.0, rel=0.05)

    def test_deterministic_pitch_count(self, rng):
        model = IsotropicGrowthModel(pitch=DeterministicPitch(10.0))
        counts = model.sample_counts(95.0, 200, rng)
        # With a random phase, a 95 nm window over 10 nm pitch holds 9 or 10 tubes.
        assert set(np.unique(counts)).issubset({9, 10})

    def test_zero_width_rejected(self, rng):
        model = IsotropicGrowthModel()
        with pytest.raises(ValueError):
            model.sample_count(0.0, rng)


class TestDeviceSampling:
    def test_device_counts_consistent(self, rng):
        model = IsotropicGrowthModel(
            pitch=ExponentialPitch(4.0),
            type_model=CNTTypeModel(metallic_fraction=0.0),
        )
        sample = model.sample_device(200.0, rng)
        assert sample.working_count <= sample.total_count
        assert sample.total_count > 0

    def test_ideal_process_no_failures_at_large_width(self, rng):
        model = IsotropicGrowthModel(
            pitch=ExponentialPitch(4.0),
            type_model=CNTTypeModel(metallic_fraction=0.0),
        )
        failures = model.sample_failures(200.0, 500, rng)
        assert failures.sum() == 0

    def test_all_metallic_always_fails(self, rng):
        model = IsotropicGrowthModel(
            pitch=ExponentialPitch(4.0),
            type_model=CNTTypeModel(metallic_fraction=1.0),
        )
        failures = model.sample_failures(100.0, 200, rng)
        assert failures.all()

    def test_estimate_failure_probability_narrow_device(self, rng):
        # Narrow device (8 nm => ~2 tubes on average) with pf=0.533:
        # analytic Poisson pF = exp(-2 * 0.4667) ~ 0.39.
        model = IsotropicGrowthModel(
            pitch=ExponentialPitch(4.0),
            type_model=CNTTypeModel(1.0 / 3.0, 1.0, 0.3),
        )
        estimate = model.estimate_failure_probability(8.0, 20_000, rng)
        assert estimate == pytest.approx(np.exp(-2.0 * (1.0 - 0.5333)), abs=0.03)

    def test_surviving_metallic_count_with_imperfect_removal(self, rng):
        model = IsotropicGrowthModel(
            pitch=ExponentialPitch(4.0),
            type_model=CNTTypeModel(0.5, removal_prob_metallic=0.0),
        )
        sample = model.sample_device(400.0, rng)
        assert sample.surviving_metallic_count > 0
