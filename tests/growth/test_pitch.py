"""Tests for inter-CNT pitch distributions."""

import numpy as np
import pytest

from repro.growth.pitch import (
    DeterministicPitch,
    ExponentialPitch,
    GammaPitch,
    TruncatedNormalPitch,
    pitch_distribution_from_cv,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestDeterministicPitch:
    def test_moments(self):
        pitch = DeterministicPitch(pitch_nm=4.0)
        assert pitch.mean_nm == 4.0
        assert pitch.std_nm == 0.0
        assert pitch.cv == 0.0

    def test_samples_are_constant(self, rng):
        pitch = DeterministicPitch(pitch_nm=4.0)
        samples = pitch.sample(100, rng)
        assert np.all(samples == 4.0)

    def test_sum_cdf_step(self):
        pitch = DeterministicPitch(pitch_nm=4.0)
        assert pitch.sum_cdf(3, 12.0) == 1.0
        assert pitch.sum_cdf(3, 11.9) == 0.0
        assert pitch.sum_cdf(0, 0.0) == 1.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            DeterministicPitch(pitch_nm=0.0)


class TestExponentialPitch:
    def test_moments(self):
        pitch = ExponentialPitch(mean_pitch_nm=4.0)
        assert pitch.mean_nm == 4.0
        assert pitch.std_nm == 4.0
        assert pitch.cv == pytest.approx(1.0)

    def test_density(self):
        pitch = ExponentialPitch(mean_pitch_nm=5.0)
        assert pitch.density_per_nm == pytest.approx(0.2)

    def test_sample_mean(self, rng):
        pitch = ExponentialPitch(mean_pitch_nm=4.0)
        samples = pitch.sample(50_000, rng)
        assert np.mean(samples) == pytest.approx(4.0, rel=0.03)

    def test_sum_cdf_matches_erlang(self):
        pitch = ExponentialPitch(mean_pitch_nm=4.0)
        # Sum of 1 exponential: CDF = 1 - exp(-w/4).
        assert pitch.sum_cdf(1, 4.0) == pytest.approx(1.0 - np.exp(-1.0))

    def test_sum_cdf_zero_terms(self):
        pitch = ExponentialPitch(mean_pitch_nm=4.0)
        assert pitch.sum_cdf(0, 10.0) == 1.0
        assert pitch.sum_cdf(5, 0.0) == 0.0

    def test_sum_cdf_monotone_in_n(self):
        pitch = ExponentialPitch(mean_pitch_nm=4.0)
        values = [pitch.sum_cdf(n, 40.0) for n in range(1, 30)]
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestGammaPitch:
    def test_moments(self):
        pitch = GammaPitch(mean_pitch_nm=4.0, cv_value=0.5)
        assert pitch.mean_nm == 4.0
        assert pitch.std_nm == pytest.approx(2.0)

    def test_shape_scale(self):
        pitch = GammaPitch(mean_pitch_nm=4.0, cv_value=0.5)
        assert pitch.shape == pytest.approx(4.0)
        assert pitch.scale_nm == pytest.approx(1.0)

    def test_sample_moments(self, rng):
        pitch = GammaPitch(mean_pitch_nm=4.0, cv_value=0.5)
        samples = pitch.sample(50_000, rng)
        assert np.mean(samples) == pytest.approx(4.0, rel=0.03)
        assert np.std(samples) == pytest.approx(2.0, rel=0.05)

    def test_sum_cdf_additive_shape(self):
        # Sum of n gammas with shape k equals a gamma with shape n*k: the CDF
        # at the mean of the sum should be close to (but below) ~0.5-0.6.
        pitch = GammaPitch(mean_pitch_nm=4.0, cv_value=0.5)
        value = pitch.sum_cdf(10, 40.0)
        assert 0.4 < value < 0.65

    def test_low_cv_approaches_deterministic(self):
        pitch = GammaPitch(mean_pitch_nm=4.0, cv_value=0.01)
        assert pitch.sum_cdf(10, 41.0) > 0.99
        assert pitch.sum_cdf(10, 39.0) < 0.01


class TestTruncatedNormalPitch:
    def test_mean_shifted_by_truncation(self):
        pitch = TruncatedNormalPitch(nominal_mean_nm=4.0, nominal_std_nm=2.0)
        # Truncation at zero pushes the mean slightly above the nominal mean.
        assert pitch.mean_nm > 4.0
        assert pitch.mean_nm < 5.0

    def test_samples_positive(self, rng):
        pitch = TruncatedNormalPitch(nominal_mean_nm=4.0, nominal_std_nm=3.0)
        samples = pitch.sample(10_000, rng)
        assert np.all(samples > 0)

    def test_single_sum_cdf_is_exact_cdf(self):
        pitch = TruncatedNormalPitch(nominal_mean_nm=4.0, nominal_std_nm=1.0)
        assert pitch.sum_cdf(1, 4.0) == pytest.approx(0.5, abs=0.02)

    def test_multi_sum_cdf_midpoint(self):
        pitch = TruncatedNormalPitch(nominal_mean_nm=4.0, nominal_std_nm=1.0)
        mid = pitch.sum_cdf(25, 25 * pitch.mean_nm)
        assert mid == pytest.approx(0.5, abs=0.05)


class TestFactory:
    def test_zero_cv_gives_deterministic(self):
        assert isinstance(pitch_distribution_from_cv(4.0, 0.0), DeterministicPitch)

    def test_unit_cv_gives_exponential(self):
        assert isinstance(pitch_distribution_from_cv(4.0, 1.0), ExponentialPitch)

    def test_other_cv_gives_gamma(self):
        dist = pitch_distribution_from_cv(4.0, 0.4)
        assert isinstance(dist, GammaPitch)
        assert dist.cv == pytest.approx(0.4)

    def test_negative_cv_rejected(self):
        with pytest.raises(ValueError):
            pitch_distribution_from_cv(4.0, -0.1)

    def test_non_positive_mean_rejected(self):
        with pytest.raises(ValueError):
            pitch_distribution_from_cv(0.0, 1.0)


class TestSumCdfArray:
    """The vectorised sum_cdf_array must agree with the scalar sum_cdf."""

    @pytest.mark.parametrize("pitch", [
        DeterministicPitch(5.0),
        ExponentialPitch(4.0),
        GammaPitch(4.0, 0.5),
        GammaPitch(4.0, 1.7),
        TruncatedNormalPitch(4.0, 2.0),
    ])
    @pytest.mark.parametrize("w_nm", [-1.0, 0.0, 3.0, 40.0])
    def test_matches_scalar_elementwise(self, pitch, w_nm):
        n_values = np.arange(0, 12)
        vectorised = pitch.sum_cdf_array(n_values, w_nm)
        scalar = np.array([pitch.sum_cdf(int(n), w_nm) for n in n_values])
        np.testing.assert_allclose(vectorised, scalar, rtol=1e-12, atol=1e-15)

    def test_batch_sampling_matches_flat_stream(self):
        pitch = GammaPitch(4.0, 0.5)
        flat = pitch.sample(12, np.random.default_rng(3))
        batched = pitch.sample_batch((3, 4), np.random.default_rng(3))
        np.testing.assert_array_equal(batched.ravel(), flat)

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            ExponentialPitch(4.0).sum_cdf_array(np.array([1, -1]), 10.0)
