"""Tests for the m-CNT removal processing step."""

import numpy as np
import pytest

from repro.growth.cnt import CNT, CNTTrack, CNTType
from repro.growth.removal import RemovalProcess
from repro.growth.types import CNTTypeModel


def make_cnts(n_metallic, n_semi):
    cnts = []
    for i in range(n_metallic):
        cnts.append(CNT(float(i), 0.0, 10.0, CNTType.METALLIC))
    for i in range(n_semi):
        cnts.append(CNT(float(100 + i), 0.0, 10.0, CNTType.SEMICONDUCTING))
    return cnts


class TestRemovalProcess:
    def test_perfect_removal_removes_all_metallic(self):
        rng = np.random.default_rng(1)
        process = RemovalProcess(removal_prob_metallic=1.0, removal_prob_semiconducting=0.0)
        processed = process.apply_to_cnts(make_cnts(50, 50), rng)
        outcome = RemovalProcess.summarise(processed)
        assert outcome.metallic_removed == 50
        assert outcome.semiconducting_removed == 0
        assert outcome.metallic_surviving == 0
        assert outcome.semiconducting_surviving == 50

    def test_no_removal_keeps_everything(self):
        rng = np.random.default_rng(2)
        process = RemovalProcess(removal_prob_metallic=0.0, removal_prob_semiconducting=0.0)
        processed = process.apply_to_cnts(make_cnts(30, 70), rng)
        assert all(not c.removed for c in processed)

    def test_partial_removal_rates(self):
        rng = np.random.default_rng(3)
        process = RemovalProcess(removal_prob_metallic=0.8, removal_prob_semiconducting=0.2)
        processed = process.apply_to_cnts(make_cnts(5000, 5000), rng)
        outcome = RemovalProcess.summarise(processed)
        assert outcome.removal_rate_metallic == pytest.approx(0.8, abs=0.03)
        assert outcome.removal_rate_semiconducting == pytest.approx(0.2, abs=0.03)

    def test_empty_population(self):
        rng = np.random.default_rng(4)
        process = RemovalProcess()
        assert process.apply_to_cnts([], rng) == []
        assert process.apply_to_tracks([], rng) == []

    def test_apply_to_tracks_mutates_in_place(self):
        rng = np.random.default_rng(5)
        tracks = [
            CNTTrack(0.0, 0.0, 100.0, CNTType.METALLIC),
            CNTTrack(4.0, 0.0, 100.0, CNTType.SEMICONDUCTING),
        ]
        process = RemovalProcess(removal_prob_metallic=1.0, removal_prob_semiconducting=0.0)
        result = process.apply_to_tracks(tracks, rng)
        assert result is not None
        assert tracks[0].removed is True
        assert tracks[1].removed is False

    def test_from_type_model(self):
        model = CNTTypeModel(0.3, 0.95, 0.05)
        process = RemovalProcess.from_type_model(model)
        assert process.removal_prob_metallic == 0.95
        assert process.removal_prob_semiconducting == 0.05

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            RemovalProcess(removal_prob_metallic=1.5)

    def test_summary_rates_nan_when_empty_class(self):
        outcome = RemovalProcess.summarise(make_cnts(0, 3))
        assert np.isnan(outcome.removal_rate_metallic)
        assert outcome.semiconducting_before == 3
