"""Tests for the spatially correlated growth-variation fields.

Pins the statistical contract of the circulant-embedding sampler
(marginal variance, variogram against the kernel, white-noise limit) and
the determinism/bitwise-invariance contract (spawn-keyed draws,
evaluation-order independence, exact radial-only reduction at sigma 0).
"""

import numpy as np
import pytest

from repro.growth.spatial import (
    GaussianRandomField,
    SpatialFieldSpec,
    field_correlation,
    sample_field,
    variogram,
)
from repro.growth.wafer import WaferGrowthModel


class TestSpec:
    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            SpatialFieldSpec(sigma=-0.1, correlation_length_mm=10.0)

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            SpatialFieldSpec(sigma=0.1, correlation_length_mm=-1.0)

    def test_rejects_unknown_kernel(self):
        with pytest.raises(ValueError):
            SpatialFieldSpec(sigma=0.1, correlation_length_mm=10.0, kernel="matern")

    def test_covariance_at_zero_is_variance(self):
        spec = SpatialFieldSpec(sigma=0.3, correlation_length_mm=10.0)
        assert spec.covariance(0.0) == pytest.approx(0.09)

    def test_exponential_kernel_decays_slower_than_gaussian(self):
        g = SpatialFieldSpec(sigma=1.0, correlation_length_mm=10.0)
        e = SpatialFieldSpec(sigma=1.0, correlation_length_mm=10.0,
                             kernel="exponential")
        assert e.covariance(20.0) > g.covariance(20.0)


class TestDeterminism:
    def test_same_seed_key_bitwise_identical(self):
        spec = SpatialFieldSpec(sigma=0.1, correlation_length_mm=20.0)
        a = sample_field(spec, 100.0, (123, 4), tag=2)
        b = sample_field(spec, 100.0, (123, 4), tag=2)
        assert np.array_equal(a.values, b.values)

    def test_different_tags_differ(self):
        spec = SpatialFieldSpec(sigma=0.1, correlation_length_mm=20.0)
        a = sample_field(spec, 100.0, (123,), tag=0)
        b = sample_field(spec, 100.0, (123,), tag=1)
        assert not np.array_equal(a.values, b.values)

    def test_evaluation_order_invariant(self):
        # Reading the field at shuffled coordinates returns the same
        # values per coordinate — the die-order invariance contract.
        spec = SpatialFieldSpec(sigma=0.1, correlation_length_mm=20.0)
        field = sample_field(spec, 100.0, (7,))
        rng = np.random.default_rng(0)
        x = rng.uniform(-45, 45, size=40)
        y = rng.uniform(-45, 45, size=40)
        direct = field.at(x, y)
        perm = rng.permutation(40)
        shuffled = field.at(x[perm], y[perm])
        assert np.array_equal(direct[perm], shuffled)

    def test_sigma_zero_is_exactly_zero_field(self):
        field = sample_field(
            SpatialFieldSpec(sigma=0.0, correlation_length_mm=20.0),
            100.0, (5,),
        )
        assert np.all(field.values == 0.0)


class TestStatistics:
    @pytest.fixture(scope="class")
    def realisations(self):
        spec = SpatialFieldSpec(sigma=1.0, correlation_length_mm=20.0)
        pts = np.array([
            [0.0, 0.0], [20.0, 0.0], [0.0, 20.0], [40.0, 0.0],
            [-30.0, 10.0], [10.0, -35.0],
        ])
        values = np.array([
            sample_field(spec, 100.0, (42,), tag=t).at(pts[:, 0], pts[:, 1])
            for t in range(600)
        ])
        return spec, pts, values

    def test_unit_marginal_variance(self, realisations):
        _, _, values = realisations
        # 600 realisations: the sample std of a unit normal is within a
        # few percent at 5 sigma.
        assert np.all(np.abs(values.std(axis=0) - 1.0) < 0.15)

    def test_correlation_matches_kernel_at_one_length(self, realisations):
        spec, _, values = realisations
        target = field_correlation(spec, 20.0)
        for pair in ((0, 1), (0, 2)):
            c = np.corrcoef(values[:, pair[0]], values[:, pair[1]])[0, 1]
            assert abs(c - target) < 0.15

    def test_distant_points_nearly_uncorrelated(self, realisations):
        _, _, values = realisations
        c = np.corrcoef(values[:, 4], values[:, 5])[0, 1]
        assert abs(c) < 0.15

    def test_variogram_tracks_kernel(self, realisations):
        spec, pts, values = realisations
        edges = np.array([15.0, 25.0, 50.0, 90.0])
        gamma, counts = variogram(values, pts, edges)
        assert np.all(counts > 0)
        # gamma(d) = sigma^2 (1 - rho(d)); compare at the bin centres.
        for g, centre in zip(gamma, (20.0, 37.5, 70.0)):
            expected = spec.sigma ** 2 * (1.0 - field_correlation(spec, centre))
            assert abs(g - expected) < 0.35 * max(expected, 0.2)

    def test_white_noise_limit_is_iid(self):
        # correlation_length 0: neighbouring grid nodes are independent
        # N(0, sigma^2) — the legacy independent per-die noise.
        spec = SpatialFieldSpec(sigma=0.5, correlation_length_mm=0.0)
        field = sample_field(spec, 100.0, (11,))
        v = field.values
        assert abs(v.std() - 0.5) < 0.05
        lag = np.corrcoef(v[:-1, :].ravel(), v[1:, :].ravel())[0, 1]
        assert abs(lag) < 0.05


class TestEvaluation:
    def test_nearest_node_lookup(self):
        spec = SpatialFieldSpec(sigma=1.0, correlation_length_mm=0.0,
                                resolution_mm=2.0)
        field = sample_field(spec, 20.0, (3,))
        # A coordinate exactly on a node returns that node's value.
        i, j = 4, 7
        x = field.origin_mm + i * field.resolution_mm
        y = field.origin_mm + j * field.resolution_mm
        assert field.at(x, y) == field.values[i, j]

    def test_out_of_grid_clamps_to_edge(self):
        spec = SpatialFieldSpec(sigma=1.0, correlation_length_mm=0.0,
                                resolution_mm=2.0)
        field = sample_field(spec, 20.0, (3,))
        assert field.at(1e4, 1e4) == field.values[-1, -1]

    def test_grid_cap_enforced(self):
        spec = SpatialFieldSpec(sigma=1.0, correlation_length_mm=10.0,
                                resolution_mm=0.01)
        with pytest.raises(ValueError):
            sample_field(spec, 100.0, (1,))


class TestWaferComposition:
    """The field-driven wafer model composes with the radial profile."""

    def test_sigma_zero_reduces_bitwise_to_radial_only(self):
        radial = WaferGrowthModel(
            pitch_noise_sigma=0.0,
            center_misalignment_deg=0.0,
            edge_misalignment_deg=0.0,
        ).generate(np.random.default_rng(1))
        fielded = WaferGrowthModel(
            density_field=SpatialFieldSpec(sigma=0.0, correlation_length_mm=25.0),
            misalignment_field=SpatialFieldSpec(sigma=0.0, correlation_length_mm=25.0),
        ).generate(seed_key=(1,))
        assert len(radial.sites) == len(fielded.sites)
        for a, b in zip(radial.sites, fielded.sites):
            assert a.mean_pitch_nm == b.mean_pitch_nm
            assert b.misalignment_deg == 0.0

    def test_composition_is_radial_times_field_factor(self):
        # Dividing out the field factor per die recovers the pure radial
        # profile exactly: the composition is multiplicative.  The factor
        # is recomputed with the implementation's own expression (same
        # association, same libm exp) so the equality is bitwise.
        import math

        spec = SpatialFieldSpec(sigma=0.05, correlation_length_mm=25.0)
        model = WaferGrowthModel(density_field=spec)
        wafer = model.generate(seed_key=(9,))
        f = wafer.density_field
        assert f is not None
        for site in wafer.sites:
            z = float(f.at(site.x_mm, site.y_mm))
            factor = math.exp(z - 0.5 * spec.sigma * spec.sigma)
            radial = model.radial_pitch_nm(site.radius_mm)
            assert site.mean_pitch_nm == radial / factor

    def test_nugget_limit_matches_legacy_noise_statistics(self):
        # correlation_length -> 0 gives independent per-die lognormal
        # density noise: per-die log factors are iid N(-s^2/2, s^2).
        spec = SpatialFieldSpec(sigma=0.04, correlation_length_mm=0.0)
        model = WaferGrowthModel(die_size_mm=10.0, density_field=spec)
        logs = []
        for seed in range(40):
            wafer = model.generate(seed_key=(seed,))
            for site in wafer.sites:
                radial = model.radial_pitch_nm(site.radius_mm)
                logs.append(np.log(radial / site.mean_pitch_nm))
        logs = np.asarray(logs)
        assert abs(logs.mean() + 0.5 * spec.sigma ** 2) < 0.004
        assert abs(logs.std() - spec.sigma) < 0.005

    def test_misalignment_field_correlates_neighbours(self):
        model = WaferGrowthModel(
            die_size_mm=10.0,
            center_misalignment_deg=1.0,
            edge_misalignment_deg=1.0,
            misalignment_field=SpatialFieldSpec(sigma=1.0,
                                                correlation_length_mm=40.0),
        )
        products, mags = [], []
        for seed in range(60):
            wafer = model.generate(seed_key=(seed, 1))
            by_pos = {(s.column, s.row): s.misalignment_deg
                      for s in wafer.sites}
            for (c, r), angle in by_pos.items():
                right = by_pos.get((c + 1, r))
                if right is not None:
                    products.append(angle * right)
                    mags.append(angle * angle)
        # E[Z(p) Z(q)] = rho(10 mm) ~ 0.94 at l = 40 mm; independent
        # draws would average ~0.
        ratio = np.mean(products) / np.mean(mags)
        assert ratio > 0.5

    def test_die_order_invariance_of_field_values(self):
        # Two generations of the same model agree die by die, however
        # the sites are later reordered.
        model = WaferGrowthModel(
            density_field=SpatialFieldSpec(sigma=0.05, correlation_length_mm=25.0),
        )
        a = model.generate(seed_key=(3,))
        b = model.generate(seed_key=(3,))
        key = lambda s: (s.column, s.row)
        assert sorted(a.sites, key=key) == sorted(b.sites, key=key)
