"""Tests for the CNT type model and Eq. 2.1."""

import numpy as np
import pytest

from repro.growth.cnt import CNTType
from repro.growth.types import (
    CNTTypeModel,
    IDEAL_CORNER,
    PERFECT_REMOVAL_CORNER,
    PESSIMISTIC_CORNER,
    per_cnt_failure_probability,
)


class TestEquation21:
    def test_ideal_process(self):
        assert per_cnt_failure_probability(0.0, 0.0) == 0.0

    def test_metallic_only(self):
        assert per_cnt_failure_probability(1.0 / 3.0, 0.0) == pytest.approx(1.0 / 3.0)

    def test_paper_pessimistic_corner(self):
        # pf = pm + ps*pRs = 1/3 + 2/3 * 0.3 = 0.5333...
        assert per_cnt_failure_probability(1.0 / 3.0, 0.3) == pytest.approx(0.5333, abs=1e-3)

    def test_all_metallic(self):
        assert per_cnt_failure_probability(1.0, 0.0) == 1.0

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            per_cnt_failure_probability(1.5, 0.0)


class TestCNTTypeModel:
    def test_defaults_are_probabilities(self):
        model = CNTTypeModel()
        assert 0.0 <= model.per_cnt_failure_probability <= 1.0

    def test_success_complements_failure(self):
        model = CNTTypeModel(metallic_fraction=0.3, removal_prob_semiconducting=0.1)
        assert model.per_cnt_success_probability == pytest.approx(
            1.0 - model.per_cnt_failure_probability
        )

    def test_pf_independent_of_prm(self):
        a = CNTTypeModel(1.0 / 3.0, 1.0, 0.3)
        b = CNTTypeModel(1.0 / 3.0, 0.5, 0.3)
        assert a.per_cnt_failure_probability == b.per_cnt_failure_probability

    def test_surviving_metallic_probability(self):
        model = CNTTypeModel(metallic_fraction=0.3, removal_prob_metallic=0.9)
        assert model.surviving_metallic_probability == pytest.approx(0.03)

    def test_removed_probability(self):
        model = CNTTypeModel(0.3, 1.0, 0.1)
        assert model.removed_probability == pytest.approx(0.3 + 0.7 * 0.1)

    def test_with_perfect_removal(self):
        model = CNTTypeModel(0.3, 0.5, 0.1).with_perfect_removal()
        assert model.removal_prob_metallic == 1.0
        assert model.surviving_metallic_probability == 0.0

    def test_with_no_processing(self):
        model = CNTTypeModel(0.3, 1.0, 0.1).with_no_processing()
        assert model.removal_prob_metallic == 0.0
        assert model.removal_prob_semiconducting == 0.0

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            CNTTypeModel(metallic_fraction=1.5)


class TestSampling:
    def test_sample_types_fraction(self):
        rng = np.random.default_rng(3)
        model = CNTTypeModel(metallic_fraction=0.25)
        types = model.sample_types(20_000, rng)
        metallic = np.mean([t is CNTType.METALLIC for t in types])
        assert metallic == pytest.approx(0.25, abs=0.02)

    def test_sample_removed_conditional_rates(self):
        rng = np.random.default_rng(4)
        model = CNTTypeModel(0.5, removal_prob_metallic=0.9, removal_prob_semiconducting=0.1)
        types = model.sample_types(20_000, rng)
        removed = model.sample_removed(types, rng)
        metallic_mask = np.array([t is CNTType.METALLIC for t in types])
        rate_m = removed[metallic_mask].mean()
        rate_s = removed[~metallic_mask].mean()
        assert rate_m == pytest.approx(0.9, abs=0.02)
        assert rate_s == pytest.approx(0.1, abs=0.02)

    def test_sample_working_rate(self):
        rng = np.random.default_rng(5)
        model = CNTTypeModel(1.0 / 3.0, 1.0, 0.3)
        working = model.sample_working(50_000, rng)
        assert working.mean() == pytest.approx(
            model.per_cnt_success_probability, abs=0.01
        )


class TestNamedCorners:
    def test_ideal_corner(self):
        assert IDEAL_CORNER.per_cnt_failure_probability == 0.0

    def test_perfect_removal_corner(self):
        assert PERFECT_REMOVAL_CORNER.per_cnt_failure_probability == pytest.approx(1.0 / 3.0)

    def test_pessimistic_corner_ordering(self):
        assert (
            PESSIMISTIC_CORNER.per_cnt_failure_probability
            > PERFECT_REMOVAL_CORNER.per_cnt_failure_probability
            > IDEAL_CORNER.per_cnt_failure_probability
        )
