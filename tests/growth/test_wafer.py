"""Tests for the wafer-level growth variation model."""

import numpy as np
import pytest

from repro.core.calibration import CalibratedSetup
from repro.growth.wafer import WaferGrowthModel


@pytest.fixture(scope="module")
def wafer_map():
    model = WaferGrowthModel(
        wafer_diameter_mm=100.0,
        die_size_mm=10.0,
        center_pitch_nm=4.0,
        edge_pitch_drift=0.15,
        pitch_noise_sigma=0.02,
        center_misalignment_deg=0.2,
        edge_misalignment_deg=1.0,
    )
    return model.generate(np.random.default_rng(3))


class TestWaferGrowthModel:
    def test_die_count_reasonable(self, wafer_map):
        # A 100 mm wafer with 10 mm dies holds a few dozen usable dies.
        assert 30 <= wafer_map.die_count <= 80

    def test_dies_fit_inside_wafer(self, wafer_map):
        half_diag = wafer_map.die_size_mm / np.sqrt(2.0)
        for site in wafer_map.sites:
            assert site.radius_mm + half_diag <= 50.0 + 1e-9

    def test_pitch_drifts_outwards(self, wafer_map):
        radii = np.array([s.radius_mm for s in wafer_map.sites])
        pitches = wafer_map.pitches_nm()
        inner = pitches[radii < np.median(radii)].mean()
        outer = pitches[radii >= np.median(radii)].mean()
        assert outer > inner

    def test_misalignment_spread_grows_outwards(self):
        model = WaferGrowthModel(center_misalignment_deg=0.1, edge_misalignment_deg=2.0)
        rng = np.random.default_rng(11)
        # Average absolute misalignment over several wafers to beat noise.
        inner_values, outer_values = [], []
        for _ in range(10):
            wafer = model.generate(rng)
            radii = np.array([s.radius_mm for s in wafer.sites])
            mis = np.abs(wafer.misalignments_deg())
            median = np.median(radii)
            inner_values.append(mis[radii < median].mean())
            outer_values.append(mis[radii >= median].mean())
        assert np.mean(outer_values) > np.mean(inner_values)

    def test_generation_deterministic_for_seed(self):
        model = WaferGrowthModel()
        a = model.generate(np.random.default_rng(5))
        b = model.generate(np.random.default_rng(5))
        assert np.allclose(a.pitches_nm(), b.pitches_nm())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WaferGrowthModel(wafer_diameter_mm=0.0)
        with pytest.raises(ValueError):
            WaferGrowthModel(die_size_mm=200.0, wafer_diameter_mm=100.0)
        with pytest.raises(ValueError):
            WaferGrowthModel(edge_pitch_drift=-0.1)
        with pytest.raises(ValueError):
            WaferGrowthModel(center_misalignment_deg=-1.0)


class TestYieldMap:
    def test_good_die_fraction_with_chip_yield(self, wafer_map):
        # Use the per-die pitch in the calibrated chip model: sparser growth
        # (larger pitch) lowers the chip yield, so edge dies do worse.
        def die_yield(site):
            setup = CalibratedSetup(mean_pitch_nm=site.mean_pitch_nm)
            wmin = 168.0  # fixed sizing chosen for the nominal (centre) pitch
            p_f = setup.failure_model.failure_probability(wmin)
            m_min = setup.min_size_device_count
            return float(np.exp(m_min * np.log1p(-p_f)))

        fraction = wafer_map.good_die_fraction(die_yield, threshold=0.5)
        yields = wafer_map.yield_map(die_yield)
        assert 0.0 <= fraction <= 1.0
        # Centre dies (nominal pitch) must meet the target comfortably.
        radii = np.array([s.radius_mm for s in wafer_map.sites])
        assert yields[np.argmin(radii)] > 0.85

    def test_yield_map_shape(self, wafer_map):
        values = wafer_map.yield_map(lambda site: 1.0)
        assert values.shape == (wafer_map.die_count,)
        assert wafer_map.good_die_fraction(lambda site: 1.0) == 1.0
