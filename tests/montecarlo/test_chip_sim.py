"""Tests for the full-chip Monte Carlo simulator."""

import numpy as np
import pytest

from repro.cells.aligned_active import enforce_aligned_active
from repro.cells.nangate45 import build_nangate45_library
from repro.growth.pitch import ExponentialPitch
from repro.growth.types import CNTTypeModel
from repro.montecarlo.chip_sim import ChipMonteCarlo, compare_libraries
from repro.netlist.design import Design
from repro.netlist.placement import RowPlacement


@pytest.fixture(scope="module")
def library():
    return build_nangate45_library()


def small_block(library, n_cells=120):
    """A small block of minimum-size inverters and NAND gates."""
    design = Design("block", library)
    for i in range(n_cells):
        cell = "INV_X1" if i % 2 == 0 else "NAND2_X1"
        design.add(f"u{i}", cell)
    return design


@pytest.fixture(scope="module")
def placement(library):
    return RowPlacement(small_block(library), row_width_nm=40_000.0)


class TestChipMonteCarlo:
    def test_device_count_matches_design(self, library, placement):
        simulator = ChipMonteCarlo(placement)
        design_transistors = small_block(library).transistor_count
        assert simulator.device_count == design_transistors
        assert 0 < simulator.small_device_count <= simulator.device_count

    def test_ideal_process_never_fails(self, placement, rng):
        simulator = ChipMonteCarlo(
            placement,
            pitch=ExponentialPitch(4.0),
            type_model=CNTTypeModel(metallic_fraction=0.0,
                                    removal_prob_semiconducting=0.0),
        )
        result = simulator.run(10, rng)
        assert result.chip_yield == 1.0
        assert result.mean_failing_devices == 0.0

    def test_all_metallic_always_fails(self, placement, rng):
        simulator = ChipMonteCarlo(
            placement,
            type_model=CNTTypeModel(metallic_fraction=1.0),
        )
        result = simulator.run(3, rng)
        assert result.chip_yield == 0.0
        assert result.mean_failing_devices == simulator.device_count

    def test_failure_rate_matches_analytic_scale(self, placement, rng):
        # Sparse growth (20 nm pitch) makes per-device failures measurable:
        # an 80 nm device then sees ~4 tubes, pf = 0.533, so pF ≈ e^{-1.87} ≈ 0.15.
        simulator = ChipMonteCarlo(
            placement,
            pitch=ExponentialPitch(20.0),
            type_model=CNTTypeModel(1.0 / 3.0, 1.0, 0.3),
        )
        result = simulator.run(20, rng)
        assert 0.02 < result.device_failure_rate < 0.4

    def test_failures_cluster_on_shared_tracks(self, placement, rng):
        # Devices in the same row share tubes, so the failing-device count
        # is over-dispersed relative to independent (Poisson-like) failures.
        simulator = ChipMonteCarlo(
            placement,
            pitch=ExponentialPitch(20.0),
            type_model=CNTTypeModel(1.0 / 3.0, 1.0, 0.3),
        )
        result = simulator.run(40, rng)
        assert result.failure_clustering_index > 1.5

    def test_invalid_trials(self, placement, rng):
        simulator = ChipMonteCarlo(placement)
        with pytest.raises(ValueError):
            simulator.run(0, rng)

    def test_empty_design_rejected(self, library):
        design = Design("empty", library)
        design.add("u0", "FILLCELL_X1")  # no transistors
        placement = RowPlacement(design, row_width_nm=10_000.0)
        with pytest.raises(ValueError):
            ChipMonteCarlo(placement)

    def test_short_row_height_clamps_windows(self, library, placement, rng):
        # An explicit row height below some active regions must clamp every
        # window into [0, row_height]: the batched counter requires in-span
        # queries, and devices with no in-span coverage must count as
        # failing in both engines (they capture no tracks).
        simulator = ChipMonteCarlo(
            placement,
            pitch=ExponentialPitch(4.0),
            type_model=CNTTypeModel(metallic_fraction=0.0,
                                    removal_prob_semiconducting=0.0),
            row_height_nm=50.0,
        )
        geometry = simulator._geometry
        assert np.all(geometry.window_lo >= 0.0)
        assert np.all(geometry.window_hi >= geometry.window_lo)
        assert np.all(geometry.window_hi <= 50.0)
        out_of_span = int(
            geometry.window_weight[geometry.window_lo == geometry.window_hi].sum()
        )
        assert out_of_span > 0  # the short span must actually cut regions off
        result = simulator.run(8, rng)
        assert result.mean_failing_devices >= out_of_span
        assert result.mean_failing_devices <= simulator.device_count

    def test_windowless_design_with_explicit_height(self, library, rng):
        # An explicit row height bypasses the no-transistor rejection; both
        # engines must then agree that nothing can fail.
        design = Design("empty", library)
        design.add("u0", "FILLCELL_X1")
        placement = RowPlacement(design, row_width_nm=10_000.0)
        simulator = ChipMonteCarlo(placement, row_height_nm=1_400.0)
        vectorized = simulator.run(4, rng)
        scalar = simulator.run_scalar(4, rng)
        assert vectorized.mean_failing_devices == 0.0
        assert scalar.mean_failing_devices == 0.0
        assert vectorized.chip_yield == scalar.chip_yield == 1.0


class TestLibraryComparison:
    def test_aligned_library_improves_yield_metrics(self, library):
        design = small_block(library, n_cells=80)
        aligned_library = enforce_aligned_active(library, wmin_nm=103.0).to_library(
            "nangate45_aligned"
        )
        aligned_design = Design("block_aligned", aligned_library)
        for instance in design.instances:
            aligned_design.add_instance(instance)

        results = compare_libraries(
            RowPlacement(design, row_width_nm=40_000.0),
            RowPlacement(aligned_design, row_width_nm=40_000.0),
            type_model=CNTTypeModel(1.0 / 3.0, 1.0, 0.3),
            pitch=ExponentialPitch(20.0),
            n_trials=30,
            seed=3,
        )
        original, aligned = results["original"], results["aligned"]
        # Upsizing the critical devices to Wmin lowers the per-device failure
        # rate, which (together with clustering) raises the chip yield.
        assert aligned.device_failure_rate < original.device_failure_rate
        assert aligned.chip_yield >= original.chip_yield
