"""Tests for whole-placement per-die chip runs (`wafer_sim.run_chip_wafer`).

The headline contracts:

* the shared-geometry pass is *bitwise* identical, die by die, to a
  fresh :class:`ChipMonteCarlo` per die driven on the same spawn-keyed
  streams (:func:`chip_per_die_loop`);
* results are bitwise invariant to die order and ``n_workers``;
* the Eq. 2.3 independent-device view sits at or below the direct
  (correlation-aware) yield — the paper's benefit, made measurable;
* misalignment de-rating raises the Eq. 2.3 view monotonically and
  never touches the direct indicators.
"""

import math

import numpy as np
import pytest

from repro.analysis.mispositioned import MisalignmentImpactModel
from repro.cells.nangate45 import build_nangate45_library
from repro.growth.pitch import ExponentialPitch
from repro.growth.types import CNTTypeModel
from repro.growth.wafer import WaferGrowthModel, WaferMap
from repro.montecarlo.chip_sim import ChipMonteCarlo
from repro.montecarlo.wafer_sim import (
    chip_die_stream,
    chip_per_die_loop,
    die_stream,
    run_chip_wafer,
)
from repro.netlist.openrisc import build_openrisc_like_design
from repro.netlist.placement import RowPlacement
from repro.reporting.tables import (
    CHIP_WAFER_SUMMARY_COLUMNS,
    chip_wafer_summary_rows,
    render_table,
    wafer_map_lines,
)


@pytest.fixture(scope="module")
def chip():
    library = build_nangate45_library()
    design = build_openrisc_like_design(library, scale=0.02, seed=2010)
    return ChipMonteCarlo(
        RowPlacement(design),
        pitch=ExponentialPitch(4.0),
        type_model=CNTTypeModel(1.0 / 3.0, 1.0, 0.3),
    )


@pytest.fixture(scope="module")
def wafer():
    return WaferGrowthModel(
        center_pitch_nm=4.0, die_size_mm=25.0
    ).generate(np.random.default_rng(2))


class TestWidthClassHistogram:
    def test_counts_cover_every_device(self, chip):
        widths, counts = chip.width_class_histogram()
        assert len(widths) == len(counts)
        assert sum(counts) == chip.device_count
        assert list(widths) == sorted(widths)

    def test_all_widths_positive(self, chip):
        widths, _ = chip.width_class_histogram()
        assert all(w > 0 for w in widths)


class TestSharedGeometryEquivalence:
    def test_direct_stats_bitwise_equal_to_per_die_loop(self, chip, wafer):
        shared = run_chip_wafer(wafer, chip, n_trials=32, seed_key=(5,))
        loop = chip_per_die_loop(wafer, chip, n_trials=32, seed_key=(5,))
        assert shared.die_count == loop.die_count == wafer.die_count
        for a, b in zip(shared.dice, loop.dice):
            assert (a.column, a.row) == (b.column, b.row)
            assert a.chip_yield == b.chip_yield
            assert a.mean_failing_devices == b.mean_failing_devices
            assert a.std_failing_devices == b.std_failing_devices
            assert a.mean_failing_rows == b.mean_failing_rows
            assert a.device_failure_rate == b.device_failure_rate

    def test_die_order_invariance(self, chip, wafer):
        reference = run_chip_wafer(wafer, chip, n_trials=16, seed_key=(7,))
        shuffled_sites = list(wafer.sites)
        np.random.default_rng(0).shuffle(shuffled_sites)
        shuffled = WaferMap(
            wafer_diameter_mm=wafer.wafer_diameter_mm,
            die_size_mm=wafer.die_size_mm,
            sites=tuple(shuffled_sites),
        )
        result = run_chip_wafer(shuffled, chip, n_trials=16, seed_key=(7,))
        assert result.dice == reference.dice

    def test_n_workers_bitwise_invariant(self, chip, wafer):
        serial = run_chip_wafer(wafer, chip, n_trials=16, seed_key=(9,))
        pooled = run_chip_wafer(
            wafer, chip, n_trials=16, seed_key=(9,), n_workers=3
        )
        assert serial.dice == pooled.dice

    def test_chip_stream_distinct_from_die_stream(self, wafer):
        site = wafer.sites[0]
        a = die_stream((1,), site).integers(0, 1 << 62, 8)
        b = chip_die_stream((1,), site).integers(0, 1 << 62, 8)
        assert not np.array_equal(a, b)


class TestYieldViews:
    def test_eq23_never_exceeds_direct_by_construction(self, chip, wafer):
        # Clustered failures mean fewer failing chips than the
        # independent-device product predicts; statistically the direct
        # yield dominates (allow SE slack on the comparison).
        result = run_chip_wafer(wafer, chip, n_trials=96, seed_key=(11,))
        for die in result.dice:
            assert die.eq23_chip_yield <= die.chip_yield + 1e-9

    def test_class_probabilities_consistent_with_failing_devices(
        self, chip, wafer
    ):
        # sum_q M_q p_q is exactly the mean failing-device count: both
        # are linear reductions of the same failing mask.
        result = run_chip_wafer(wafer, chip, n_trials=48, seed_key=(13,))
        for die in result.dice:
            recon = sum(
                m * p for m, p in zip(
                    die.device_counts, die.class_failure_probabilities
                )
            )
            assert recon == pytest.approx(die.mean_failing_devices, rel=1e-12)

    def test_device_counts_match_histogram(self, chip, wafer):
        widths, counts = chip.width_class_histogram()
        result = run_chip_wafer(wafer, chip, n_trials=8, seed_key=(15,))
        assert result.widths_nm == widths
        assert result.device_counts == counts
        assert result.device_count == chip.device_count

    def test_trial_chunk_override_preserves_statistics(self, chip, wafer):
        # Different chunking, same streams-per-chunk layout change: the
        # estimates remain valid (means over the same number of trials).
        a = run_chip_wafer(wafer, chip, n_trials=32, seed_key=(17,))
        b = run_chip_wafer(
            wafer, chip, n_trials=32, seed_key=(17,), trial_chunk=8
        )
        for da, db in zip(a.dice, b.dice):
            assert da.n_trials == db.n_trials == 32


class TestMisalignmentDerating:
    def test_derating_raises_eq23_and_keeps_direct(self, chip):
        wafer = WaferGrowthModel(
            center_pitch_nm=4.0,
            die_size_mm=25.0,
            center_misalignment_deg=0.3,
            edge_misalignment_deg=1.5,
        ).generate(np.random.default_rng(4))
        base = run_chip_wafer(wafer, chip, n_trials=32, seed_key=(19,))
        model = MisalignmentImpactModel(
            band_width_nm=103.0, cnt_length_um=200.0,
            min_cnfet_density_per_um=1.8,
        )
        derated = run_chip_wafer(
            wafer, chip, n_trials=32, seed_key=(19,), misalignment=model,
        )
        for a, b in zip(base.dice, derated.dice):
            assert b.relaxation_factor >= 1.0
            assert b.relaxation_factor == model.relaxation_for_angle(
                b.misalignment_deg
            )
            # Direct indicators are realised counts — never de-rated.
            assert a.chip_yield == b.chip_yield
            assert a.mean_failing_devices == b.mean_failing_devices
            # The Eq. 2.3 view relaxes: class probabilities divide by R.
            for p_raw, p_der in zip(
                a.class_failure_probabilities, b.class_failure_probabilities
            ):
                assert p_der == pytest.approx(
                    p_raw / b.relaxation_factor, rel=1e-12
                )
            assert b.eq23_chip_yield >= a.eq23_chip_yield - 1e-12


class TestReporting:
    def test_summary_rows_and_map(self, chip, wafer):
        result = run_chip_wafer(wafer, chip, n_trials=16, seed_key=(21,))
        rows = chip_wafer_summary_rows(result)
        assert rows[-1]["zone"] == "wafer"
        assert rows[-1]["dies"] == result.die_count
        table = render_table(rows, columns=CHIP_WAFER_SUMMARY_COLUMNS)
        assert "mean_eq23_yield" in table
        lines = wafer_map_lines(result.dice, result.die_yields())
        assert len(lines) >= 1
        assert sum(line.count("#") + line.count(".") for line in lines) == (
            result.die_count
        )

    def test_aggregates(self, chip, wafer):
        result = run_chip_wafer(wafer, chip, n_trials=16, seed_key=(23,))
        yields = result.die_yields()
        assert result.mean_chip_yield == pytest.approx(float(np.mean(yields)))
        assert result.expected_good_dice == pytest.approx(float(np.sum(yields)))
        assert 0.0 <= result.good_die_fraction <= 1.0
        for die in result.dice:
            assert die.radius_mm == pytest.approx(
                math.hypot(die.x_mm, die.y_mm)
            )
            assert die.cnt_density_per_um == pytest.approx(
                1.0e3 / die.mean_pitch_nm
            )


class TestValidation:
    def test_rejects_bad_arguments(self, chip, wafer):
        with pytest.raises(ValueError):
            run_chip_wafer(wafer, chip, n_trials=0)
        with pytest.raises(ValueError):
            run_chip_wafer(wafer, chip, n_trials=8, n_workers=0)
        with pytest.raises(ValueError):
            run_chip_wafer(wafer, chip, n_trials=8, good_die_threshold=2.0)
        with pytest.raises(ValueError):
            chip_per_die_loop(wafer, chip, n_trials=0)

    def test_empty_wafer(self, chip):
        empty = WaferMap(wafer_diameter_mm=100.0, die_size_mm=10.0, sites=())
        result = run_chip_wafer(empty, chip, n_trials=8)
        assert result.die_count == 0
        assert result.good_die_fraction == 0.0
        assert np.isnan(result.mean_chip_yield)
