"""Tests for the device-level Monte Carlo failure estimator."""

import numpy as np
import pytest

from repro.core.count_model import PoissonCountModel
from repro.core.failure import CNFETFailureModel
from repro.growth.isotropic import IsotropicGrowthModel
from repro.growth.pitch import ExponentialPitch
from repro.growth.types import CNTTypeModel
from repro.montecarlo.device_sim import DeviceMonteCarlo


@pytest.fixture
def type_model():
    return CNTTypeModel(1.0 / 3.0, 1.0, 0.3)


@pytest.fixture
def counts():
    return PoissonCountModel(4.0)


class TestDeviceMonteCarlo:
    def test_requires_a_count_source(self):
        with pytest.raises(ValueError):
            DeviceMonteCarlo()

    def test_conditional_matches_analytic(self, counts, type_model, rng):
        analytic = CNFETFailureModel.from_type_model(counts, type_model)
        mc = DeviceMonteCarlo(count_model=counts, type_model=type_model)
        width = 60.0
        result = mc.estimate_conditional(width, 30_000, rng)
        expected = analytic.failure_probability(width)
        assert result.failure_probability == pytest.approx(expected, rel=0.1)

    def test_naive_matches_analytic_for_moderate_pf(self, counts, type_model, rng):
        analytic = CNFETFailureModel.from_type_model(counts, type_model)
        mc = DeviceMonteCarlo(count_model=counts, type_model=type_model)
        width = 16.0  # pF ≈ 0.15, comfortably measurable with 0/1 sampling
        result = mc.estimate_naive(width, 30_000, rng)
        expected = analytic.failure_probability(width)
        assert result.failure_probability == pytest.approx(expected, abs=0.01)

    def test_conditional_has_smaller_error(self, counts, type_model, rng):
        mc = DeviceMonteCarlo(count_model=counts, type_model=type_model)
        width = 40.0
        naive = mc.estimate_naive(width, 10_000, rng)
        conditional = mc.estimate_conditional(width, 10_000, rng)
        assert conditional.standard_error <= naive.standard_error

    def test_estimate_dispatch(self, counts, type_model, rng):
        mc = DeviceMonteCarlo(count_model=counts, type_model=type_model)
        cond = mc.estimate(40.0, 1000, rng, conditional=True)
        naive = mc.estimate(40.0, 1000, rng, conditional=False)
        assert cond.n_samples == naive.n_samples == 1000

    def test_growth_model_source(self, type_model, rng):
        growth = IsotropicGrowthModel(
            pitch=ExponentialPitch(4.0), type_model=type_model
        )
        analytic = CNFETFailureModel.from_type_model(PoissonCountModel(4.0), type_model)
        mc = DeviceMonteCarlo(type_model=type_model, growth_model=growth)
        width = 40.0
        result = mc.estimate_conditional(width, 5_000, rng)
        assert result.failure_probability == pytest.approx(
            analytic.failure_probability(width), rel=0.25
        )

    def test_result_metadata(self, counts, type_model, rng):
        mc = DeviceMonteCarlo(count_model=counts, type_model=type_model)
        result = mc.estimate_conditional(80.0, 2_000, rng)
        assert result.width_nm == 80.0
        assert result.mean_cnt_count == pytest.approx(20.0, rel=0.1)
        assert result.mean_working_count < result.mean_cnt_count
        assert result.relative_error >= 0.0

    def test_invalid_width(self, counts, type_model, rng):
        mc = DeviceMonteCarlo(count_model=counts, type_model=type_model)
        with pytest.raises(ValueError):
            mc.estimate_conditional(0.0, 100, rng)
