"""Unit tests for the vectorized batched Monte Carlo engine."""

import numpy as np
import pytest

from repro.growth.pitch import DeterministicPitch, ExponentialPitch, GammaPitch
from repro.montecarlo.engine import (
    TrackBatch,
    chunk_sizes,
    count_in_windows,
    count_in_windows_flat,
    run_chunked,
    sample_track_batch,
    sample_track_counts,
    spawn_streams,
)


def _brute_force_counts(batch, weights, lo, hi):
    """Reference O(trials * windows * slots) window counter."""
    n_trials, n_windows = lo.shape
    out = np.zeros((n_trials, n_windows))
    for t in range(n_trials):
        for w in range(n_windows):
            in_window = (
                (batch.positions[t] >= lo[t, w])
                & (batch.positions[t] <= hi[t, w])
            )
            out[t, w] = weights[t][in_window].sum()
    return out


class TestSampleTrackBatch:
    def test_positions_sorted_and_valid_in_span(self, rng):
        batch = sample_track_batch(ExponentialPitch(4.0), 200.0, 64, rng)
        assert batch.positions.shape[0] == 64
        assert np.all(np.diff(batch.positions, axis=1) >= 0.0)
        in_span = batch.positions[batch.valid]
        assert np.all((in_span >= 0.0) & (in_span <= 200.0))
        # Every trial's gap budget cleared the span.
        assert np.all(batch.positions[:, -1] > 200.0)

    def test_poisson_count_statistics(self, rng):
        # Exponential gaps started at a uniform offset form a Poisson
        # process, so counts over W are Poisson(W / mean).
        batch = sample_track_batch(ExponentialPitch(4.0), 400.0, 4_000, rng)
        counts = batch.counts()
        assert counts.mean() == pytest.approx(100.0, rel=0.05)
        assert counts.var() == pytest.approx(100.0, rel=0.15)

    def test_deterministic_pitch_exact_counts(self, rng):
        # With a perfectly regular 5 nm array and a start offset in
        # (-5, 0], exactly ceil(span / pitch) tracks land in [0, span]
        # unless a track hits the boundary (measure zero for the uniform
        # offset).
        batch = sample_track_batch(DeterministicPitch(5.0), 102.5, 256, rng)
        counts = batch.counts()
        assert np.all((counts == 20) | (counts == 21))

    def test_invalid_arguments(self, rng):
        with pytest.raises(ValueError):
            sample_track_batch(ExponentialPitch(4.0), 100.0, 0, rng)
        with pytest.raises(ValueError):
            sample_track_batch(ExponentialPitch(4.0), -1.0, 4, rng)


class TestSampleTrackCounts:
    def test_matches_batch_counts_distribution(self, rng):
        counts = sample_track_counts(ExponentialPitch(4.0), 200.0, 5_000, rng)
        assert counts.shape == (5_000,)
        assert counts.mean() == pytest.approx(50.0, rel=0.05)

    def test_chunked_execution_covers_all_trials(self, rng):
        # Force many internal chunks and check every trial is filled.
        counts = sample_track_counts(
            GammaPitch(4.0, 0.5), 100.0, 1_000, rng, batch_elements=64
        )
        assert counts.shape == (1_000,)
        assert np.all(counts >= 0)
        assert counts.mean() == pytest.approx(25.0, rel=0.1)


class TestCountInWindows:
    def test_matches_brute_force_shared_windows(self, rng):
        batch = sample_track_batch(ExponentialPitch(6.0), 300.0, 32, rng)
        weights = (rng.random(batch.positions.shape) < 0.7) & batch.valid
        lo = np.sort(rng.random(12) * 250.0)
        hi = lo + rng.random(12) * 50.0
        counts = count_in_windows(batch, weights, lo, hi)
        lo2 = np.broadcast_to(lo, (32, 12))
        hi2 = np.broadcast_to(hi, (32, 12))
        np.testing.assert_array_equal(
            counts, _brute_force_counts(batch, weights, lo2, hi2)
        )

    def test_matches_brute_force_per_trial_windows(self, rng):
        batch = sample_track_batch(ExponentialPitch(6.0), 300.0, 16, rng)
        weights = batch.valid.astype(float)
        lo = rng.random((16, 8)) * 250.0
        hi = lo + rng.random((16, 8)) * 40.0
        counts = count_in_windows(batch, weights, lo, hi)
        np.testing.assert_array_equal(
            counts, _brute_force_counts(batch, weights, lo, hi)
        )

    def test_flat_queries_with_trial_index(self, rng):
        batch = sample_track_batch(ExponentialPitch(5.0), 200.0, 8, rng)
        weights = batch.valid
        # Interrogate only trials 2 and 5, twice each, out of order.
        trial_index = np.array([5, 2, 5, 2])
        lo = np.array([0.0, 10.0, 50.0, 0.0])
        hi = np.array([200.0, 60.0, 150.0, 200.0])
        counts = count_in_windows_flat(
            batch.positions, weights, batch.span_nm, lo, hi, trial_index
        )
        assert counts[0] == batch.counts()[5]
        assert counts[3] == batch.counts()[2]

    def test_shape_mismatch_rejected(self, rng):
        batch = sample_track_batch(ExponentialPitch(5.0), 100.0, 4, rng)
        with pytest.raises(ValueError):
            count_in_windows(
                batch,
                batch.valid,
                np.zeros((3, 2)),
                np.ones((3, 2)),
            )


class TestStreamsAndChunks:
    def test_spawn_streams_deterministic(self):
        a = spawn_streams(np.random.default_rng(42), 4)
        b = spawn_streams(np.random.default_rng(42), 4)
        for ga, gb in zip(a, b):
            np.testing.assert_array_equal(ga.random(8), gb.random(8))
        with pytest.raises(ValueError):
            spawn_streams(np.random.default_rng(0), 0)

    def test_spawn_streams_independent(self):
        streams = spawn_streams(np.random.default_rng(42), 2)
        assert not np.allclose(streams[0].random(8), streams[1].random(8))

    def test_chunk_sizes(self):
        assert chunk_sizes(10, 4) == [4, 4, 2]
        assert chunk_sizes(8, 4) == [4, 4]
        assert chunk_sizes(3, 100) == [3]
        with pytest.raises(ValueError):
            chunk_sizes(0, 4)
        with pytest.raises(ValueError):
            chunk_sizes(4, 0)


def _sum_of_stream(payload, n_chunk, rng):
    """Picklable worker: per-chunk draws scaled by the payload."""
    return (payload * rng.random(n_chunk),)


class TestRunChunked:
    def test_serial_matches_parallel(self):
        serial = run_chunked(
            _sum_of_stream, 2.0, 50, np.random.default_rng(7),
            trial_chunk=13, n_workers=1,
        )
        parallel = run_chunked(
            _sum_of_stream, 2.0, 50, np.random.default_rng(7),
            trial_chunk=13, n_workers=2,
        )
        assert len(serial) == len(parallel) == 4
        for (a,), (b,) in zip(serial, parallel):
            np.testing.assert_array_equal(a, b)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            run_chunked(
                _sum_of_stream, 1.0, 10, np.random.default_rng(0),
                trial_chunk=5, n_workers=0,
            )
