"""Statistical equivalence of the vectorized engine and the scalar oracles.

The batched engine consumes the RNG stream differently from the per-trial
scalar simulators, so results are not bitwise identical — but both draw
from the same distribution.  These tests pin that down quantitatively at
every level (device, row, chip) with fixed seeds and n-sigma tolerances,
and verify that multi-worker execution is *bitwise* identical to serial
execution (the chunk streams do not depend on the worker count).
"""

import math

import numpy as np
import pytest

from repro.cells.nangate45 import build_nangate45_library
from repro.core.correlation import LayoutScenario
from repro.core.count_model import PoissonCountModel
from repro.core.failure import CNFETFailureModel
from repro.growth.pitch import ExponentialPitch, GammaPitch
from repro.growth.types import CNTTypeModel
from repro.montecarlo.chip_sim import ChipMonteCarlo
from repro.montecarlo.device_sim import DeviceMonteCarlo
from repro.montecarlo.experiments import compare_chip_engines
from repro.montecarlo.row_sim import RowMonteCarlo, RowScenarioConfig
from repro.netlist.design import Design
from repro.netlist.placement import RowPlacement

N_SIGMA = 5.0


@pytest.fixture(scope="module")
def measurable_type_model():
    """Sparse-growth corner where failures are frequent enough to measure."""
    return CNTTypeModel(1.0 / 3.0, 1.0, 0.3)


def _assert_within_sigma(a, b, se, n_sigma=N_SIGMA):
    assert abs(a - b) <= n_sigma * se, (
        f"|{a} - {b}| = {abs(a - b)} exceeds {n_sigma} sigma = {n_sigma * se}"
    )


class TestDeviceLevelEquivalence:
    def test_engine_counts_match_analytic_failure_probability(
        self, measurable_type_model, rng
    ):
        # Exponential gaps make the renewal count exactly Poisson, so the
        # engine-sampled estimate must agree with the analytical Eq. 2.2
        # value computed from the Poisson count model.
        pitch = ExponentialPitch(8.0)
        count_model = PoissonCountModel(mean_pitch_nm=8.0)
        failure_model = CNFETFailureModel.from_type_model(
            count_model, measurable_type_model
        )
        analytic = failure_model.failure_probability(40.0)

        mc = DeviceMonteCarlo(pitch=pitch, type_model=measurable_type_model)
        result = mc.estimate(40.0, 20_000, rng)
        assert result.standard_error > 0.0
        _assert_within_sigma(
            result.failure_probability, analytic, result.standard_error
        )

    def test_engine_counts_match_count_model_sampling(
        self, measurable_type_model, rng
    ):
        # The naive 0/1 estimator must agree between engine-sampled counts
        # and analytically sampled Poisson counts.
        engine_mc = DeviceMonteCarlo(
            pitch=ExponentialPitch(12.0), type_model=measurable_type_model
        )
        model_mc = DeviceMonteCarlo(
            count_model=PoissonCountModel(mean_pitch_nm=12.0),
            type_model=measurable_type_model,
        )
        a = engine_mc.estimate_naive(36.0, 15_000, rng)
        b = model_mc.estimate_naive(36.0, 15_000, rng)
        se = math.hypot(a.standard_error, b.standard_error)
        _assert_within_sigma(a.failure_probability, b.failure_probability, se)


class TestRowLevelEquivalence:
    @pytest.mark.parametrize("scenario", list(LayoutScenario))
    def test_vectorized_matches_scalar(self, scenario, measurable_type_model):
        simulator = RowMonteCarlo(
            pitch=ExponentialPitch(4.0), type_model=measurable_type_model
        )
        config = RowScenarioConfig(device_width_nm=24.0, devices_per_segment=15)
        scalar = simulator.estimate(
            scenario, config, 3_000, np.random.default_rng(101), vectorized=False
        )
        vectorized = simulator.estimate(
            scenario, config, 3_000, np.random.default_rng(202), vectorized=True
        )
        se = math.hypot(scalar.standard_error, vectorized.standard_error)
        _assert_within_sigma(
            scalar.row_failure_probability,
            vectorized.row_failure_probability,
            se,
        )

    def test_vectorized_matches_scalar_gamma_pitch(self, measurable_type_model):
        # A non-exponential family exercises the generic renewal path.
        simulator = RowMonteCarlo(
            pitch=GammaPitch(4.0, 0.5), type_model=measurable_type_model
        )
        config = RowScenarioConfig(device_width_nm=20.0, devices_per_segment=10)
        scalar = simulator.estimate(
            LayoutScenario.DIRECTIONAL_NON_ALIGNED,
            config, 2_000, np.random.default_rng(31), vectorized=False,
        )
        vectorized = simulator.estimate(
            LayoutScenario.DIRECTIONAL_NON_ALIGNED,
            config, 2_000, np.random.default_rng(32), vectorized=True,
        )
        se = math.hypot(scalar.standard_error, vectorized.standard_error)
        _assert_within_sigma(
            scalar.row_failure_probability,
            vectorized.row_failure_probability,
            se,
        )


@pytest.fixture(scope="module")
def block_placement():
    library = build_nangate45_library()
    design = Design("equiv_block", library)
    for i in range(90):
        design.add(f"u{i}", "INV_X1" if i % 2 == 0 else "NAND2_X1")
    return RowPlacement(design, row_width_nm=20_000.0)


class TestChipLevelEquivalence:
    def test_vectorized_matches_scalar(self, block_placement, measurable_type_model):
        record = compare_chip_engines(
            block_placement,
            pitch=ExponentialPitch(20.0),
            type_model=measurable_type_model,
            n_trials=40,
            seed=2010,
        )
        assert record.standard_error > 0.0
        assert record.agrees(n_sigma=N_SIGMA, rtol=0.1)

    def test_multi_worker_bitwise_identical(
        self, block_placement, measurable_type_model
    ):
        simulator = ChipMonteCarlo(
            block_placement,
            pitch=ExponentialPitch(20.0),
            type_model=measurable_type_model,
        )
        serial = simulator.run(
            24, np.random.default_rng(9), n_workers=1, trial_chunk=7
        )
        parallel = simulator.run(
            24, np.random.default_rng(9), n_workers=2, trial_chunk=7
        )
        assert serial == parallel

    def test_chunking_invariant(self, block_placement, measurable_type_model):
        # The same seed with different chunk sizes must stay within the
        # Monte Carlo error (chunking changes stream layout, not the law).
        simulator = ChipMonteCarlo(
            block_placement,
            pitch=ExponentialPitch(20.0),
            type_model=measurable_type_model,
        )
        a = simulator.run(40, np.random.default_rng(5), trial_chunk=5)
        b = simulator.run(40, np.random.default_rng(5), trial_chunk=40)
        se = math.hypot(a.std_failing_devices, b.std_failing_devices) / math.sqrt(40)
        _assert_within_sigma(a.mean_failing_devices, b.mean_failing_devices, se)

    def test_seed_reproducibility(self, block_placement, measurable_type_model):
        simulator = ChipMonteCarlo(
            block_placement,
            pitch=ExponentialPitch(20.0),
            type_model=measurable_type_model,
        )
        a = simulator.run(12, np.random.default_rng(77))
        b = simulator.run(12, np.random.default_rng(77))
        assert a == b
