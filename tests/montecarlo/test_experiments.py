"""Tests for the packaged analytic-versus-Monte-Carlo experiments."""

import pytest

from repro.core.correlation import LayoutScenario
from repro.montecarlo.experiments import (
    ComparisonRecord,
    compare_device_failure,
    compare_row_scenarios,
    relaxation_factor_comparison,
)


class TestComparisonRecord:
    def test_agreement_by_relative_tolerance(self):
        record = ComparisonRecord("x", analytic=1.0, monte_carlo=1.05, standard_error=0.0)
        assert record.agrees(rtol=0.1)
        assert not record.agrees(rtol=0.01)

    def test_agreement_by_sigma(self):
        record = ComparisonRecord("x", analytic=1.0, monte_carlo=1.5, standard_error=0.2)
        assert record.within_sigma == pytest.approx(2.5)
        assert record.agrees(n_sigma=3.0, rtol=0.0)
        assert not record.agrees(n_sigma=2.0, rtol=0.0)

    def test_zero_error_disagreement(self):
        record = ComparisonRecord("x", analytic=1.0, monte_carlo=2.0, standard_error=0.0)
        assert record.within_sigma == float("inf")


class TestDeviceComparison:
    def test_device_failure_agrees(self):
        record = compare_device_failure(width_nm=48.0, n_samples=30_000, seed=3)
        assert record.agrees(n_sigma=4.0, rtol=0.15), (
            record.analytic, record.monte_carlo, record.standard_error
        )

    def test_labels_include_width(self):
        record = compare_device_failure(width_nm=48.0, n_samples=1_000, seed=3)
        assert "48" in record.label


class TestRowComparison:
    def test_closed_form_scenarios_agree(self):
        records = compare_row_scenarios(
            device_width_nm=24.0, devices_per_segment=15, n_samples=4_000, seed=5
        )
        assert set(records) == set(LayoutScenario)
        for scenario in (
            LayoutScenario.UNCORRELATED_GROWTH,
            LayoutScenario.DIRECTIONAL_ALIGNED,
        ):
            record = records[scenario]
            assert record.agrees(n_sigma=5.0, rtol=0.35), (
                scenario, record.analytic, record.monte_carlo, record.standard_error
            )

    def test_non_aligned_between_extremes(self):
        # The non-aligned case is model-dependent (the paper itself resorts to
        # numerical methods); both the closed-form shared-core model and the
        # random-offset Monte Carlo must land between the two extremes, but
        # they need not coincide.
        records = compare_row_scenarios(
            device_width_nm=24.0, devices_per_segment=15, n_samples=4_000, seed=5
        )
        aligned = records[LayoutScenario.DIRECTIONAL_ALIGNED]
        uncorrelated = records[LayoutScenario.UNCORRELATED_GROWTH]
        middle = records[LayoutScenario.DIRECTIONAL_NON_ALIGNED]
        assert aligned.analytic <= middle.analytic <= uncorrelated.analytic
        assert (
            aligned.monte_carlo * 0.9
            <= middle.monte_carlo
            <= uncorrelated.monte_carlo * 1.1
        )

    def test_relaxation_factor_comparison(self):
        record = relaxation_factor_comparison(
            device_width_nm=24.0, devices_per_segment=15, n_samples=4_000, seed=7
        )
        # Both numbers should sit between 1 and the segment size.
        assert 1.0 < record.analytic <= 15.0
        assert 1.0 < record.monte_carlo <= 15.0
        assert record.agrees(n_sigma=5.0, rtol=0.4)
