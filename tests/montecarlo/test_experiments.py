"""Tests for the packaged analytic-versus-Monte-Carlo experiments."""

import numpy as np
import pytest

from repro.core.correlation import LayoutScenario
from repro.montecarlo.experiments import (
    ComparisonRecord,
    compare_device_failure,
    compare_row_scenarios,
    relaxation_factor_comparison,
)


class TestComparisonRecord:
    def test_agreement_by_relative_tolerance(self):
        record = ComparisonRecord("x", analytic=1.0, monte_carlo=1.05, standard_error=0.0)
        assert record.agrees(rtol=0.1)
        assert not record.agrees(rtol=0.01)

    def test_agreement_by_sigma(self):
        record = ComparisonRecord("x", analytic=1.0, monte_carlo=1.5, standard_error=0.2)
        assert record.within_sigma == pytest.approx(2.5)
        assert record.agrees(n_sigma=3.0, rtol=0.0)
        assert not record.agrees(n_sigma=2.0, rtol=0.0)

    def test_zero_error_disagreement(self):
        record = ComparisonRecord("x", analytic=1.0, monte_carlo=2.0, standard_error=0.0)
        assert record.within_sigma == float("inf")


class TestDeviceComparison:
    def test_device_failure_agrees(self):
        record = compare_device_failure(width_nm=48.0, n_samples=30_000, seed=3)
        assert record.agrees(n_sigma=4.0, rtol=0.15), (
            record.analytic, record.monte_carlo, record.standard_error
        )

    def test_labels_include_width(self):
        record = compare_device_failure(width_nm=48.0, n_samples=1_000, seed=3)
        assert "48" in record.label


class TestRowComparison:
    def test_closed_form_scenarios_agree(self):
        records = compare_row_scenarios(
            device_width_nm=24.0, devices_per_segment=15, n_samples=4_000, seed=5
        )
        assert set(records) == set(LayoutScenario)
        for scenario in (
            LayoutScenario.UNCORRELATED_GROWTH,
            LayoutScenario.DIRECTIONAL_ALIGNED,
        ):
            record = records[scenario]
            assert record.agrees(n_sigma=5.0, rtol=0.35), (
                scenario, record.analytic, record.monte_carlo, record.standard_error
            )

    def test_non_aligned_between_extremes(self):
        # The non-aligned case is model-dependent (the paper itself resorts to
        # numerical methods); both the closed-form shared-core model and the
        # random-offset Monte Carlo must land between the two extremes, but
        # they need not coincide.
        records = compare_row_scenarios(
            device_width_nm=24.0, devices_per_segment=15, n_samples=4_000, seed=5
        )
        aligned = records[LayoutScenario.DIRECTIONAL_ALIGNED]
        uncorrelated = records[LayoutScenario.UNCORRELATED_GROWTH]
        middle = records[LayoutScenario.DIRECTIONAL_NON_ALIGNED]
        assert aligned.analytic <= middle.analytic <= uncorrelated.analytic
        assert (
            aligned.monte_carlo * 0.9
            <= middle.monte_carlo
            <= uncorrelated.monte_carlo * 1.1
        )

    def test_relaxation_factor_comparison(self):
        record = relaxation_factor_comparison(
            device_width_nm=24.0, devices_per_segment=15, n_samples=4_000, seed=7
        )
        # Both numbers should sit between 1 and the segment size.
        assert 1.0 < record.analytic <= 15.0
        assert 1.0 < record.monte_carlo <= 15.0
        assert record.agrees(n_sigma=5.0, rtol=0.4)


class TestExternalRNGPlumbing:
    """The comparison experiments must honour an externally supplied
    Generator so all estimators can share one family of spawn keys."""

    def test_device_comparison_reproducible_from_shared_rng(self):
        a = compare_device_failure(
            width_nm=40.0, n_samples=2_000, rng=np.random.default_rng(77)
        )
        b = compare_device_failure(
            width_nm=40.0, n_samples=2_000, rng=np.random.default_rng(77)
        )
        assert a.monte_carlo == b.monte_carlo
        # And the rng takes precedence over the (different) default seed.
        c = compare_device_failure(width_nm=40.0, n_samples=2_000, seed=7)
        assert a.monte_carlo != c.monte_carlo

    def test_row_comparison_accepts_rng(self):
        a = compare_row_scenarios(
            device_width_nm=24.0, devices_per_segment=5, n_samples=500,
            rng=np.random.default_rng(78),
        )
        b = compare_row_scenarios(
            device_width_nm=24.0, devices_per_segment=5, n_samples=500,
            rng=np.random.default_rng(78),
        )
        for scenario in LayoutScenario:
            assert a[scenario].monte_carlo == b[scenario].monte_carlo

    def test_chip_engines_spawn_from_shared_rng(self, nangate45):
        from repro.montecarlo.experiments import compare_chip_engines
        from repro.netlist.design import Design
        from repro.netlist.placement import RowPlacement

        design = Design("rng_block", nangate45)
        for i in range(12):
            design.add(f"u{i}", "INV_X1")
        placement = RowPlacement(design, row_width_nm=8_000.0)
        a = compare_chip_engines(
            placement, n_trials=5, rng=np.random.default_rng(79)
        )
        b = compare_chip_engines(
            placement, n_trials=5, rng=np.random.default_rng(79)
        )
        assert a.monte_carlo == b.monte_carlo
        assert a.analytic == b.analytic

    def test_compare_libraries_accepts_rng(self, nangate45):
        from repro.growth.pitch import ExponentialPitch
        from repro.growth.types import CNTTypeModel
        from repro.montecarlo.chip_sim import compare_libraries
        from repro.netlist.design import Design
        from repro.netlist.placement import RowPlacement

        design = Design("lib_block", nangate45)
        for i in range(10):
            design.add(f"u{i}", "NAND2_X1")
        placement = RowPlacement(design, row_width_nm=8_000.0)
        # Sparse growth makes failures frequent enough that distinct RNG
        # streams are visible in the statistics.
        kwargs = dict(
            pitch=ExponentialPitch(100.0),
            type_model=CNTTypeModel(1.0 / 3.0, 1.0, 0.3),
            n_trials=8,
        )
        a = compare_libraries(
            placement, placement, rng=np.random.default_rng(80), **kwargs
        )
        b = compare_libraries(
            placement, placement, rng=np.random.default_rng(80), **kwargs
        )
        assert a["original"] == b["original"]
        assert a["aligned"] == b["aligned"]
        # Original and aligned consume distinct child streams.
        assert a["original"] != a["aligned"]
