"""Seeded golden-value regression against the frozen engine fixture.

``tests/fixtures/golden_engine_values.json`` freezes the exact outputs of
the pre-backend-dispatch engine (PR 1/2 numerics) for a small chip run, a
tilted chip-tail run, and a device tail estimate, all under pinned seeds.
Any change to the engine's numerics — a reordered reduction, a dtype
promotion, a different RNG consumption pattern — shifts these values and
shows up here as a visible diff instead of silent statistical drift.

The tests pin the backend to NumPy/float64 explicitly, so they stay
meaningful when the suite runs under ``REPRO_BACKEND``/``REPRO_DTYPE``
overrides (the CI dtype matrix).  Count-derived statistics are compared
exactly; smooth functionals allow 1e-9 relative slack for cross-platform
libm differences in ``exp``/``log``.
"""

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.backend import get_backend
from repro.cells.nangate45 import build_nangate45_library
from repro.growth.pitch import ExponentialPitch, GammaPitch
from repro.growth.types import CNTTypeModel
from repro.montecarlo.chip_sim import ChipMonteCarlo
from repro.montecarlo.rare_event import estimate_device_failure_tilted
from repro.netlist.openrisc import build_openrisc_like_design
from repro.netlist.placement import RowPlacement

FIXTURE = Path(__file__).resolve().parent.parent / "fixtures" / "golden_engine_values.json"

REL = 1e-9


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module")
def reference_backend():
    return get_backend("numpy", dtype="float64")


@pytest.fixture(scope="module")
def simulator(golden, reference_backend):
    library = build_nangate45_library()
    design = build_openrisc_like_design(
        library, scale=golden["chip_naive"]["scale"], seed=2010
    )
    placement = RowPlacement(design, row_width_nm=40_000.0)
    return ChipMonteCarlo(
        placement,
        pitch=ExponentialPitch(20.0),
        type_model=CNTTypeModel(1.0 / 3.0, 1.0, 0.3),
        backend=reference_backend,
    )


class TestGoldenChipNaive:
    def test_exact_failure_counts(self, golden, simulator):
        g = golden["chip_naive"]
        result = simulator.run(
            g["n_trials"], np.random.default_rng(g["seed"])
        )
        assert result.device_count == g["device_count"]
        assert result.small_device_count == g["small_device_count"]
        # Counts and their moments are exact rationals of integer counts:
        # any numerics change that moves a single window decision flips them.
        assert result.mean_failing_devices == g["mean_failing_devices"]
        assert result.mean_failing_rows == g["mean_failing_rows"]
        assert result.chip_yield == g["chip_yield"]
        assert result.std_failing_devices == pytest.approx(
            g["std_failing_devices"], rel=REL
        )
        assert result.device_failure_rate == pytest.approx(
            g["device_failure_rate"], rel=REL
        )


class TestGoldenChipShorts:
    def test_exact_failure_counts_with_shorts(self, golden, reference_backend):
        # Imperfect metallic removal (eta = 0.95) activates the joint
        # opens+shorts engine path; the frozen counts pin its RNG
        # consumption (the shared single-uniform partition) and the
        # short-count window reduction.
        g = golden["chip_shorts"]
        library = build_nangate45_library()
        design = build_openrisc_like_design(library, scale=g["scale"], seed=2010)
        placement = RowPlacement(design, row_width_nm=40_000.0)
        simulator = ChipMonteCarlo(
            placement,
            pitch=ExponentialPitch(20.0),
            type_model=CNTTypeModel(
                g["metallic_fraction"],
                g["removal_prob_metallic"],
                g["removal_prob_semiconducting"],
            ),
            backend=reference_backend,
        )
        result = simulator.run(
            g["n_trials"], np.random.default_rng(g["seed"])
        )
        assert result.device_count == g["device_count"]
        assert result.small_device_count == g["small_device_count"]
        assert result.mean_failing_devices == g["mean_failing_devices"]
        assert result.mean_failing_rows == g["mean_failing_rows"]
        assert result.chip_yield == g["chip_yield"]
        assert result.std_failing_devices == pytest.approx(
            g["std_failing_devices"], rel=REL
        )
        assert result.device_failure_rate == pytest.approx(
            g["device_failure_rate"], rel=REL
        )


class TestGoldenChipTilted:
    def test_tilted_tail_estimate(self, golden, simulator):
        g = golden["chip_tilted"]
        result = simulator.run(
            g["n_trials"], np.random.default_rng(g["seed"]), sampler="tilted"
        )
        assert result.tilt_factor == pytest.approx(g["tilt_factor"], rel=REL)
        assert result.chip_yield == pytest.approx(g["chip_yield"], rel=REL)
        assert result.yield_standard_error == pytest.approx(
            g["yield_standard_error"], rel=REL
        )
        assert result.expected_failing_devices == pytest.approx(
            g["expected_failing_devices"], rel=REL
        )
        assert result.expected_failing_devices_se == pytest.approx(
            g["expected_failing_devices_se"], rel=REL
        )
        assert result.effective_sample_size == pytest.approx(
            g["effective_sample_size"], rel=REL
        )


class TestGoldenDeviceTilted:
    def test_tilted_device_estimate(self, golden, reference_backend):
        g = golden["device_tilted"]
        spec = g["pitch"]
        assert spec["family"] == "gamma"
        estimate = estimate_device_failure_tilted(
            GammaPitch(spec["mean_nm"], spec["cv"]),
            g["per_cnt_failure"],
            g["width_nm"],
            g["n_samples"],
            np.random.default_rng(g["seed"]),
            backend=reference_backend,
        )
        assert estimate.estimate == pytest.approx(g["estimate"], rel=REL)
        assert estimate.standard_error == pytest.approx(
            g["standard_error"], rel=REL
        )
        assert estimate.effective_sample_size == pytest.approx(
            g["effective_sample_size"], rel=REL
        )
        assert math.isfinite(estimate.relative_error)
