"""Statistical-equivalence suite for the rare-event sampling layer.

The tilted importance sampler and the multilevel-splitting fallback must
reproduce the naive engine's answers wherever the naive engine can still
measure them (moderate failure probabilities, 1e-3 .. 1e-4), and their
weighted-ESS / error diagnostics must behave sanely.  Fixed seeds keep the
n-sigma assertions deterministic.
"""

import math

import numpy as np
import pytest

from repro.core.correlation import LayoutScenario
from repro.growth.pitch import (
    DeterministicPitch,
    ExponentialPitch,
    GammaPitch,
    TruncatedNormalPitch,
)
from repro.growth.types import CNTTypeModel
from repro.montecarlo.chip_sim import ChipMonteCarlo, ChipTailResult
from repro.montecarlo.device_sim import DeviceMonteCarlo
from repro.montecarlo.engine import sample_track_counts
from repro.montecarlo.rare_event import (
    AlignedRowModel,
    NonAlignedRowModel,
    UncorrelatedRowModel,
    WeightedEstimate,
    default_tilt_factor,
    estimate_device_failure_tilted,
    max_stable_tilt,
    multilevel_splitting,
    weighted_estimate,
)
from repro.montecarlo.row_sim import RowMonteCarlo, RowScenarioConfig
from repro.netlist.design import Design
from repro.netlist.placement import RowPlacement

N_SIGMA = 5.0

#: The paper's pessimistic processing corner (pm = 33 %, pRs = 30 %).
PF = 1.0 / 3.0 + (2.0 / 3.0) * 0.3


@pytest.fixture(scope="module")
def sparse_type_model():
    return CNTTypeModel(1.0 / 3.0, 1.0, 0.3)


def _assert_within_sigma(a, b, se, n_sigma=N_SIGMA):
    assert abs(a - b) <= n_sigma * se, (
        f"|{a} - {b}| = {abs(a - b)} exceeds {n_sigma} sigma = {n_sigma * se}"
    )


class TestWeightedEstimateAPI:
    def test_summary_statistics(self):
        summary = weighted_estimate(np.array([1.0, 1.0, 1.0, 1.0]))
        assert summary.estimate == 1.0
        assert summary.standard_error == 0.0
        assert summary.effective_sample_size == pytest.approx(4.0)
        assert summary.n_samples == 4

    def test_ess_penalises_weight_concentration(self):
        concentrated = weighted_estimate(np.array([100.0, 0.0, 0.0, 0.0]))
        assert concentrated.effective_sample_size == pytest.approx(1.0)

    def test_relative_error_of_zero_estimate_is_nan(self):
        summary = weighted_estimate(np.zeros(8))
        assert math.isnan(summary.relative_error)

    def test_empty_contributions_rejected(self):
        with pytest.raises(ValueError):
            weighted_estimate(np.array([]))

    def test_variance_per_sample_roundtrip(self):
        rng = np.random.default_rng(3)
        v = rng.random(1000)
        summary = weighted_estimate(v)
        assert summary.variance_per_sample == pytest.approx(
            float(np.var(v, ddof=1)), rel=1e-9
        )


class TestTiltSelection:
    def test_exponential_default_is_inverse_pf(self):
        pitch = ExponentialPitch(4.0)
        assert default_tilt_factor(pitch, 200.0, PF) == pytest.approx(
            1.0 / PF, rel=1e-6
        )

    def test_gamma_default_is_pf_root(self):
        # The cancellation condition k·ln β = -ln pf gives β = pf^(-1/k).
        pitch = GammaPitch(4.0, 0.5)
        expected = PF ** (-pitch.cv ** 2)
        assert default_tilt_factor(pitch, 200.0, PF) == pytest.approx(
            expected, rel=1e-6
        )

    def test_zero_pf_uses_mean_count_cap(self):
        pitch = ExponentialPitch(4.0)
        assert default_tilt_factor(pitch, 80.0, 0.0) == pytest.approx(20.0)

    def test_cap_binds_for_narrow_spans(self):
        pitch = ExponentialPitch(4.0)
        # span of one mean pitch: cap = 1 → no tilt.
        assert default_tilt_factor(pitch, 4.0, PF) == 1.0

    def test_max_stable_tilt_monotone_in_span(self):
        pitch = ExponentialPitch(4.0)
        short = max_stable_tilt(pitch, 50.0)
        long = max_stable_tilt(pitch, 5000.0)
        assert short > long > 1.0

    def test_deterministic_pitch_has_no_tilt(self):
        with pytest.raises(NotImplementedError):
            DeterministicPitch(4.0).exponential_tilt(2.0)
        assert max_stable_tilt(DeterministicPitch(4.0), 100.0) == 1.0


class TestDeviceTiltedEquivalence:
    """Tilted estimates must match the naive engine at moderate pF."""

    @pytest.mark.parametrize(
        "pitch",
        [ExponentialPitch(4.0), GammaPitch(4.0, 0.5), TruncatedNormalPitch(4.0, 2.0)],
        ids=["exponential", "gamma", "truncnorm"],
    )
    def test_matches_naive_engine(self, pitch):
        width = 40.0
        counts = sample_track_counts(
            pitch, width, 120_000, np.random.default_rng(21)
        )
        values = np.power(PF, counts.astype(float))
        naive = float(np.mean(values))
        naive_se = float(np.std(values, ddof=1) / math.sqrt(values.size))

        tilted = estimate_device_failure_tilted(
            pitch, PF, width, 20_000, np.random.default_rng(22)
        )
        _assert_within_sigma(
            tilted.estimate, naive, math.hypot(naive_se, tilted.standard_error)
        )

    def test_tilted_ess_fraction_is_healthy(self):
        # The default tilt cancels the count dependence: the contribution
        # ESS should stay a sizable fraction of the trial count even nine
        # decades into the tail.
        pitch = ExponentialPitch(4.0)
        width = 4.0 * math.log(1e9) / (1.0 - PF)  # analytic pF = 1e-9
        result = estimate_device_failure_tilted(
            pitch, PF, width, 10_000, np.random.default_rng(23)
        )
        assert isinstance(result, WeightedEstimate)
        assert 0.25 * result.n_samples <= result.effective_sample_size
        assert result.effective_sample_size <= result.n_samples + 1e-6
        assert result.relative_error < 0.02

    def test_device_monte_carlo_sampler_dispatch(self, sparse_type_model):
        mc = DeviceMonteCarlo(
            pitch=ExponentialPitch(8.0), type_model=sparse_type_model
        )
        naive = mc.estimate(40.0, 30_000, np.random.default_rng(31))
        tilted = mc.estimate(
            40.0, 30_000, np.random.default_rng(32), sampler="tilted"
        )
        _assert_within_sigma(
            tilted.failure_probability,
            naive.failure_probability,
            math.hypot(naive.standard_error, tilted.standard_error),
        )

    def test_tilted_requires_pitch_source(self, sparse_type_model, poisson_counts):
        mc = DeviceMonteCarlo(
            count_model=poisson_counts, type_model=sparse_type_model
        )
        with pytest.raises(ValueError, match="pitch"):
            mc.estimate(40.0, 100, np.random.default_rng(0), sampler="tilted")

    def test_unknown_sampler_rejected(self, sparse_type_model):
        mc = DeviceMonteCarlo(
            pitch=ExponentialPitch(8.0), type_model=sparse_type_model
        )
        with pytest.raises(ValueError, match="sampler"):
            mc.estimate(40.0, 100, np.random.default_rng(0), sampler="magic")


class TestRowTiltedEquivalence:
    @pytest.mark.parametrize(
        "scenario",
        [LayoutScenario.DIRECTIONAL_ALIGNED, LayoutScenario.UNCORRELATED_GROWTH],
        ids=["aligned", "uncorrelated"],
    )
    def test_matches_naive_sampler(self, scenario, sparse_type_model):
        simulator = RowMonteCarlo(
            pitch=ExponentialPitch(4.0), type_model=sparse_type_model
        )
        config = RowScenarioConfig(device_width_nm=24.0, devices_per_segment=15)
        naive = simulator.estimate(
            scenario, config, 20_000, np.random.default_rng(41)
        )
        tilted = simulator.estimate(
            scenario, config, 20_000, np.random.default_rng(42), sampler="tilted"
        )
        assert tilted.sampler == "tilted"
        assert tilted.effective_sample_size is not None
        se = math.hypot(naive.standard_error, tilted.standard_error)
        _assert_within_sigma(
            naive.row_failure_probability, tilted.row_failure_probability, se
        )
        # The tilted estimator must not be *worse* than naive sampling at
        # equal trial counts.
        assert tilted.standard_error <= naive.standard_error

    def test_non_aligned_tilt_refused_with_guidance(self, sparse_type_model):
        simulator = RowMonteCarlo(
            pitch=ExponentialPitch(4.0), type_model=sparse_type_model
        )
        config = RowScenarioConfig(device_width_nm=24.0, devices_per_segment=5)
        with pytest.raises(ValueError, match="splitting"):
            simulator.estimate(
                LayoutScenario.DIRECTIONAL_NON_ALIGNED,
                config, 100, np.random.default_rng(0), sampler="tilted",
            )

    def test_unknown_sampler_rejected(self, sparse_type_model):
        simulator = RowMonteCarlo(
            pitch=ExponentialPitch(4.0), type_model=sparse_type_model
        )
        config = RowScenarioConfig(device_width_nm=24.0, devices_per_segment=5)
        with pytest.raises(ValueError, match="sampler"):
            simulator.estimate(
                LayoutScenario.DIRECTIONAL_ALIGNED,
                config, 100, np.random.default_rng(0), sampler="nope",
            )


class TestSplittingEquivalence:
    def test_non_aligned_matches_naive(self, sparse_type_model):
        pitch = ExponentialPitch(4.0)
        config = RowScenarioConfig(
            device_width_nm=48.0, devices_per_segment=15,
            cell_height_window_nm=400.0,
        )
        simulator = RowMonteCarlo(pitch=pitch, type_model=sparse_type_model)
        naive = simulator.estimate(
            LayoutScenario.DIRECTIONAL_NON_ALIGNED,
            config, 60_000, np.random.default_rng(51),
        )
        split = simulator.estimate(
            LayoutScenario.DIRECTIONAL_NON_ALIGNED,
            config, 2_500, np.random.default_rng(52), sampler="splitting",
        )
        assert split.sampler == "splitting"
        se = math.hypot(naive.standard_error, split.standard_error)
        _assert_within_sigma(
            naive.row_failure_probability, split.row_failure_probability, se
        )

    def test_aligned_splitting_matches_tilted_in_tail(self, sparse_type_model):
        # Two independent rare-event methods on the same tail quantity.
        pitch = ExponentialPitch(4.0)
        width = 100.0  # analytic pF ≈ 8.6e-6, beyond quick naive sampling
        model = AlignedRowModel(pitch, PF, width)
        split = multilevel_splitting(model, 3_000, np.random.default_rng(53))
        tilted = estimate_device_failure_tilted(
            pitch, PF, width, 20_000, np.random.default_rng(54)
        )
        se = math.hypot(split.standard_error, tilted.standard_error)
        _assert_within_sigma(split.probability, tilted.estimate, se)

    def test_uncorrelated_splitting_matches_closed_form(self, sparse_type_model):
        pitch = ExponentialPitch(4.0)
        width = 40.0
        analytic_pf = math.exp(-(width / 4.0) * (1.0 - PF))
        devices = 5
        analytic = -math.expm1(devices * math.log1p(-analytic_pf))
        model = UncorrelatedRowModel(pitch, PF, width, devices)
        split = multilevel_splitting(model, 3_000, np.random.default_rng(55))
        _assert_within_sigma(split.probability, analytic, split.standard_error)

    def test_level_probabilities_multiply_to_estimate(self):
        model = NonAlignedRowModel(ExponentialPitch(4.0), PF, 48.0, 10, 400.0)
        result = multilevel_splitting(model, 1_000, np.random.default_rng(56))
        assert result.probability == pytest.approx(
            float(np.prod(result.level_probabilities))
        )
        assert 0.0 < result.probability < 1.0
        assert result.n_levels == len(result.levels)

    def test_particle_floor_enforced(self):
        model = AlignedRowModel(ExponentialPitch(4.0), PF, 40.0)
        with pytest.raises(ValueError):
            multilevel_splitting(model, 4, np.random.default_rng(0))


class TestChipTiltedEquivalence:
    @pytest.fixture(scope="class")
    def placement(self):
        design = Design("rare_block", build_small_library())
        for i in range(60):
            design.add(f"u{i}", "INV_X1" if i % 2 == 0 else "NAND2_X1")
        return RowPlacement(design, row_width_nm=16_000.0)

    def test_expected_failing_devices_matches_naive(
        self, placement, sparse_type_model
    ):
        simulator = ChipMonteCarlo(
            placement, pitch=ExponentialPitch(20.0), type_model=sparse_type_model
        )
        naive = simulator.run(3_000, np.random.default_rng(61))
        tail = simulator.run(
            3_000, np.random.default_rng(62), sampler="tilted"
        )
        assert isinstance(tail, ChipTailResult)
        naive_se = naive.std_failing_devices / math.sqrt(naive.n_trials)
        _assert_within_sigma(
            tail.expected_failing_devices,
            naive.mean_failing_devices,
            math.hypot(naive_se, tail.expected_failing_devices_se),
        )
        # Rao-Blackwellisation + tilting must beat indicator sampling.
        assert tail.expected_failing_devices_se < naive_se

    def test_chip_yield_matches_naive_in_rare_regime(
        self, placement, sparse_type_model
    ):
        # Denser growth makes per-device failures rare — the regime the
        # union-bound yield assembly is designed for.
        simulator = ChipMonteCarlo(
            placement, pitch=ExponentialPitch(8.0), type_model=sparse_type_model
        )
        naive = simulator.run(8_000, np.random.default_rng(63))
        tail = simulator.run(4_000, np.random.default_rng(64), sampler="tilted")
        naive_yield_se = math.sqrt(
            naive.chip_yield * (1.0 - naive.chip_yield) / naive.n_trials
        )
        _assert_within_sigma(
            tail.chip_yield,
            naive.chip_yield,
            math.hypot(naive_yield_se, tail.yield_standard_error),
        )
        assert tail.yield_standard_error < naive_yield_se

    def test_unknown_sampler_rejected(self, placement, sparse_type_model):
        simulator = ChipMonteCarlo(
            placement, pitch=ExponentialPitch(20.0), type_model=sparse_type_model
        )
        with pytest.raises(ValueError, match="sampler"):
            simulator.run(10, np.random.default_rng(0), sampler="wrong")


def build_small_library():
    from repro.cells.nangate45 import build_nangate45_library

    return build_nangate45_library()


class TestEstimateAllFallback:
    def test_tilted_estimate_all_falls_back_to_splitting(self, sparse_type_model):
        simulator = RowMonteCarlo(
            pitch=ExponentialPitch(4.0), type_model=sparse_type_model
        )
        config = RowScenarioConfig(device_width_nm=24.0, devices_per_segment=5)
        results = simulator.estimate_all(
            config, 600, np.random.default_rng(71), sampler="tilted"
        )
        by_scenario = {r.scenario: r for r in results}
        assert by_scenario[LayoutScenario.DIRECTIONAL_ALIGNED].sampler == "tilted"
        assert by_scenario[LayoutScenario.UNCORRELATED_GROWTH].sampler == "tilted"
        assert (
            by_scenario[LayoutScenario.DIRECTIONAL_NON_ALIGNED].sampler
            == "splitting"
        )
        for result in results:
            assert 0.0 <= result.row_failure_probability <= 1.0


class TestSplittingMemoryGuard:
    def test_paper_scale_uncorrelated_splitting_refused(self):
        # Hundreds of devices per segment have the closed-form tilt; the
        # splitting state would be multi-GB, so it must fail fast.
        model = UncorrelatedRowModel(ExponentialPitch(4.0), PF, 178.0, 360)
        with pytest.raises(ValueError, match="tilted"):
            model.component_shapes(3_000)
