"""Property-based tests for the rare-event layer.

Hypothesis sweeps the pitch families, tilt factors and spans to assert the
structural invariants of the importance sampler — likelihood-ratio weights
are always positive and finite, stopped weights are consistent with the
full-span weights — and a seeded grid mirrors PR 1's bitwise-invariance
tests: the weighted estimator must be bitwise independent of ``n_workers``
and statistically independent of the chunk size.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.growth.pitch import (
    ExponentialPitch,
    GammaPitch,
    TruncatedNormalPitch,
)
from repro.montecarlo.rare_event import (
    estimate_device_failure_tilted,
    sample_weighted_track_batch,
    window_stopped_log_weights,
)

PF = 1.0 / 3.0 + (2.0 / 3.0) * 0.3


def make_pitch(family: str, mean_nm: float, shape_param: float):
    if family == "exponential":
        return ExponentialPitch(mean_nm)
    if family == "gamma":
        return GammaPitch(mean_nm, cv_value=shape_param)
    return TruncatedNormalPitch(mean_nm, mean_nm * shape_param)


pitch_strategy = st.tuples(
    st.sampled_from(["exponential", "gamma", "truncnorm"]),
    st.floats(min_value=2.0, max_value=12.0),
    st.floats(min_value=0.3, max_value=0.9),
)


class TestWeightProperties:
    @given(
        pitch_args=pitch_strategy,
        mean_factor=st.floats(min_value=1.01, max_value=4.0),
        span_nm=st.floats(min_value=10.0, max_value=250.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_log_weights_finite_and_weights_positive(
        self, pitch_args, mean_factor, span_nm, seed
    ):
        pitch = make_pitch(*pitch_args)
        tilt = pitch.exponential_tilt(mean_factor)
        batch, log_w = sample_weighted_track_batch(
            tilt, span_nm, 64, np.random.default_rng(seed)
        )
        assert log_w.shape == (64,)
        # Positivity and finiteness live in log space: exp(log_w) can
        # underflow to zero for deliberately absurd tilts, but the log
        # weight itself must never be NaN/inf.
        assert np.all(np.isfinite(log_w))
        weights = np.exp(log_w)
        assert np.all(weights >= 0.0)
        assert np.all(weights[log_w > -700.0] > 0.0)
        # The batch must still satisfy the engine contract.
        assert np.all(batch.positions[:, -1] > span_nm)

    @given(
        pitch_args=pitch_strategy,
        mean_factor=st.floats(min_value=1.01, max_value=4.0),
        span_nm=st.floats(min_value=10.0, max_value=250.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_full_span_query_reproduces_trial_weight(
        self, pitch_args, mean_factor, span_nm, seed
    ):
        # A window query whose upper bound is the whole span must stop at
        # exactly the same gap as the per-trial weight — the two code paths
        # (per-trial and per-query) must agree bitwise.
        pitch = make_pitch(*pitch_args)
        tilt = pitch.exponential_tilt(mean_factor)
        batch, log_w = sample_weighted_track_batch(
            tilt, span_nm, 32, np.random.default_rng(seed)
        )
        trial_index = np.arange(32)
        hi = np.full(32, batch.span_nm)
        per_query = window_stopped_log_weights(batch, tilt, hi, trial_index)
        np.testing.assert_array_equal(per_query, log_w)

    @given(
        mean_factor=st.floats(min_value=1.05, max_value=3.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_stopped_weights_shrink_with_window_altitude(
        self, mean_factor, seed
    ):
        # Stopping earlier can only discard gaps: a query at a lower bound
        # must consume no more gaps than one at a higher bound.
        pitch = ExponentialPitch(4.0)
        tilt = pitch.exponential_tilt(mean_factor)
        batch, _ = sample_weighted_track_batch(
            tilt, 200.0, 16, np.random.default_rng(seed)
        )
        trial_index = np.tile(np.arange(16), 2)
        hi = np.concatenate([np.full(16, 50.0), np.full(16, 200.0)])
        log_w = window_stopped_log_weights(batch, tilt, hi, trial_index)
        low, high = log_w[:16], log_w[16:]
        # The stopped gap count must be monotone in the bound, and both
        # weight sets must stay finite.
        stops_low = np.sum(batch.positions <= 50.0, axis=1)
        stops_high = np.sum(batch.positions <= 200.0, axis=1)
        assert np.all(stops_low <= stops_high)
        assert np.all(np.isfinite(low)) and np.all(np.isfinite(high))

    def test_out_of_span_query_rejected(self):
        pitch = ExponentialPitch(4.0)
        tilt = pitch.exponential_tilt(2.0)
        batch, _ = sample_weighted_track_batch(
            tilt, 50.0, 4, np.random.default_rng(0)
        )
        with pytest.raises(ValueError, match="span"):
            window_stopped_log_weights(
                batch, tilt, np.array([60.0]), np.array([0])
            )


class TestEstimatorInvariance:
    """Mirrors PR 1's bitwise-invariance tests for the weighted estimator."""

    @pytest.mark.parametrize("n_samples,trial_chunk", [
        (1_000, 137),
        (2_048, 256),
        (777, 50),
    ])
    def test_bitwise_invariant_to_n_workers(self, n_samples, trial_chunk):
        pitch = ExponentialPitch(4.0)
        results = [
            estimate_device_failure_tilted(
                pitch, PF, 120.0, n_samples, np.random.default_rng(7),
                trial_chunk=trial_chunk, n_workers=n_workers,
            )
            for n_workers in (1, 2, 3)
        ]
        assert results[0] == results[1] == results[2]

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_statistically_invariant_to_chunk_size(self, seed):
        # Different chunk sizes consume different spawn-key streams, so the
        # invariance is statistical (same law), exactly as for the naive
        # engine's chunking test.
        pitch = ExponentialPitch(4.0)
        a = estimate_device_failure_tilted(
            pitch, PF, 120.0, 8_000, np.random.default_rng(seed),
            trial_chunk=97,
        )
        b = estimate_device_failure_tilted(
            pitch, PF, 120.0, 8_000, np.random.default_rng(seed),
            trial_chunk=8_000,
        )
        se = math.hypot(a.standard_error, b.standard_error)
        assert abs(a.estimate - b.estimate) <= 5.0 * se

    def test_seed_reproducibility(self):
        pitch = GammaPitch(4.0, 0.5)
        a = estimate_device_failure_tilted(
            pitch, PF, 80.0, 4_000, np.random.default_rng(99)
        )
        b = estimate_device_failure_tilted(
            pitch, PF, 80.0, 4_000, np.random.default_rng(99)
        )
        assert a == b
