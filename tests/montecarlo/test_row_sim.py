"""Tests for the row-level Monte Carlo simulator (Table 1 scenarios)."""

import numpy as np
import pytest

from repro.core.correlation import LayoutScenario
from repro.growth.pitch import ExponentialPitch
from repro.growth.types import CNTTypeModel
from repro.montecarlo.row_sim import RowMonteCarlo, RowScenarioConfig


@pytest.fixture
def simulator():
    return RowMonteCarlo(
        pitch=ExponentialPitch(4.0),
        type_model=CNTTypeModel(1.0 / 3.0, 1.0, 0.3),
    )


@pytest.fixture
def config():
    # Narrow devices and a small segment keep the probabilities measurable.
    return RowScenarioConfig(device_width_nm=24.0, devices_per_segment=15)


class TestRowScenarioConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RowScenarioConfig(device_width_nm=0.0, devices_per_segment=10)
        with pytest.raises(ValueError):
            RowScenarioConfig(device_width_nm=10.0, devices_per_segment=0)
        with pytest.raises(ValueError):
            RowScenarioConfig(
                device_width_nm=10.0, devices_per_segment=1, cell_height_window_nm=-1.0
            )

    def test_devices_per_segment_helper(self):
        assert RowMonteCarlo.devices_per_segment_from_parameters(200.0, 1.8) == 360


class TestScenarioOrdering:
    def test_aligned_lowest_uncorrelated_highest(self, simulator, config, rng):
        results = {
            r.scenario: r.row_failure_probability
            for r in simulator.estimate_all(config, 3_000, rng)
        }
        assert (
            results[LayoutScenario.DIRECTIONAL_ALIGNED]
            <= results[LayoutScenario.DIRECTIONAL_NON_ALIGNED]
            <= results[LayoutScenario.UNCORRELATED_GROWTH]
        )

    def test_aligned_matches_device_failure(self, simulator, config, rng):
        # Aligned rows fail exactly as often as a single device: pF(24 nm)
        # with Poisson counts is exp(-6 * 0.4667) ≈ 0.061.
        result = simulator.estimate(
            LayoutScenario.DIRECTIONAL_ALIGNED, config, 4_000, rng
        )
        expected = np.exp(-(24.0 / 4.0) * (1.0 - 0.5333))
        assert result.row_failure_probability == pytest.approx(expected, rel=0.1)

    def test_uncorrelated_matches_binomial_formula(self, simulator, config, rng):
        result = simulator.estimate(
            LayoutScenario.UNCORRELATED_GROWTH, config, 4_000, rng
        )
        p_f = np.exp(-(24.0 / 4.0) * (1.0 - 0.5333))
        expected = 1.0 - (1.0 - p_f) ** config.devices_per_segment
        assert result.row_failure_probability == pytest.approx(expected, rel=0.1)

    def test_relaxation_ratio_close_to_devices_per_segment(self, simulator, rng):
        # In the small-pF regime the ratio uncorrelated/aligned approaches
        # MRmin; with a moderately small pF it is somewhat below that.
        config = RowScenarioConfig(device_width_nm=40.0, devices_per_segment=12)
        aligned = simulator.estimate(
            LayoutScenario.DIRECTIONAL_ALIGNED, config, 6_000, rng
        )
        uncorrelated = simulator.estimate(
            LayoutScenario.UNCORRELATED_GROWTH, config, 6_000, rng
        )
        ratio = (
            uncorrelated.row_failure_probability / aligned.row_failure_probability
        )
        assert 6.0 <= ratio <= 12.5


class TestEstimator:
    def test_standard_error_positive(self, simulator, config, rng):
        result = simulator.estimate(
            LayoutScenario.DIRECTIONAL_NON_ALIGNED, config, 500, rng
        )
        assert result.standard_error > 0.0
        assert result.n_samples == 500

    def test_invalid_sample_count(self, simulator, config, rng):
        with pytest.raises(ValueError):
            simulator.estimate(LayoutScenario.DIRECTIONAL_ALIGNED, config, 0, rng)
