"""Oracle-and-engine equivalence for the metallic-short failure mode.

The joint opens+shorts regime (surviving metallic tubes, ``q = p_m ·
(1 - eta) > 0``) reuses the batched engine's track positions and the
*same* per-tube uniform draw for both channels, so a shorts-active run
must agree statistically with the retained scalar oracles at every level
(device, row, chip), match the thinned closed form of
:mod:`repro.device.shorts` within Monte Carlo error, stay *bitwise*
invariant to worker count and chunking, and — when ``q`` collapses to
zero, however the (p_m, eta) pair achieves it — reduce bitwise to the
opens-only code path.
"""

import math

import numpy as np
import pytest

from repro.cells.nangate45 import build_nangate45_library
from repro.core.correlation import LayoutScenario
from repro.core.count_model import PoissonCountModel
from repro.core.failure import CNFETFailureModel
from repro.growth.pitch import ExponentialPitch, GammaPitch
from repro.growth.types import CNTTypeModel
from repro.montecarlo.chip_sim import ChipMonteCarlo
from repro.montecarlo.device_sim import DeviceMonteCarlo
from repro.montecarlo.experiments import compare_chip_engines
from repro.montecarlo.row_sim import RowMonteCarlo, RowScenarioConfig
from repro.growth.wafer import WaferGrowthModel
from repro.montecarlo.wafer_sim import simulate_wafer
from repro.netlist.design import Design
from repro.netlist.placement import RowPlacement

N_SIGMA = 6.0


@pytest.fixture(scope="module")
def shorts_type_model():
    """Imperfect removal (eta = 0.9): q = p_m/10, frequent enough to measure."""
    return CNTTypeModel(1.0 / 3.0, 0.9, 0.3)


@pytest.fixture(scope="module")
def block_placement():
    library = build_nangate45_library()
    design = Design("shorts_block", library)
    for i in range(90):
        design.add(f"u{i}", "INV_X1" if i % 2 == 0 else "NAND2_X1")
    return RowPlacement(design, row_width_nm=20_000.0)


def _assert_within_sigma(a, b, se, n_sigma=N_SIGMA):
    assert abs(a - b) <= n_sigma * se, (
        f"|{a} - {b}| = {abs(a - b)} exceeds {n_sigma} sigma = {n_sigma * se}"
    )


class TestDeviceLevelShorts:
    def test_naive_matches_joint_closed_form(self, shorts_type_model, rng):
        # Exponential gaps make the engine count exactly Poisson, so the
        # two-stage naive estimator must agree with the thinned closed
        # form at the paper's operating pitch.
        pitch = ExponentialPitch(8.0)
        model = CNFETFailureModel.from_type_model(
            PoissonCountModel(mean_pitch_nm=8.0), shorts_type_model
        )
        analytic = model.failure_probability(40.0)

        mc = DeviceMonteCarlo(pitch=pitch, type_model=shorts_type_model)
        result = mc.estimate_naive(40.0, 20_000, rng)
        assert result.standard_error > 0.0
        _assert_within_sigma(
            result.failure_probability, analytic, result.standard_error
        )

    def test_conditional_matches_naive(self, shorts_type_model, rng):
        # The Rao-Blackwellised joint value must agree with the plain
        # 0/1 estimator — same law, lower variance.
        mc = DeviceMonteCarlo(
            pitch=ExponentialPitch(12.0), type_model=shorts_type_model
        )
        naive = mc.estimate_naive(36.0, 15_000, rng)
        conditional = mc.estimate_conditional(36.0, 15_000, rng)
        se = math.hypot(naive.standard_error, conditional.standard_error)
        _assert_within_sigma(
            naive.failure_probability, conditional.failure_probability, se
        )

    def test_tilted_rejects_shorts(self, shorts_type_model, rng):
        mc = DeviceMonteCarlo(
            pitch=ExponentialPitch(8.0), type_model=shorts_type_model
        )
        with pytest.raises(ValueError, match="opens-only"):
            mc.estimate_tilted(40.0, 100, rng)


class TestRowLevelShorts:
    @pytest.mark.parametrize("scenario", list(LayoutScenario))
    def test_vectorized_matches_scalar(self, scenario, shorts_type_model):
        simulator = RowMonteCarlo(
            pitch=ExponentialPitch(4.0), type_model=shorts_type_model
        )
        config = RowScenarioConfig(device_width_nm=24.0, devices_per_segment=15)
        scalar = simulator.estimate(
            scenario, config, 3_000, np.random.default_rng(401), vectorized=False
        )
        vectorized = simulator.estimate(
            scenario, config, 3_000, np.random.default_rng(402), vectorized=True
        )
        se = math.hypot(scalar.standard_error, vectorized.standard_error)
        _assert_within_sigma(
            scalar.row_failure_probability,
            vectorized.row_failure_probability,
            se,
        )

    def test_gamma_pitch_non_aligned(self, shorts_type_model):
        simulator = RowMonteCarlo(
            pitch=GammaPitch(4.0, 0.5), type_model=shorts_type_model
        )
        config = RowScenarioConfig(device_width_nm=20.0, devices_per_segment=10)
        scalar = simulator.estimate(
            LayoutScenario.DIRECTIONAL_NON_ALIGNED,
            config, 2_000, np.random.default_rng(41), vectorized=False,
        )
        vectorized = simulator.estimate(
            LayoutScenario.DIRECTIONAL_NON_ALIGNED,
            config, 2_000, np.random.default_rng(42), vectorized=True,
        )
        se = math.hypot(scalar.standard_error, vectorized.standard_error)
        _assert_within_sigma(
            scalar.row_failure_probability,
            vectorized.row_failure_probability,
            se,
        )

    @pytest.mark.parametrize("sampler", ["tilted", "splitting"])
    def test_rare_event_samplers_reject_shorts(
        self, sampler, shorts_type_model
    ):
        simulator = RowMonteCarlo(
            pitch=ExponentialPitch(4.0), type_model=shorts_type_model
        )
        config = RowScenarioConfig(device_width_nm=24.0, devices_per_segment=5)
        with pytest.raises(ValueError, match="opens-only"):
            simulator.estimate(
                LayoutScenario.DIRECTIONAL_NON_ALIGNED,
                config, 100, np.random.default_rng(1), sampler=sampler,
            )


class TestChipLevelShorts:
    def test_vectorized_matches_scalar_oracle(
        self, block_placement, shorts_type_model
    ):
        record = compare_chip_engines(
            block_placement,
            pitch=ExponentialPitch(20.0),
            type_model=shorts_type_model,
            n_trials=40,
            seed=2026,
        )
        assert record.standard_error > 0.0
        assert record.agrees(n_sigma=N_SIGMA, rtol=0.1)

    @pytest.mark.parametrize("n_workers,trial_chunk", [
        (2, 7), (3, 7), (2, 24), (3, 5),
    ])
    def test_multi_worker_bitwise_identical(
        self, block_placement, shorts_type_model, n_workers, trial_chunk
    ):
        # Acceptance criterion: joint chip yield from the batched engine
        # is bitwise equal at equal seed across the worker/chunking grid.
        simulator = ChipMonteCarlo(
            block_placement,
            pitch=ExponentialPitch(20.0),
            type_model=shorts_type_model,
        )
        serial = simulator.run(
            24, np.random.default_rng(9), n_workers=1, trial_chunk=trial_chunk
        )
        parallel = simulator.run(
            24, np.random.default_rng(9),
            n_workers=n_workers, trial_chunk=trial_chunk,
        )
        assert serial == parallel

    def test_engine_matches_thinned_closed_form(
        self, block_placement, shorts_type_model
    ):
        # The mean failing-device count equals the sum of the per-class
        # joint pF (linear expectation), so the engine must agree with
        # the thinned closed form within Monte Carlo error (z < 6).
        simulator = ChipMonteCarlo(
            block_placement,
            pitch=ExponentialPitch(20.0),
            type_model=shorts_type_model,
        )
        n_trials = 400
        result = simulator.run(n_trials, np.random.default_rng(77))
        widths, counts = simulator.width_class_histogram()
        model = CNFETFailureModel.from_type_model(
            PoissonCountModel(mean_pitch_nm=20.0), shorts_type_model
        )
        predicted = float(np.sum(
            np.asarray(counts)
            * model.failure_probabilities(np.asarray(widths))
        ))
        se = result.std_failing_devices / math.sqrt(n_trials)
        assert se > 0.0
        z = (result.mean_failing_devices - predicted) / se
        assert abs(z) < N_SIGMA, f"z = {z}"

    def test_tilted_sampler_rejects_shorts(
        self, block_placement, shorts_type_model
    ):
        simulator = ChipMonteCarlo(
            block_placement,
            pitch=ExponentialPitch(20.0),
            type_model=shorts_type_model,
        )
        with pytest.raises(ValueError, match="opens-only"):
            simulator.run(8, np.random.default_rng(1), sampler="tilted")

    def test_zero_metallic_fraction_reduces_bitwise(self, block_placement):
        # q = p_m·(1 - eta) = 0 via p_m = 0 must replay the opens-only
        # stream exactly: the shared single-uniform partition consumes no
        # extra randomness, so eta cannot matter when p_m is zero.
        opens = ChipMonteCarlo(
            block_placement,
            pitch=ExponentialPitch(20.0),
            type_model=CNTTypeModel(0.0, 1.0, 0.4),
        )
        gated = ChipMonteCarlo(
            block_placement,
            pitch=ExponentialPitch(20.0),
            type_model=CNTTypeModel(0.0, 0.5, 0.4),
        )
        a = opens.run(16, np.random.default_rng(3), trial_chunk=6)
        b = gated.run(16, np.random.default_rng(3), trial_chunk=6)
        assert a == b


class TestWaferLevelShorts:
    @pytest.fixture(scope="class")
    def wafer(self):
        return WaferGrowthModel(
            center_pitch_nm=4.0, die_size_mm=20.0
        ).generate(np.random.default_rng(5))

    def test_worker_invariance_with_shorts(self, wafer, shorts_type_model):
        kwargs = dict(
            widths_nm=[60.0, 120.0], device_counts=[30.0, 10.0],
            n_trials=64, seed_key=(5,),
        )
        serial = simulate_wafer(
            wafer, ExponentialPitch(4.0), shorts_type_model,
            n_workers=1, **kwargs,
        )
        parallel = simulate_wafer(
            wafer, ExponentialPitch(4.0), shorts_type_model,
            n_workers=3, **kwargs,
        )
        assert serial.dice == parallel.dice

    def test_shorts_lower_wafer_yield(self, wafer):
        kwargs = dict(
            widths_nm=[120.0], device_counts=[40.0],
            n_trials=64, seed_key=(5,),
        )
        clean = simulate_wafer(
            wafer, ExponentialPitch(4.0), CNTTypeModel(1.0 / 3.0, 1.0, 0.3),
            **kwargs,
        )
        shorted = simulate_wafer(
            wafer, ExponentialPitch(4.0), CNTTypeModel(1.0 / 3.0, 0.9, 0.3),
            **kwargs,
        )
        assert shorted.mean_chip_yield < clean.mean_chip_yield
