"""Analytic cross-checks of the rare-event layer deep in the tail.

These tests compare importance-sampled / splitting-sampled tail
probabilities against the paper's closed forms at the operating points the
naive engine cannot reach: device pF down to 1e-9 (Eq. 2.2 / 2.3), the
three Table 1 row scenarios (Eq. 3.1), and the headline ≈350X
aligned/uncorrelated relaxation (Eq. 3.2).  The pitch is exponential
throughout so the engine's uniform-offset renewal convention and the
analytic Poisson count model describe *exactly* the same process — any
systematic discrepancy is a bug, not a boundary condition.
"""

import math

import numpy as np
import pytest

from repro.core.circuit_yield import chip_yield_from_failure_estimate
from repro.core.correlation import (
    CorrelationParameters,
    LayoutScenario,
    RowYieldModel,
)
from repro.growth.pitch import ExponentialPitch
from repro.montecarlo.experiments import compare_tail_scenarios
from repro.montecarlo.rare_event import estimate_device_failure_tilted

#: pf at the paper's pessimistic corner (pm = 33 %, pRs = 30 %).
PF_TUBE = 1.0 / 3.0 + (2.0 / 3.0) * 0.3

MEAN_PITCH_NM = 4.0


def width_for_target_pf(target_pf: float) -> float:
    """Exact inversion of pF = exp(-λ(1-pf)) for exponential pitch."""
    lam = math.log(1.0 / target_pf) / (1.0 - PF_TUBE)
    return lam * MEAN_PITCH_NM


class TestDeviceTailVsEq22:
    @pytest.mark.parametrize("target_pf", [1e-6, 1e-9], ids=["1e-6", "1e-9"])
    def test_sampled_tail_matches_analytic(self, target_pf):
        width = width_for_target_pf(target_pf)
        pitch = ExponentialPitch(MEAN_PITCH_NM)
        result = estimate_device_failure_tilted(
            pitch, PF_TUBE, width, 30_000, np.random.default_rng(101)
        )
        assert result.standard_error > 0.0
        assert abs(result.estimate - target_pf) <= 5.0 * result.standard_error
        # The tail must actually be resolved, not just bracketed.
        assert result.relative_error < 0.01


class TestChipYieldVsEq23:
    def test_importance_sampled_chip_yield_at_operating_point(self):
        """The acceptance-criterion regime: pF = 1e-9, M = 1e8 devices."""
        target_pf = 1e-9
        device_count = 1e8
        width = width_for_target_pf(target_pf)
        pitch = ExponentialPitch(MEAN_PITCH_NM)
        result = estimate_device_failure_tilted(
            pitch, PF_TUBE, width, 50_000, np.random.default_rng(102)
        )
        sampled = chip_yield_from_failure_estimate(
            result.estimate, result.standard_error, device_count
        )
        analytic_yield = 1.0 - device_count * target_pf  # Eq. 2.3 first order
        assert analytic_yield == pytest.approx(0.9)
        # Agreement within the *reported* error of the sampled estimate.
        assert sampled.agrees_with(analytic_yield, n_sigma=4.0), (
            sampled.yield_value, analytic_yield, sampled.standard_error
        )
        # And the reported error must itself be small enough to be useful.
        assert sampled.loss_relative_error < 0.02

    def test_exact_and_first_order_forms_agree_at_operating_point(self):
        # At M·pF = 0.1 the exact product exp(-0.1) and the first-order
        # 1 - M·pF differ by ~0.5 % — the paper's approximation regime.
        sampled = chip_yield_from_failure_estimate(1e-9, 1e-11, 1e8, exact=False)
        exact = chip_yield_from_failure_estimate(1e-9, 1e-11, 1e8, exact=True)
        assert sampled.yield_value == pytest.approx(exact.yield_value, rel=1e-2)
        assert sampled.standard_error == pytest.approx(
            exact.standard_error, rel=0.15
        )


class TestTableOneTailScenarios:
    @pytest.fixture(scope="class")
    def records(self):
        # W = 160 nm puts pF near 8e-9; 360 devices per segment is the
        # paper's MRmin = LCNT · Pmin-CNFET.
        return compare_tail_scenarios(
            device_width_nm=160.0,
            devices_per_segment=360,
            n_samples=5_000,
            splitting_particles=2_000,
            seed=103,
        )

    def test_closed_form_scenarios_agree(self, records):
        for scenario in (
            LayoutScenario.UNCORRELATED_GROWTH,
            LayoutScenario.DIRECTIONAL_ALIGNED,
        ):
            record = records[scenario]
            assert record.agrees(n_sigma=5.0, rtol=0.02), (
                scenario, record.analytic, record.monte_carlo,
                record.standard_error,
            )

    def test_non_aligned_bracketed_between_extremes(self, records):
        # The paper evaluates this scenario numerically; the sampled value
        # must land strictly between the two closed-form extremes.
        aligned = records[LayoutScenario.DIRECTIONAL_ALIGNED]
        uncorrelated = records[LayoutScenario.UNCORRELATED_GROWTH]
        middle = records[LayoutScenario.DIRECTIONAL_NON_ALIGNED]
        assert aligned.monte_carlo < middle.monte_carlo < uncorrelated.monte_carlo

    def test_relaxation_ratio_reproduces_eq32(self, records):
        """MRmin = 360 devices/segment must surface as the ≈350X headline."""
        uncorrelated = records[LayoutScenario.UNCORRELATED_GROWTH]
        aligned = records[LayoutScenario.DIRECTIONAL_ALIGNED]
        ratio = uncorrelated.monte_carlo / aligned.monte_carlo
        rel_se = math.hypot(
            uncorrelated.standard_error / uncorrelated.monte_carlo,
            aligned.standard_error / aligned.monte_carlo,
        )
        analytic_ratio = uncorrelated.analytic / aligned.analytic
        assert abs(ratio - analytic_ratio) <= 5.0 * ratio * rel_se
        assert 330.0 <= ratio <= 390.0  # "≈350X"


class TestRowYieldEstimatePropagation:
    def test_sampled_aligned_tail_reproduces_eq31_chip_yield(self):
        """Eq. 3.1 chip yield from a *sampled* pRF vs the closed form."""
        target_pf = 1e-9
        width = width_for_target_pf(target_pf)
        pitch = ExponentialPitch(MEAN_PITCH_NM)
        sampled_prf = estimate_device_failure_tilted(
            pitch, PF_TUBE, width, 30_000, np.random.default_rng(104)
        )
        params = CorrelationParameters()  # LCNT = 200 µm, 1.8 FETs/µm
        model = RowYieldModel(parameters=params)
        m_min = 3.3e7

        analytic = model.evaluate(
            LayoutScenario.DIRECTIONAL_ALIGNED, target_pf, m_min
        )
        estimate = model.evaluate_estimate(
            LayoutScenario.DIRECTIONAL_ALIGNED,
            sampled_prf.estimate,
            sampled_prf.standard_error,
            m_min,
        )
        assert estimate.row_count == pytest.approx(analytic.row_count)
        assert estimate.chip_yield_se > 0.0
        assert abs(estimate.chip_yield - analytic.chip_yield) <= (
            4.0 * estimate.chip_yield_se
        )

    def test_degenerate_row_failure_yields_zero(self):
        model = RowYieldModel()
        estimate = model.evaluate_estimate(
            LayoutScenario.DIRECTIONAL_ALIGNED, 1.0, 0.1, 1e6
        )
        assert estimate.chip_yield == 0.0
        assert estimate.chip_yield_se == 0.0
