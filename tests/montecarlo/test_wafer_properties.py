"""Hypothesis property tests for the wafer runner and pitch rescaling.

The properties pinned here are the ones that make the stacked runner
trustworthy at scale:

* the wafer result is exactly the combination of independent per-die runs
  under the same spawn keys (no hidden coupling through the stack);
* die ordering and worker count never change a single bit;
* per-die density rescaling round-trips through
  :meth:`~repro.growth.pitch.PitchDistribution.with_mean` (same family,
  same CV, exact mean).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.growth.pitch import (
    DeterministicPitch,
    ExponentialPitch,
    GammaPitch,
    TruncatedNormalPitch,
    pitch_distribution_from_cv,
)
from repro.growth.types import CNTTypeModel
from repro.growth.wafer import WaferMap
from repro.montecarlo.wafer_sim import per_die_loop, simulate_die, simulate_wafer

TYPE_MODEL = CNTTypeModel(1.0 / 3.0, 1.0, 0.3)

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _wafer_from_pitches(pitches_nm) -> WaferMap:
    """Small synthetic wafer with explicitly chosen per-die pitches."""
    from repro.growth.wafer import DieSite

    sites = tuple(
        DieSite(
            column=i % 3, row=i // 3,
            x_mm=float(5 * (i % 3)), y_mm=float(5 * (i // 3)),
            mean_pitch_nm=float(p), misalignment_deg=0.0,
        )
        for i, p in enumerate(pitches_nm)
    )
    return WaferMap(wafer_diameter_mm=60.0, die_size_mm=10.0, sites=sites)


die_pitches = st.lists(
    st.floats(min_value=3.0, max_value=8.0), min_size=2, max_size=5
)


class TestWaferCombinationProperties:
    @SETTINGS
    @given(pitches=die_pitches, seed=st.integers(0, 2**31 - 1))
    def test_wafer_equals_combination_of_independent_die_runs(
        self, pitches, seed
    ):
        wafer = _wafer_from_pitches(pitches)
        result = simulate_wafer(
            wafer, ExponentialPitch(4.0), TYPE_MODEL, [80.0, 120.0],
            [50.0, 30.0], n_trials=64, seed_key=(seed,),
        )
        independent = [
            simulate_die(
                site, ExponentialPitch(4.0), TYPE_MODEL, [80.0, 120.0],
                [50.0, 30.0], n_trials=64, seed_key=(seed,),
            )
            for site in sorted(wafer.sites, key=lambda s: (s.column, s.row))
        ]
        assert list(result.dice) == independent
        # Aggregates are exactly the weighted combination of the per-die runs.
        yields = np.array([d.chip_yield for d in independent])
        assert result.mean_chip_yield == float(np.mean(yields))
        assert result.expected_good_dice == float(np.sum(yields))
        assert result.good_die_fraction == float(
            np.mean(yields >= result.good_die_threshold)
        )

    @SETTINGS
    @given(
        pitches=die_pitches,
        seed=st.integers(0, 2**31 - 1),
        order_seed=st.integers(0, 2**31 - 1),
    )
    def test_die_ordering_invariance(self, pitches, seed, order_seed):
        wafer = _wafer_from_pitches(pitches)
        shuffled_sites = list(wafer.sites)
        np.random.default_rng(order_seed).shuffle(shuffled_sites)
        shuffled = WaferMap(
            wafer_diameter_mm=wafer.wafer_diameter_mm,
            die_size_mm=wafer.die_size_mm,
            sites=tuple(shuffled_sites),
        )
        kwargs = dict(n_trials=48, seed_key=(seed,))
        a = simulate_wafer(wafer, ExponentialPitch(4.0), TYPE_MODEL,
                           [100.0], **kwargs)
        b = simulate_wafer(shuffled, ExponentialPitch(4.0), TYPE_MODEL,
                           [100.0], **kwargs)
        assert a == b

    @SETTINGS
    @given(
        pitches=die_pitches,
        seed=st.integers(0, 2**31 - 1),
        n_workers=st.integers(2, 4),
    )
    def test_n_workers_invariance(self, pitches, seed, n_workers):
        wafer = _wafer_from_pitches(pitches)
        kwargs = dict(n_trials=32, seed_key=(seed,))
        serial = simulate_wafer(wafer, GammaPitch(4.0, 0.7), TYPE_MODEL,
                                [90.0], **kwargs)
        pooled = simulate_wafer(wafer, GammaPitch(4.0, 0.7), TYPE_MODEL,
                                [90.0], n_workers=n_workers, **kwargs)
        assert serial == pooled

    @SETTINGS
    @given(pitches=die_pitches, seed=st.integers(0, 2**31 - 1))
    def test_per_die_loop_is_order_invariant_too(self, pitches, seed):
        wafer = _wafer_from_pitches(pitches)
        reversed_map = WaferMap(
            wafer_diameter_mm=wafer.wafer_diameter_mm,
            die_size_mm=wafer.die_size_mm,
            sites=tuple(reversed(wafer.sites)),
        )
        kwargs = dict(n_trials=32, seed_key=(seed,))
        assert per_die_loop(
            wafer, ExponentialPitch(4.0), TYPE_MODEL, [100.0], **kwargs
        ) == per_die_loop(
            reversed_map, ExponentialPitch(4.0), TYPE_MODEL, [100.0], **kwargs
        )


class TestWithMeanRoundTrip:
    """Per-die density rescaling goes through ``PitchDistribution.with_mean``."""

    @SETTINGS
    @given(
        mean=st.floats(min_value=0.5, max_value=50.0),
        cv=st.floats(min_value=0.0, max_value=2.0),
        density_per_um=st.floats(min_value=50.0, max_value=500.0),
    )
    def test_density_round_trip_preserves_family_and_cv(
        self, mean, cv, density_per_um
    ):
        pitch = pitch_distribution_from_cv(mean, cv)
        local = pitch.with_mean(1.0e3 / density_per_um)
        assert type(local) is type(pitch)
        assert local.mean_nm == pytest.approx(1.0e3 / density_per_um, rel=1e-12)
        assert local.density_per_nm * 1.0e3 == pytest.approx(
            density_per_um, rel=1e-12
        )
        if cv > 0:
            assert local.cv == pytest.approx(pitch.cv, rel=1e-9)
        # Rescaling back recovers the original distribution's moments.
        back = local.with_mean(pitch.mean_nm)
        assert back.mean_nm == pytest.approx(pitch.mean_nm, rel=1e-12)
        assert back.std_nm == pytest.approx(pitch.std_nm, rel=1e-9)

    @SETTINGS
    @given(
        mean=st.floats(min_value=2.0, max_value=20.0),
        factor=st.floats(min_value=0.25, max_value=4.0),
    )
    def test_truncated_normal_with_mean_hits_truncated_mean(self, mean, factor):
        pitch = TruncatedNormalPitch(nominal_mean_nm=mean,
                                     nominal_std_nm=0.4 * mean)
        target = pitch.mean_nm * factor
        rescaled = pitch.with_mean(target)
        assert rescaled.mean_nm == pytest.approx(target, rel=1e-9)
        assert rescaled.cv == pytest.approx(pitch.cv, rel=1e-9)

    def test_deterministic_pitch_round_trip(self):
        pitch = DeterministicPitch(5.0)
        assert pitch.with_mean(2.5).pitch_nm == 2.5
        assert pitch.with_mean(2.5).with_mean(5.0) == pitch
