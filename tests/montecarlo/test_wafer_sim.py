"""Tests for the stacked wafer-level Monte Carlo runner."""

import math

import numpy as np
import pytest

from repro.backend import get_backend
from repro.growth.pitch import ExponentialPitch, GammaPitch
from repro.growth.types import CNTTypeModel
from repro.growth.wafer import WaferGrowthModel, WaferMap
from repro.montecarlo.wafer_sim import (
    die_stream,
    per_die_loop,
    simulate_die,
    simulate_wafer,
)
from repro.reporting.tables import (
    WAFER_SUMMARY_COLUMNS,
    render_table,
    wafer_summary_rows,
)


@pytest.fixture(scope="module")
def wafer():
    return WaferGrowthModel(
        center_pitch_nm=4.0, die_size_mm=20.0
    ).generate(np.random.default_rng(1))


@pytest.fixture(scope="module")
def sparse_type_model():
    return CNTTypeModel(1.0 / 3.0, 1.0, 0.3)


WIDTHS = (90.0, 140.0)
COUNTS = (300.0, 200.0)


class TestStackedRunner:
    def test_die_estimates_match_independent_single_die_runs(
        self, wafer, sparse_type_model
    ):
        # The headline contract: the stacked pass consumes each die's
        # spawn-keyed stream exactly as an independent run of that die.
        result = simulate_wafer(
            wafer, ExponentialPitch(4.0), sparse_type_model, WIDTHS, COUNTS,
            n_trials=256, seed_key=(7,),
        )
        for die in result.dice:
            site = next(
                s for s in wafer.sites
                if (s.column, s.row) == (die.column, die.row)
            )
            alone = simulate_die(
                site, ExponentialPitch(4.0), sparse_type_model, WIDTHS,
                COUNTS, n_trials=256, seed_key=(7,),
            )
            assert alone == die

    def test_poisson_analytic_failure_probability(self, wafer, sparse_type_model):
        # Exponential gaps + uniform offset: N(W) is Poisson(W/µ_die), so
        # E[pf^N] = exp(-(W/µ_die)(1-pf)) exactly, per die.
        pf = sparse_type_model.per_cnt_failure_probability
        result = simulate_wafer(
            wafer, ExponentialPitch(4.0), sparse_type_model, [100.0],
            n_trials=6_000, seed_key=(11,),
        )
        for die in result.dice:
            analytic = math.exp(-(100.0 / die.mean_pitch_nm) * (1.0 - pf))
            estimate = die.failure_probabilities[0]
            se = die.failure_standard_errors[0]
            assert se > 0.0
            assert abs(estimate - analytic) <= 5.0 * se

    def test_matches_per_die_loop_statistically(self, wafer, sparse_type_model):
        pitch = GammaPitch(4.0, 0.6)
        stacked = simulate_wafer(
            wafer, pitch, sparse_type_model, WIDTHS, COUNTS,
            n_trials=2_000, seed_key=(13,),
        )
        loop = per_die_loop(
            wafer, pitch, sparse_type_model, WIDTHS, COUNTS,
            n_trials=2_000, seed_key=(13,),
        )
        for a, b in zip(stacked.dice, loop.dice):
            assert (a.column, a.row) == (b.column, b.row)
            for p1, s1, p2, s2 in zip(
                a.failure_probabilities, a.failure_standard_errors,
                b.failure_probabilities, b.failure_standard_errors,
            ):
                assert abs(p1 - p2) <= 5.0 * math.hypot(s1, s2) + 1e-12

    def test_n_workers_bitwise_invariant(self, wafer, sparse_type_model):
        serial = simulate_wafer(
            wafer, ExponentialPitch(4.0), sparse_type_model, WIDTHS, COUNTS,
            n_trials=64, seed_key=(17,),
        )
        pooled = simulate_wafer(
            wafer, ExponentialPitch(4.0), sparse_type_model, WIDTHS, COUNTS,
            n_trials=64, seed_key=(17,), n_workers=3,
        )
        assert serial.dice == pooled.dice

    def test_float32_backend_agrees_with_float64(self, wafer, sparse_type_model):
        kwargs = dict(n_trials=512, seed_key=(19,))
        r64 = simulate_wafer(
            wafer, ExponentialPitch(4.0), sparse_type_model, WIDTHS, COUNTS,
            backend=get_backend("numpy", dtype="float64"), **kwargs,
        )
        r32 = simulate_wafer(
            wafer, ExponentialPitch(4.0), sparse_type_model, WIDTHS, COUNTS,
            backend=get_backend("numpy", dtype="float32"), **kwargs,
        )
        for a, b in zip(r64.dice, r32.dice):
            for p1, s1, p2 in zip(
                a.failure_probabilities, a.failure_standard_errors,
                b.failure_probabilities,
            ):
                assert abs(p1 - p2) <= max(5.0 * s1, 1e-5 * max(p1, 1e-30))

    def test_die_metadata_and_aggregates(self, wafer, sparse_type_model):
        result = simulate_wafer(
            wafer, ExponentialPitch(4.0), sparse_type_model, [120.0], [100.0],
            n_trials=128, seed_key=(23,), good_die_threshold=0.2,
        )
        assert result.die_count == wafer.die_count
        yields = result.die_yields()
        assert np.all((yields >= 0.0) & (yields <= 1.0))
        assert result.mean_chip_yield == pytest.approx(float(yields.mean()))
        assert result.expected_good_dice == pytest.approx(float(yields.sum()))
        assert 0.0 <= result.good_die_fraction <= 1.0
        die = result.dice[0]
        assert die.cnt_density_per_um == pytest.approx(1e3 / die.mean_pitch_nm)
        assert die.radius_mm == pytest.approx(math.hypot(die.x_mm, die.y_mm))

    def test_empty_wafer(self, sparse_type_model):
        empty = WaferMap(wafer_diameter_mm=100.0, die_size_mm=10.0, sites=())
        result = simulate_wafer(
            empty, ExponentialPitch(4.0), sparse_type_model, [120.0],
            n_trials=16,
        )
        assert result.die_count == 0
        assert result.good_die_fraction == 0.0
        assert wafer_summary_rows(result) == []

    def test_validation_errors(self, wafer, sparse_type_model):
        pitch = ExponentialPitch(4.0)
        with pytest.raises(ValueError):
            simulate_wafer(wafer, pitch, sparse_type_model, [], n_trials=8)
        with pytest.raises(ValueError):
            simulate_wafer(wafer, pitch, sparse_type_model, [100.0],
                           n_trials=0)
        with pytest.raises(ValueError):
            simulate_wafer(wafer, pitch, sparse_type_model, [100.0],
                           [1.0, 2.0], n_trials=8)
        with pytest.raises(ValueError):
            simulate_wafer(wafer, pitch, sparse_type_model, [100.0],
                           [-1.0], n_trials=8)
        with pytest.raises(ValueError):
            simulate_wafer(wafer, pitch, sparse_type_model, [100.0],
                           n_trials=8, n_workers=0)
        with pytest.raises(ValueError):
            simulate_wafer(wafer, pitch, sparse_type_model, [100.0],
                           n_trials=8, good_die_threshold=1.5)

    def test_die_stream_keyed_by_coordinates(self, wafer):
        a, b = wafer.sites[0], wafer.sites[1]
        draw_a = die_stream((5,), a).random(4)
        draw_a2 = die_stream((5,), a).random(4)
        draw_b = die_stream((5,), b).random(4)
        np.testing.assert_array_equal(draw_a, draw_a2)
        assert not np.array_equal(draw_a, draw_b)


class TestWaferSummaryTable:
    def test_radial_rows_cover_all_dice(self, wafer, sparse_type_model):
        result = simulate_wafer(
            wafer, ExponentialPitch(4.0), sparse_type_model, [168.0],
            [1000.0], n_trials=256, seed_key=(31,),
        )
        rows = wafer_summary_rows(result)
        assert rows[-1]["zone"] == "wafer"
        assert rows[-1]["dies"] == result.die_count
        assert sum(r["dies"] for r in rows[:-1]) == result.die_count
        text = render_table(rows, columns=WAFER_SUMMARY_COLUMNS)
        assert "wafer" in text and "good_fraction" in text


class TestMisalignmentDerating:
    """The Sec. 3 analytic relaxation applied per die inside the pass."""

    @pytest.fixture(scope="class")
    def misaligned_wafer(self):
        return WaferGrowthModel(
            center_pitch_nm=4.0,
            die_size_mm=20.0,
            center_misalignment_deg=0.3,
            edge_misalignment_deg=1.5,
        ).generate(np.random.default_rng(7))

    @pytest.fixture(scope="class")
    def model(self):
        from repro.analysis.mispositioned import MisalignmentImpactModel

        return MisalignmentImpactModel(
            band_width_nm=103.0, cnt_length_um=200.0,
            min_cnfet_density_per_um=1.8,
        )

    def test_none_is_bitwise_default(self, misaligned_wafer, sparse_type_model):
        a = simulate_wafer(
            misaligned_wafer, ExponentialPitch(4.0), sparse_type_model,
            WIDTHS, COUNTS, n_trials=64, seed_key=(3,),
        )
        b = simulate_wafer(
            misaligned_wafer, ExponentialPitch(4.0), sparse_type_model,
            WIDTHS, COUNTS, n_trials=64, seed_key=(3,), misalignment=None,
        )
        assert a.dice == b.dice
        assert all(d.relaxation_factor == 1.0 for d in a.dice)

    def test_derated_probabilities_divide_by_relaxation(
        self, misaligned_wafer, sparse_type_model, model
    ):
        base = simulate_wafer(
            misaligned_wafer, ExponentialPitch(4.0), sparse_type_model,
            WIDTHS, COUNTS, n_trials=64, seed_key=(5,),
        )
        derated = simulate_wafer(
            misaligned_wafer, ExponentialPitch(4.0), sparse_type_model,
            WIDTHS, COUNTS, n_trials=64, seed_key=(5,), misalignment=model,
        )
        for a, b in zip(base.dice, derated.dice):
            expected = model.relaxation_for_angle(a.misalignment_deg)
            assert b.relaxation_factor == pytest.approx(expected)
            assert b.relaxation_factor >= 1.0
            for p_raw, p_der, se_raw, se_der in zip(
                a.failure_probabilities, b.failure_probabilities,
                a.failure_standard_errors, b.failure_standard_errors,
            ):
                assert p_der == pytest.approx(
                    p_raw / b.relaxation_factor, rel=1e-12
                )
                assert se_der == pytest.approx(
                    se_raw / b.relaxation_factor, rel=1e-12
                )
            assert b.chip_yield >= a.chip_yield - 1e-12

    def test_loop_matches_stacked_derating(
        self, misaligned_wafer, sparse_type_model, model
    ):
        stacked = simulate_wafer(
            misaligned_wafer, ExponentialPitch(4.0), sparse_type_model,
            [100.0], [500.0], n_trials=4_000, seed_key=(9,),
            misalignment=model,
        )
        loop = per_die_loop(
            misaligned_wafer, ExponentialPitch(4.0), sparse_type_model,
            [100.0], [500.0], n_trials=4_000, seed_key=(9,),
            misalignment=model,
        )
        for a, b in zip(stacked.dice, loop.dice):
            assert a.relaxation_factor == pytest.approx(b.relaxation_factor)
            p1, s1 = a.failure_probabilities[0], a.failure_standard_errors[0]
            p2, s2 = b.failure_probabilities[0], b.failure_standard_errors[0]
            assert abs(p1 - p2) <= 5.0 * math.hypot(s1, s2) + 1e-15

    def test_simulate_die_carries_derating(
        self, misaligned_wafer, sparse_type_model, model
    ):
        site = max(misaligned_wafer.sites,
                   key=lambda s: abs(s.misalignment_deg))
        wafer_run = simulate_wafer(
            misaligned_wafer, ExponentialPitch(4.0), sparse_type_model,
            WIDTHS, COUNTS, n_trials=64, seed_key=(11,), misalignment=model,
        )
        alone = simulate_die(
            site, ExponentialPitch(4.0), sparse_type_model, WIDTHS, COUNTS,
            n_trials=64, seed_key=(11,), misalignment=model,
        )
        in_wafer = next(
            d for d in wafer_run.dice
            if (d.column, d.row) == (site.column, site.row)
        )
        assert alone == in_wafer
        assert alone.relaxation_factor > 1.0 or site.misalignment_deg == 0.0


class TestCorrelatedFieldWaferRuns:
    """Acceptance: correlated-field wafer runs keep every invariance."""

    @pytest.fixture(scope="class")
    def field_wafer(self):
        from repro.growth.spatial import SpatialFieldSpec

        return WaferGrowthModel(
            center_pitch_nm=4.0,
            die_size_mm=20.0,
            density_field=SpatialFieldSpec(sigma=0.05,
                                           correlation_length_mm=25.0),
            misalignment_field=SpatialFieldSpec(sigma=1.0,
                                                correlation_length_mm=30.0),
        ).generate(seed_key=(13,))

    def test_bitwise_invariant_to_order_grouping_workers(self, field_wafer,
                                                         sparse_type_model):
        reference = simulate_wafer(
            field_wafer, ExponentialPitch(4.0), sparse_type_model,
            WIDTHS, COUNTS, n_trials=64, seed_key=(29,),
        )
        shuffled_sites = list(field_wafer.sites)
        np.random.default_rng(0).shuffle(shuffled_sites)
        shuffled = WaferMap(
            wafer_diameter_mm=field_wafer.wafer_diameter_mm,
            die_size_mm=field_wafer.die_size_mm,
            sites=tuple(shuffled_sites),
        )
        reordered = simulate_wafer(
            shuffled, ExponentialPitch(4.0), sparse_type_model,
            WIDTHS, COUNTS, n_trials=64, seed_key=(29,),
        )
        pooled = simulate_wafer(
            field_wafer, ExponentialPitch(4.0), sparse_type_model,
            WIDTHS, COUNTS, n_trials=64, seed_key=(29,), n_workers=3,
        )
        assert reordered.dice == reference.dice
        assert pooled.dice == reference.dice

    def test_reduces_to_radial_only_at_sigma_zero(self, sparse_type_model):
        from repro.growth.spatial import SpatialFieldSpec

        radial = WaferGrowthModel(
            center_pitch_nm=4.0, die_size_mm=20.0, pitch_noise_sigma=0.0,
            center_misalignment_deg=0.0, edge_misalignment_deg=0.0,
        ).generate(np.random.default_rng(1))
        degenerate = WaferGrowthModel(
            center_pitch_nm=4.0, die_size_mm=20.0,
            density_field=SpatialFieldSpec(sigma=0.0,
                                           correlation_length_mm=25.0),
            misalignment_field=SpatialFieldSpec(sigma=0.0,
                                                correlation_length_mm=25.0),
        ).generate(seed_key=(1,))
        a = simulate_wafer(
            radial, ExponentialPitch(4.0), sparse_type_model, WIDTHS,
            COUNTS, n_trials=64, seed_key=(31,),
        )
        b = simulate_wafer(
            degenerate, ExponentialPitch(4.0), sparse_type_model, WIDTHS,
            COUNTS, n_trials=64, seed_key=(31,),
        )
        assert a.dice == b.dice
