"""Tests for designs, width histograms and statistical designs."""

import numpy as np
import pytest

from repro.netlist.design import (
    CellInstance,
    Design,
    StatisticalDesign,
    WidthHistogram,
)


class TestWidthHistogram:
    def test_totals_and_fractions(self):
        hist = WidthHistogram(np.array([80.0, 160.0]), np.array([30.0, 70.0]))
        assert hist.total_count == 100.0
        assert np.allclose(hist.fractions, [0.3, 0.7])

    def test_fraction_below(self):
        hist = WidthHistogram(np.array([80.0, 160.0, 240.0]), np.array([1.0, 2.0, 7.0]))
        assert hist.fraction_below(160.0) == pytest.approx(0.3)
        assert hist.count_below(160.0) == pytest.approx(3.0)

    def test_mean_width(self):
        hist = WidthHistogram(np.array([100.0, 200.0]), np.array([1.0, 1.0]))
        assert hist.mean_width_nm() == pytest.approx(150.0)

    def test_scaled_counts(self):
        hist = WidthHistogram(np.array([80.0, 160.0]), np.array([1.0, 3.0]))
        scaled = hist.scaled_counts(1e6)
        assert scaled.total_count == pytest.approx(1e6)
        assert np.allclose(scaled.fractions, hist.fractions)

    def test_validation(self):
        with pytest.raises(ValueError):
            WidthHistogram(np.array([80.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            WidthHistogram(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            WidthHistogram(np.array([-80.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            WidthHistogram(np.array([80.0]), np.array([-1.0]))


class TestDesign:
    def test_add_and_count(self, nangate45):
        design = Design("d", nangate45)
        design.add("u1", "INV_X1")
        design.add("u2", "NAND2_X1")
        assert design.instance_count == 2
        assert design.transistor_count == 2 + 4

    def test_duplicate_instance_rejected(self, nangate45):
        design = Design("d", nangate45)
        design.add("u1", "INV_X1")
        with pytest.raises(ValueError):
            design.add("u1", "INV_X2")

    def test_unknown_cell_rejected(self, nangate45):
        design = Design("d", nangate45)
        with pytest.raises(KeyError):
            design.add("u1", "NOT_A_CELL")

    def test_instance_counts_by_cell(self, nangate45):
        design = Design("d", nangate45)
        design.add("u1", "INV_X1")
        design.add("u2", "INV_X1")
        design.add("u3", "NAND2_X1")
        assert design.instance_counts_by_cell() == {"INV_X1": 2, "NAND2_X1": 1}

    def test_width_histogram_binning(self, nangate45):
        design = Design("d", nangate45)
        design.add("u1", "INV_X1")  # widths 80 and 160
        hist = design.width_histogram(bin_width_nm=80.0)
        assert 80.0 in hist.bin_centers_nm
        assert 160.0 in hist.bin_centers_nm
        assert hist.total_count == 2

    def test_empty_design_histogram_raises(self, nangate45):
        design = Design("d", nangate45)
        with pytest.raises(ValueError):
            design.width_histogram()

    def test_to_statistical_scaling(self, nangate45):
        design = Design("d", nangate45)
        design.add("u1", "INV_X1")
        design.add("u2", "NAND2_X1")
        statistical = design.to_statistical(scaled_to=1e8)
        assert statistical.transistor_count == pytest.approx(1e8)


class TestStatisticalDesign:
    def make(self):
        hist = WidthHistogram(
            np.array([80.0, 160.0, 240.0, 320.0]),
            np.array([13.0, 20.0, 30.0, 37.0]) * 1e6,
        )
        return StatisticalDesign("synthetic", hist)

    def test_min_size_count_two_bins(self):
        design = self.make()
        assert design.min_size_device_count == pytest.approx(33e6)
        assert design.min_size_fraction == pytest.approx(0.33)

    def test_scaled_to(self):
        design = self.make().scaled_to(1e9)
        assert design.transistor_count == pytest.approx(1e9)
        assert design.min_size_fraction == pytest.approx(0.33)

    def test_widths_and_counts_views(self):
        design = self.make()
        assert list(design.widths_nm) == [80.0, 160.0, 240.0, 320.0]
        assert design.counts.sum() == pytest.approx(1e8)


class TestCellInstance:
    def test_validation(self):
        with pytest.raises(ValueError):
            CellInstance("", "INV_X1")
        with pytest.raises(ValueError):
            CellInstance("u1", "")
