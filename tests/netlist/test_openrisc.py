"""Tests for the synthetic OpenRISC-like design and its width histogram."""

import numpy as np
import pytest

from repro.netlist.openrisc import (
    OPENRISC_WIDTH_BINS_NM,
    OPENRISC_WIDTH_FRACTIONS,
    build_openrisc_like_design,
    openrisc_width_histogram,
)


class TestStatisticalHistogram:
    def test_fractions_sum_to_one(self):
        assert sum(OPENRISC_WIDTH_FRACTIONS) == pytest.approx(1.0)

    def test_bins_match_fig2_2a(self):
        assert OPENRISC_WIDTH_BINS_NM == (80.0, 160.0, 240.0, 320.0)

    def test_min_size_fraction_is_one_third(self, openrisc_design):
        # The paper estimates Mmin as the two left-most bins: 33 % of devices.
        assert openrisc_design.min_size_fraction == pytest.approx(0.33, abs=0.005)

    def test_scaled_to_chip_size(self):
        design = openrisc_width_histogram(1.0e8)
        assert design.transistor_count == pytest.approx(1.0e8)
        assert design.min_size_device_count == pytest.approx(0.33e8)

    def test_custom_fractions_validation(self):
        with pytest.raises(ValueError):
            openrisc_width_histogram(1e6, fractions=(0.5, 0.2, 0.2, 0.2))
        with pytest.raises(ValueError):
            openrisc_width_histogram(1e6, bins_nm=(80.0,), fractions=(0.5, 0.5))
        with pytest.raises(ValueError):
            openrisc_width_histogram(0.0)


class TestConcreteNetlist:
    @pytest.fixture(scope="class")
    def design(self, nangate45):
        return build_openrisc_like_design(nangate45, scale=0.25, seed=7)

    def test_design_is_nontrivial(self, design):
        assert design.instance_count > 2000
        assert design.transistor_count > 10_000

    def test_histogram_dominated_by_small_bins(self, design):
        hist = design.width_histogram(bin_width_nm=80.0)
        # The synthetic core is more small-device-heavy than the paper's
        # extracted histogram (33 % below 160 nm); assert it stays in a sane
        # band and that the smallest bins dominate neither trivially nor
        # completely.  The Fig. 2.2a reproduction itself uses the calibrated
        # statistical histogram, not this concrete netlist.
        fraction_small = hist.fraction_below(160.0)
        assert 0.2 <= fraction_small <= 0.9

    def test_contains_sequential_cells(self, design):
        cells = design.instance_counts_by_cell()
        assert any(name.startswith("DFF") or name.startswith("SDFF") for name in cells)

    def test_deterministic_for_fixed_seed(self, nangate45):
        a = build_openrisc_like_design(nangate45, scale=0.1, seed=3)
        b = build_openrisc_like_design(nangate45, scale=0.1, seed=3)
        assert a.instance_counts_by_cell() == b.instance_counts_by_cell()

    def test_different_seeds_differ(self, nangate45):
        a = build_openrisc_like_design(nangate45, scale=0.1, seed=3)
        b = build_openrisc_like_design(nangate45, scale=0.1, seed=4)
        assert a.instance_counts_by_cell() != b.instance_counts_by_cell()

    def test_scale_controls_size(self, nangate45):
        small = build_openrisc_like_design(nangate45, scale=0.1, seed=3)
        large = build_openrisc_like_design(nangate45, scale=0.3, seed=3)
        assert large.instance_count > 2 * small.instance_count

    def test_invalid_scale(self, nangate45):
        with pytest.raises(ValueError):
            build_openrisc_like_design(nangate45, scale=0.0)
