"""Tests for row placement and Pmin-CNFET extraction."""

import pytest

from repro.netlist.design import Design
from repro.netlist.openrisc import build_openrisc_like_design
from repro.netlist.placement import RowPlacement


@pytest.fixture(scope="module")
def placed(nangate45_module):
    design = build_openrisc_like_design(nangate45_module, scale=0.1, seed=5)
    return RowPlacement(design, row_width_nm=200_000.0, utilisation_target=0.85)


@pytest.fixture(scope="module")
def nangate45_module():
    from repro.cells.nangate45 import build_nangate45_library
    return build_nangate45_library()


class TestRowPlacement:
    def test_all_instances_placed(self, placed):
        design_count = placed.design.instance_count
        placed_count = sum(len(row.placed) for row in placed.rows)
        assert placed_count == design_count

    def test_rows_respect_utilisation(self, placed):
        for row in placed.rows:
            assert row.used_nm <= 0.85 * row.width_nm + 1e-6

    def test_placement_cached(self, placed):
        assert placed.run() is placed.run()

    def test_statistics_fields(self, placed):
        stats = placed.statistics(small_width_threshold_nm=160.0)
        assert stats.row_count == len(placed.rows)
        assert stats.total_transistors > 0
        assert 0.0 < stats.small_fraction < 1.0
        assert stats.mean_utilisation <= 0.85 + 1e-9

    def test_small_density_in_papers_regime(self, placed):
        # The paper reports Pmin-CNFET = 1.8 FETs/µm for its placed OpenRISC
        # core.  The synthetic core packs more small devices per cell, so its
        # density comes out higher; assert the same order of magnitude
        # (single digits per µm, not hundredths or hundreds).
        density = placed.small_device_density_per_um(160.0)
        assert 0.5 <= density <= 10.0

    def test_threshold_monotonicity(self, placed):
        low = placed.small_device_density_per_um(80.0)
        high = placed.small_device_density_per_um(240.0)
        assert high >= low

    def test_small_design_single_row(self, nangate45_module):
        design = Design("tiny", nangate45_module)
        for i in range(10):
            design.add(f"u{i}", "INV_X1")
        placement = RowPlacement(design, row_width_nm=100_000.0)
        assert len(placement.rows) == 1

    def test_cell_wider_than_row_rejected(self, nangate45_module):
        design = Design("tiny", nangate45_module)
        design.add("u0", "BUF_X32")
        placement = RowPlacement(design, row_width_nm=1_000.0)
        with pytest.raises(ValueError):
            placement.run()

    def test_invalid_parameters(self, nangate45_module):
        design = Design("tiny", nangate45_module)
        with pytest.raises(ValueError):
            RowPlacement(design, row_width_nm=0.0)
        with pytest.raises(ValueError):
            RowPlacement(design, utilisation_target=0.0)

    def test_transistor_positions_filtering(self, placed):
        row = placed.rows[0]
        all_positions = row.transistor_positions_nm()
        small_positions = row.transistor_positions_nm(max_width_nm=160.0)
        assert len(small_positions) <= len(all_positions)
        assert all(0.0 <= x <= row.width_nm for x in all_positions)
