"""Tests for the load-driven sizing pass."""

import pytest

from repro.netlist.synthesis import GateNetwork, LogicalGate, SizingPass


class TestGateNetwork:
    def test_add_and_count(self):
        network = GateNetwork("n")
        network.add(LogicalGate("g0", "INV", fanout=1))
        network.add(LogicalGate("g1", "NAND2", fanout=3))
        assert network.gate_count == 2
        assert network.function_histogram() == {"INV": 1, "NAND2": 1}

    def test_fanouts(self):
        network = GateNetwork("n")
        network.add(LogicalGate("g0", "INV", fanout=5))
        assert network.fanouts().tolist() == [5]

    def test_negative_fanout_rejected(self):
        with pytest.raises(ValueError):
            LogicalGate("g", "INV", fanout=-1)


class TestSizingPass:
    def test_library_indexing(self, nangate45):
        sizing = SizingPass(nangate45)
        assert "INV" in sizing.available_functions()
        assert sizing.drives_for("INV") == (1, 2, 4, 8, 16, 32)

    def test_unknown_function(self, nangate45):
        sizing = SizingPass(nangate45)
        with pytest.raises(KeyError):
            sizing.drives_for("NOT_A_FUNCTION")

    def test_small_fanout_gets_x1(self, nangate45):
        sizing = SizingPass(nangate45, drive_capability_per_x=3.0)
        assert sizing.select_drive(LogicalGate("g", "INV", fanout=1)) == 1
        assert sizing.map_gate(LogicalGate("g", "INV", fanout=2)) == "INV_X1"

    def test_large_fanout_gets_bigger_drive(self, nangate45):
        sizing = SizingPass(nangate45, drive_capability_per_x=3.0)
        assert sizing.select_drive(LogicalGate("g", "INV", fanout=10)) == 4
        assert sizing.select_drive(LogicalGate("g", "INV", fanout=30)) == 16

    def test_fanout_beyond_largest_drive_clamps(self, nangate45):
        sizing = SizingPass(nangate45, drive_capability_per_x=3.0)
        assert sizing.select_drive(LogicalGate("g", "INV", fanout=10_000)) == 32

    def test_run_produces_design(self, nangate45):
        network = GateNetwork("n")
        network.add(LogicalGate("a", "INV", fanout=1))
        network.add(LogicalGate("b", "NAND2", fanout=8))
        design = SizingPass(nangate45).run(network)
        assert design.instance_count == 2
        cells = {i.cell_name for i in design.instances}
        assert "INV_X1" in cells
        assert any(name.startswith("NAND2_X") for name in cells)

    def test_drive_mix(self, nangate45):
        network = GateNetwork("n")
        for i, fanout in enumerate((1, 1, 1, 12)):
            network.add(LogicalGate(f"g{i}", "INV", fanout=fanout))
        sizing = SizingPass(nangate45)
        design = sizing.run(network)
        mix = sizing.drive_mix(design)
        assert mix[1] == 3
        assert sum(mix.values()) == 4

    def test_invalid_parameters(self, nangate45):
        with pytest.raises(ValueError):
            SizingPass(nangate45, load_per_fanout=0.0)
        with pytest.raises(ValueError):
            SizingPass(nangate45, drive_capability_per_x=-1.0)
