"""Tests for the structural netlist export / parse round trip."""

import pytest

from repro.netlist.design import Design
from repro.netlist.openrisc import build_openrisc_like_design
from repro.netlist.verilog import (
    cell_usage_from_netlist,
    export_structural_netlist,
    parse_structural_netlist,
)


@pytest.fixture
def small_design(nangate45):
    design = Design("tiny", nangate45)
    design.add("u_inv0", "INV_X1")
    design.add("u_inv1", "INV_X2")
    design.add("u_nand", "NAND2_X1")
    return design


class TestExport:
    def test_contains_module_and_instances(self, small_design):
        text = export_structural_netlist(small_design)
        assert "module tiny ();" in text
        assert "INV_X1 u_inv0 ();" in text
        assert text.strip().endswith("endmodule")

    def test_module_name_override(self, small_design):
        text = export_structural_netlist(small_design, module_name="top")
        assert "module top ();" in text

    def test_usage_header(self, small_design):
        text = export_structural_netlist(small_design)
        usage = cell_usage_from_netlist(text)
        assert usage == {"INV_X1": 1, "INV_X2": 1, "NAND2_X1": 1}


class TestParse:
    def test_round_trip(self, small_design, nangate45):
        text = export_structural_netlist(small_design)
        parsed = parse_structural_netlist(text, nangate45)
        assert parsed.instance_count == small_design.instance_count
        assert parsed.instance_counts_by_cell() == small_design.instance_counts_by_cell()
        assert parsed.name == "tiny"

    def test_round_trip_openrisc(self, nangate45):
        design = build_openrisc_like_design(nangate45, scale=0.05, seed=1)
        text = export_structural_netlist(design)
        parsed = parse_structural_netlist(text, nangate45)
        assert parsed.transistor_count == design.transistor_count

    def test_unknown_cell_rejected(self, nangate45):
        text = "module t ();\n  NOT_A_CELL u0 ();\nendmodule"
        with pytest.raises(KeyError):
            parse_structural_netlist(text, nangate45)

    def test_malformed_statement_rejected(self, nangate45):
        with pytest.raises(ValueError):
            parse_structural_netlist("module t ();\n  broken line\nendmodule", nangate45)

    def test_missing_module_rejected(self, nangate45):
        with pytest.raises(ValueError):
            parse_structural_netlist("INV_X1 u0 ();", nangate45)
