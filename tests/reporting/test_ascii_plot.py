"""Tests for the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.reporting.ascii_plot import ascii_bar_chart, ascii_line_plot


class TestLinePlot:
    def test_basic_plot_contains_markers(self):
        text = ascii_line_plot([1, 2, 3], [1, 4, 9], title="squares")
        assert "squares" in text
        assert "*" in text

    def test_log_scale(self):
        text = ascii_line_plot([1, 2, 3], [1e-9, 1e-6, 1e-3], log_y=True)
        assert "log10" in text

    def test_log_scale_drops_non_positive(self):
        text = ascii_line_plot([1, 2], [0.0, -1.0], log_y=True)
        assert "no positive data" in text

    def test_empty_data(self):
        assert ascii_line_plot([], []) == "(no data)"

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_line_plot([1, 2], [1])

    def test_constant_series_does_not_crash(self):
        text = ascii_line_plot([1, 2, 3], [5, 5, 5])
        assert "*" in text


class TestBarChart:
    def test_bars_scale_with_values(self):
        text = ascii_bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") < lines[1].count("#")

    def test_title_and_values(self):
        text = ascii_bar_chart(["x"], [42.0], title="t")
        assert "t" in text
        assert "42.0" in text

    def test_empty(self):
        assert ascii_bar_chart([], []) == "(no data)"

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_zero_values_do_not_crash(self):
        text = ascii_bar_chart(["a", "b"], [0.0, 0.0])
        assert "a" in text
