"""Tests for the paper-versus-measured experiment records."""

from repro.reporting.experiments import (
    ExperimentRecord,
    experiment_summary,
    format_ratio,
    record_from_numbers,
)


class TestExperimentRecord:
    def test_markdown_row(self):
        record = ExperimentRecord("T1", "relaxation", "350X", "360X", "close")
        row = record.as_markdown_row()
        assert row.startswith("| T1 |")
        assert "350X" in row and "360X" in row

    def test_markdown_row_default_note(self):
        record = ExperimentRecord("T1", "relaxation", "350X", "360X")
        assert "| - |" in record.as_markdown_row()

    def test_summary_contains_header_and_rows(self):
        records = [
            ExperimentRecord("F2.1", "Wmin", "155 nm", "168 nm"),
            ExperimentRecord("T1", "relaxation", "350X", "360X"),
        ]
        text = experiment_summary(records)
        assert text.splitlines()[0].startswith("| Experiment |")
        assert len(text.splitlines()) == 4


class TestHelpers:
    def test_format_ratio(self):
        assert "1.20" in format_ratio(1.2, 1.0)

    def test_format_ratio_zero_paper(self):
        assert "zero" in format_ratio(1.0, 0.0)

    def test_record_from_numbers(self):
        record = record_from_numbers("T1", "relaxation", 350.0, 360.0, unit="X")
        assert record.paper_value == "350 X"
        assert record.measured_value == "360 X"
        assert "1.03" in record.note
