"""Tests for the figure data generators."""

import numpy as np
import pytest

from repro.reporting.figures import (
    fig2_1_data,
    fig2_2a_data,
    fig2_2b_data,
    fig3_1_data,
    fig3_3_data,
)


class TestFig21:
    @pytest.fixture(scope="class")
    def data(self):
        return fig2_1_data(widths_nm=np.arange(20.0, 181.0, 8.0))

    def test_three_curves(self, data):
        assert len(data["curves"]) == 3

    def test_curves_decrease_with_width(self, data):
        for values in data["curves"].values():
            assert values[0] > values[-1]

    def test_budget_lines(self, data):
        assert data["budget_pf"] == pytest.approx(3.03e-9, rel=0.02)
        assert data["relaxed_budget_pf"] > data["budget_pf"]

    def test_wmin_markers_ordered(self, data):
        assert data["wmin_relaxed_nm"] < data["wmin_unrelaxed_nm"]

    def test_relaxation_factor(self, data):
        assert data["relaxation_factor"] == pytest.approx(360.0, rel=0.05)


class TestFig22a:
    def test_histogram_shape(self):
        data = fig2_2a_data()
        assert list(data["bin_centers_nm"]) == [80.0, 160.0, 240.0, 320.0]
        assert np.isclose(sum(data["fractions"]), 1.0)
        assert data["min_size_fraction"] == pytest.approx(0.33, abs=0.005)

    def test_percentages(self):
        data = fig2_2a_data()
        assert np.allclose(data["percentages"], 100.0 * data["fractions"])


class TestFig22b:
    def test_penalty_grows_with_scaling(self):
        data = fig2_2b_data()
        penalties = data["penalty_percent"]
        assert list(data["nodes_nm"]) == [45, 32, 22, 16]
        assert all(b > a for a, b in zip(penalties, penalties[1:]))

    def test_wmin_reported(self):
        data = fig2_2b_data()
        assert 120.0 < data["wmin_nm"] < 200.0


class TestFig31:
    @pytest.fixture(scope="class")
    def data(self):
        return fig3_1_data(n_samples=120, seed=11)

    def test_aligned_has_highest_correlation(self, data):
        assert (
            data["correlation_directional_aligned"]
            > data["correlation_directional_non_aligned"]
        )
        assert (
            data["correlation_directional_aligned"]
            > data["correlation_uncorrelated_growth"]
        )

    def test_aligned_correlation_is_strong(self, data):
        assert data["correlation_directional_aligned"] > 0.8

    def test_uncorrelated_correlation_is_weak(self, data):
        assert abs(data["correlation_uncorrelated_growth"]) < 0.35


class TestFig33:
    @pytest.fixture(scope="class")
    def data(self):
        return fig3_3_data()

    def test_optimised_penalty_lower_everywhere(self, data):
        without = data["penalty_without_correlation_percent"]
        with_corr = data["penalty_with_correlation_percent"]
        assert np.all(with_corr <= without)

    def test_wmin_values(self, data):
        assert data["wmin_with_nm"] < data["wmin_without_nm"]
        assert data["relaxation_factor"] == pytest.approx(360.0, rel=0.05)

    def test_penalty_nearly_eliminated_at_45(self, data):
        without = data["penalty_without_correlation_percent"][0]
        with_corr = data["penalty_with_correlation_percent"][0]
        assert with_corr < 0.6 * without
