"""Tests for the table data generators (Table 1 and Table 2)."""

import pytest

from repro.reporting.tables import render_table, table1_data, table2_data


class TestTable1:
    @pytest.fixture(scope="class")
    def data(self):
        return table1_data()

    def test_ordering(self, data):
        assert (
            data["prf_uncorrelated"]
            > data["prf_directional_non_aligned"]
            > data["prf_directional_aligned"]
        )

    def test_total_gain_close_to_paper(self, data):
        # Paper: ≈350X total reduction in pRF.
        assert data["total_gain"] == pytest.approx(360.0, rel=0.05)

    def test_gain_decomposition(self, data):
        assert data["total_gain"] == pytest.approx(
            data["gain_from_growth"] * data["gain_from_alignment"], rel=1e-6
        )

    def test_prf_magnitudes(self, data):
        # The paper's values are 5.3e-6 / 2.0e-7 / 1.5e-8; the reproduction
        # lands within an order of magnitude with the same ordering.
        assert 1e-7 < data["prf_uncorrelated"] < 1e-4
        assert 1e-10 < data["prf_directional_aligned"] < 1e-7


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return table2_data()

    def test_three_columns(self, rows):
        assert len(rows) == 3

    def test_cell_counts(self, rows):
        counts = [row["num_cells"] for row in rows]
        assert counts == [775, 775, 134]

    def test_one_region_65nm_about_twenty_percent(self, rows):
        one_region = rows[0]
        assert one_region["aligned_regions"] == 1
        assert one_region["cells_with_penalty_pct"] == pytest.approx(20.0, abs=5.0)
        assert one_region["min_penalty_pct"] >= 9.0
        assert one_region["max_penalty_pct"] <= 75.0

    def test_two_regions_no_penalty_but_larger_wmin(self, rows):
        one_region, two_region = rows[0], rows[1]
        assert two_region["aligned_regions"] == 2
        assert two_region["cells_with_penalty"] == 0
        assert two_region["wmin_nm"] > one_region["wmin_nm"]
        # Paper: the two-region Wmin is < 5 % larger than the one-region one.
        assert (
            two_region["wmin_nm"] / one_region["wmin_nm"] - 1.0
        ) < 0.08

    def test_nangate_column(self, rows):
        nangate = rows[2]
        assert nangate["num_cells"] == 134
        assert nangate["cells_with_penalty"] == 4
        assert nangate["wmin_nm"] < rows[0]["wmin_nm"]


class TestRenderTable:
    def test_renders_rows(self):
        text = render_table([{"a": 1, "b": 2.5}, {"a": 3, "b": 4.0}])
        assert "a" in text and "b" in text
        assert "2.5" in text

    def test_empty(self):
        assert render_table([]) == "(empty table)"

    def test_column_selection(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "b" in text
        assert "a" not in text.splitlines()[0]
