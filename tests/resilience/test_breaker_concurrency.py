"""Concurrency regressions for the circuit breaker.

Pre-PR-7 the breaker had no lock (racy failure counting under the
multi-client service tier) and its half-open state admitted *every*
concurrent caller as a probe.  These tests fail on that code.
"""

import threading
import time

from repro.resilience import CircuitBreaker


def _open_half(breaker: CircuitBreaker) -> None:
    """Drive a cooldown-free breaker into the half-open state."""
    for _ in range(breaker.failure_threshold):
        breaker.record_failure()
    assert breaker.state == "half_open"


class TestConcurrentCounting:
    def test_no_lost_failure_updates(self):
        breaker = CircuitBreaker(failure_threshold=10 ** 9, cooldown_s=60.0)
        per_thread, n_threads = 2000, 8
        barrier = threading.Barrier(n_threads)

        def hammer():
            barrier.wait()
            for _ in range(per_thread):
                breaker.record_failure()

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert breaker.stats()["failures"] == per_thread * n_threads

    def test_mixed_hammering_keeps_state_consistent(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=0.0)
        stop = time.monotonic() + 0.3
        errors = []

        def worker(seed):
            ops = 0
            while time.monotonic() < stop:
                try:
                    if breaker.allow():
                        if (ops + seed) % 3 == 0:
                            breaker.record_failure()
                        elif (ops + seed) % 3 == 1:
                            breaker.record_success()
                        else:
                            breaker.release()
                    assert breaker.state in ("closed", "open", "half_open")
                except Exception as exc:  # noqa: BLE001 — collected below
                    errors.append(exc)
                    return
                ops += 1

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors


class TestHalfOpenSingleProbe:
    def test_exactly_one_concurrent_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=0.0)
        _open_half(breaker)
        n_threads = 16
        barrier = threading.Barrier(n_threads)
        admitted = []
        lock = threading.Lock()

        def probe():
            barrier.wait()
            if breaker.allow():
                with lock:
                    admitted.append(threading.get_ident())

        threads = [threading.Thread(target=probe) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(admitted) == 1

    def test_probe_blocks_until_settled(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=0.0)
        _open_half(breaker)
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # everyone else keeps degrading
        assert not breaker.allow()

    def test_successful_probe_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=0.0)
        _open_half(breaker)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow() and breaker.allow()  # no probe gating

    def test_failed_probe_reopens_for_full_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=0.05)
        breaker.record_failure()
        assert breaker.state == "open"
        time.sleep(0.06)
        assert breaker.allow()       # half-open probe
        breaker.record_failure()     # probe failed
        assert breaker.state == "open"
        assert not breaker.allow()   # a fresh cooldown must elapse first
        time.sleep(0.06)
        assert breaker.allow()

    def test_release_reopens_the_probe_slot(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=0.0)
        _open_half(breaker)
        assert breaker.allow()
        assert not breaker.allow()
        breaker.release()            # outcome proved nothing (missing key)
        assert breaker.state == "half_open"
        assert breaker.allow()       # next caller may probe again
