"""Tests for the content-hashed campaign checkpoint store."""

import json

import numpy as np
import pytest

from repro.resilience import (
    CheckpointError,
    CheckpointStore,
    corrupt_file,
    fingerprint_parts,
)


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(tmp_path / "ck")


def _campaign(store, fingerprint="fp", total=4, resume=True):
    return store.campaign("test", fingerprint, total, resume=resume)


class TestFingerprint:
    def test_stable_across_calls(self):
        parts = ("name", 3, 1.5, np.arange(4.0), {"k": (1, 2)})
        assert fingerprint_parts(*parts) == fingerprint_parts(*parts)

    def test_sensitive_to_array_contents(self):
        assert fingerprint_parts(np.arange(4.0)) != fingerprint_parts(
            np.arange(4.0) + 1e-12
        )

    def test_sensitive_to_scalar_parts(self):
        assert fingerprint_parts("a", 1) != fingerprint_parts("a", 2)


class TestCampaignCheckpoint:
    def test_unit_round_trip(self, store):
        campaign = _campaign(store)
        arrays = {"x": np.arange(5.0), "y": np.ones((2, 3))}
        meta = {"unit": 0, "note": "first"}
        campaign.save_unit(0, arrays=arrays, meta=meta)

        reopened = _campaign(store)
        loaded = reopened.verified_units()
        assert set(loaded) == {0}
        got_arrays, got_meta = loaded[0]
        np.testing.assert_array_equal(got_arrays["x"], arrays["x"])
        np.testing.assert_array_equal(got_arrays["y"], arrays["y"])
        assert got_meta == meta

    def test_load_unsaved_unit_returns_none(self, store):
        campaign = _campaign(store)
        assert campaign.load_unit(3) is None

    def test_corrupt_unit_is_quarantined_and_recomputable(self, store):
        campaign = _campaign(store)
        campaign.save_unit(0, arrays={"x": np.arange(8.0)})
        campaign.save_unit(1, arrays={"x": np.arange(8.0) * 2})
        unit_path = campaign.units_dir / "unit-00000.npz"
        corrupt_file(unit_path, seed=9)

        reopened = _campaign(store)
        loaded = reopened.verified_units()
        assert set(loaded) == {1}  # unit 0 dropped, not served corrupt
        assert reopened.quarantined, "corrupt unit should be quarantined"
        assert not unit_path.exists()

    def test_fingerprint_mismatch_raises(self, store):
        _campaign(store, fingerprint="fp-a").save_unit(
            0, arrays={"x": np.zeros(2)}
        )
        with pytest.raises(CheckpointError, match="fingerprint"):
            _campaign(store, fingerprint="fp-b")

    def test_resume_false_discards_prior_units(self, store):
        campaign = _campaign(store)
        campaign.save_unit(0, arrays={"x": np.zeros(2)})
        fresh = _campaign(store, resume=False)
        assert fresh.verified_units() == {}

    def test_resume_false_allows_new_fingerprint(self, store):
        _campaign(store, fingerprint="fp-a").save_unit(
            0, arrays={"x": np.zeros(2)}
        )
        fresh = _campaign(store, fingerprint="fp-b", resume=False)
        assert fresh.verified_units() == {}

    def test_corrupt_manifest_starts_empty(self, store):
        campaign = _campaign(store)
        campaign.save_unit(0, arrays={"x": np.zeros(2)})
        campaign.manifest_path.write_text("{ not json")
        reopened = _campaign(store)
        assert reopened.verified_units() == {}

    def test_unit_hash_recorded_in_manifest(self, store):
        campaign = _campaign(store)
        campaign.save_unit(2, arrays={"x": np.arange(3.0)})
        manifest = json.loads(campaign.manifest_path.read_text())
        (entry,) = manifest["units"].values()
        assert len(entry["sha256"]) == 64

    def test_meta_only_unit(self, store):
        campaign = _campaign(store)
        campaign.save_unit(0, meta={"rows": [[1.0, 2.0]]})
        _, meta = _campaign(store).verified_units()[0]
        assert meta == {"rows": [[1.0, 2.0]]}
