"""Tests for the small resilience primitives: atomic IO, guards, faults,
circuit breaker, and deadlines."""

import json
import os

import numpy as np
import pytest

from repro.resilience import (
    CircuitBreaker,
    Deadline,
    FaultPlan,
    NumericalGuardError,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    check_finite,
    check_probabilities,
    corrupt_file,
    sha256_bytes,
    sha256_file,
)


class TestAtomicWrites:
    def test_bytes_round_trip(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "blob.bin"
        atomic_write_bytes(path, b"\x00\x01payload")
        assert path.read_bytes() == b"\x00\x01payload"

    def test_no_temp_debris_after_write(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"a": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_json_round_trips_exactly(self, tmp_path):
        payload = {"x": 0.1 + 0.2, "inf": float("inf"), "n": [1, 2]}
        path = tmp_path / "out.json"
        atomic_write_json(path, payload)
        loaded = json.loads(path.read_text())
        assert loaded["x"] == payload["x"]
        assert loaded["inf"] == float("inf")

    def test_text_write(self, tmp_path):
        path = tmp_path / "t.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"

    def test_overwrite_replaces_atomically(self, tmp_path):
        path = tmp_path / "f.bin"
        atomic_write_bytes(path, b"old")
        atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"new"

    def test_sha256_file_matches_bytes(self, tmp_path):
        data = os.urandom(3 * 1024 * 1024)  # spans several stream chunks
        path = tmp_path / "big.bin"
        path.write_bytes(data)
        assert sha256_file(path) == sha256_bytes(data)


class TestGuards:
    def test_finite_array_passes(self):
        check_finite(np.array([1.0, -2.0, 0.0]), "ctx")

    def test_nan_raises_with_context(self):
        with pytest.raises(NumericalGuardError) as err:
            check_finite(np.array([1.0, np.nan, np.nan]), "stage.x")
        assert err.value.context == "stage.x"
        assert err.value.kind == "nan"
        assert err.value.count == 2
        assert "2/3" in str(err.value)

    def test_inf_raises_unless_allowed(self):
        values = np.array([1.0, np.inf])
        with pytest.raises(NumericalGuardError):
            check_finite(values, "ctx")
        check_finite(values, "ctx", allow_inf=True)

    def test_nan_still_raises_when_inf_allowed(self):
        with pytest.raises(NumericalGuardError):
            check_finite(np.array([np.nan, np.inf]), "ctx", allow_inf=True)

    def test_probabilities_in_range_pass(self):
        check_probabilities(np.array([0.0, 0.5, 1.0]), "ctx")

    def test_negative_probability_raises(self):
        with pytest.raises(NumericalGuardError) as err:
            check_probabilities(np.array([-1e-9, 0.5]), "ctx")
        assert err.value.kind == "negative"

    def test_above_one_raises(self):
        with pytest.raises(NumericalGuardError) as err:
            check_probabilities(np.array([0.5, 1.0 + 1e-9]), "ctx")
        assert err.value.kind == "above_one"

    def test_upper_none_skips_bound(self):
        check_probabilities(np.array([0.5, 7.0]), "ctx", upper=None)


class TestFaultPlan:
    def test_decisions_are_deterministic(self):
        a = FaultPlan(seed=7, kill_probability=0.5)
        b = FaultPlan(seed=7, kill_probability=0.5)
        decisions = [(u, t) for u in range(20) for t in range(3)]
        assert [a.should_kill(u, t) for u, t in decisions] == [
            b.should_kill(u, t) for u, t in decisions
        ]

    def test_seed_changes_decisions(self):
        a = FaultPlan(seed=7, kill_probability=0.5)
        b = FaultPlan(seed=8, kill_probability=0.5)
        decisions = [(u, 0) for u in range(64)]
        assert [a.should_kill(*d) for d in decisions] != [
            b.should_kill(*d) for d in decisions
        ]

    def test_targeted_kill_respects_attempt_budget(self):
        plan = FaultPlan(kill_units=(3,), kill_attempts=2)
        assert plan.should_kill(3, 0) and plan.should_kill(3, 1)
        assert not plan.should_kill(3, 2)
        assert not plan.should_kill(4, 0)

    def test_delay_only_on_selected_units(self):
        plan = FaultPlan(delay_units=(1,), delay_s=0.25)
        assert plan.delay_for(1, 0) == 0.25
        assert plan.delay_for(0, 0) == 0.0

    def test_nan_units(self):
        plan = FaultPlan(nan_units=(2,))
        assert plan.should_inject_nan(2, 0)
        assert not plan.should_inject_nan(1, 0)

    def test_corrupt_file_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.bin", tmp_path / "b.bin"
        a.write_bytes(bytes(range(256)) * 8)
        b.write_bytes(bytes(range(256)) * 8)
        corrupt_file(a, seed=5)
        corrupt_file(b, seed=5)
        assert a.read_bytes() == b.read_bytes()
        assert a.read_bytes() != bytes(range(256)) * 8


class TestCircuitBreaker:
    def test_opens_at_threshold(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=60.0)
        breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()
        assert not breaker.allow()

    def test_success_resets(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=60.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.allow()

    def test_half_open_after_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=0.0)
        breaker.record_failure()
        assert breaker.allow()  # cooldown of 0 s elapses immediately

    def test_stats_shape(self):
        stats = CircuitBreaker().stats()
        assert set(stats) == {
            "failures", "open", "state", "failure_threshold", "cooldown_s"
        }
        assert stats["state"] == "closed"

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline(None)
        assert deadline.remaining() == float("inf")
        assert not deadline.expired

    def test_zero_budget_is_expired(self):
        assert Deadline(0.0).expired

    def test_elapsed_is_monotone(self):
        deadline = Deadline(10.0)
        first = deadline.elapsed()
        assert deadline.elapsed() >= first >= 0.0
