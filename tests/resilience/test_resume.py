"""Bitwise resume-equals-uninterrupted tests for every campaign type.

Each test runs a campaign to completion without checkpointing, then
re-runs it with a deterministic mid-campaign kill (targeted fault with a
zero retry budget), and finally resumes from the checkpoint — asserting
the resumed result is bitwise identical to the uninterrupted one.
"""

import dataclasses

import numpy as np
import pytest

from repro.cells.nangate45 import build_nangate45_library
from repro.growth.pitch import pitch_distribution_from_cv
from repro.growth.types import CNTTypeModel
from repro.growth.wafer import WaferGrowthModel
from repro.montecarlo.chip_sim import ChipMonteCarlo
from repro.montecarlo.wafer_sim import run_chip_wafer, simulate_wafer
from repro.netlist.design import Design
from repro.netlist.placement import RowPlacement
from repro.resilience import (
    CheckpointError,
    FaultPlan,
    NumericalGuardError,
    RetryPolicy,
    SupervisorError,
    corrupt_file,
)
from repro.surface.builder import SurfaceBuilder, SweepSpec
from repro.surface.grid import GridAxis


@pytest.fixture(scope="module")
def chip():
    library = build_nangate45_library()
    design = Design("block", library)
    for i in range(60):
        design.add(f"u{i}", "INV_X1" if i % 2 == 0 else "NAND2_X1")
    placement = RowPlacement(design, row_width_nm=10_000.0)
    return ChipMonteCarlo(placement)


@pytest.fixture(scope="module")
def wafer():
    model = WaferGrowthModel(wafer_diameter_mm=100.0, die_size_mm=25.0)
    return model.generate(np.random.default_rng(5), seed_key=(5,))


@pytest.fixture(scope="module")
def pitch():
    return pitch_distribution_from_cv(4.0, 1.0)


@pytest.fixture(scope="module")
def type_model():
    return CNTTypeModel(
        metallic_fraction=1.0 / 3.0,
        removal_prob_metallic=1.0,
        removal_prob_semiconducting=0.30,
    )


def _chip_fields(result):
    return dataclasses.asdict(result)


class TestChipResume:
    N_TRIALS = 96
    CHUNK = 16  # six units per campaign

    def _run(self, chip, **kwargs):
        rng = np.random.default_rng(42)
        return chip.run(
            self.N_TRIALS, rng, trial_chunk=self.CHUNK, **kwargs
        )

    def test_checkpointed_run_matches_plain(self, chip, tmp_path):
        plain = self._run(chip)
        checkpointed = self._run(chip, checkpoint_dir=str(tmp_path))
        assert _chip_fields(checkpointed) == _chip_fields(plain)

    def test_kill_then_resume_is_bitwise_identical(self, chip, tmp_path):
        plain = self._run(chip)
        with pytest.raises(SupervisorError):
            self._run(
                chip,
                checkpoint_dir=str(tmp_path),
                policy=RetryPolicy(max_retries=0, backoff_s=0.0),
                faults=FaultPlan(kill_units=(3,), kill_attempts=1),
            )
        resumed = self._run(chip, checkpoint_dir=str(tmp_path), resume=True)
        assert _chip_fields(resumed) == _chip_fields(plain)

    def test_corrupt_unit_recomputed_bitwise(self, chip, tmp_path):
        plain = self._run(chip)
        self._run(chip, checkpoint_dir=str(tmp_path))
        units = sorted((tmp_path / "chip-naive" / "units").glob("*.npz"))
        assert units
        corrupt_file(units[2], seed=11)
        resumed = self._run(chip, checkpoint_dir=str(tmp_path))
        assert _chip_fields(resumed) == _chip_fields(plain)
        assert list((tmp_path / "chip-naive" / "quarantine").glob("*.npz"))

    def test_different_campaign_fingerprint_rejected(self, chip, tmp_path):
        self._run(chip, checkpoint_dir=str(tmp_path))
        rng = np.random.default_rng(43)  # different seed, same directory
        with pytest.raises(CheckpointError, match="fingerprint"):
            chip.run(
                self.N_TRIALS,
                rng,
                trial_chunk=self.CHUNK,
                checkpoint_dir=str(tmp_path),
            )

    def test_nan_injection_trips_numerical_guard(self, chip, tmp_path):
        with pytest.raises(NumericalGuardError) as err:
            self._run(
                chip,
                checkpoint_dir=str(tmp_path),
                faults=FaultPlan(nan_units=(1,)),
            )
        assert err.value.kind == "nan"


class TestWaferResume:
    def _run(self, wafer, pitch, type_model, **kwargs):
        return simulate_wafer(
            wafer,
            pitch,
            type_model,
            widths_nm=[200.0],
            device_counts=[1.0e6],
            n_trials=64,
            seed_key=(5,),
            **kwargs,
        )

    def test_kill_then_resume_is_bitwise_identical(
        self, wafer, pitch, type_model, tmp_path
    ):
        plain = self._run(wafer, pitch, type_model)
        with pytest.raises(SupervisorError):
            self._run(
                wafer,
                pitch,
                type_model,
                checkpoint_dir=str(tmp_path),
                policy=RetryPolicy(max_retries=0, backoff_s=0.0),
                faults=FaultPlan(kill_units=(1,), kill_attempts=1),
            )
        resumed = self._run(
            wafer, pitch, type_model, checkpoint_dir=str(tmp_path)
        )
        assert resumed.dice == plain.dice

    def test_checkpointed_matches_plain(
        self, wafer, pitch, type_model, tmp_path
    ):
        plain = self._run(wafer, pitch, type_model)
        checkpointed = self._run(
            wafer, pitch, type_model, checkpoint_dir=str(tmp_path)
        )
        assert checkpointed.dice == plain.dice


class TestChipWaferResume:
    def _run(self, wafer, chip, **kwargs):
        return run_chip_wafer(
            wafer, chip, n_trials=16, seed_key=(5,), **kwargs
        )

    def test_kill_then_resume_is_bitwise_identical(
        self, wafer, chip, tmp_path
    ):
        plain = self._run(wafer, chip)
        with pytest.raises(SupervisorError):
            self._run(
                wafer,
                chip,
                checkpoint_dir=str(tmp_path),
                policy=RetryPolicy(max_retries=0, backoff_s=0.0),
                faults=FaultPlan(kill_units=(2,), kill_attempts=1),
            )
        resumed = self._run(wafer, chip, checkpoint_dir=str(tmp_path))
        assert resumed.dice == plain.dice


class TestSweepResume:
    SPEC = dict(
        scenario="uncorrelated",
        max_refinement_rounds=1,
    )

    def _spec(self):
        return SweepSpec(
            width_axis=GridAxis.from_range("width_nm", 200.0, 400.0, 4),
            density_axis=GridAxis.from_range(
                "cnt_density_per_um", 0.15, 0.35, 4
            ),
            **self.SPEC,
        )

    def test_resume_replays_without_evaluations(self, tmp_path):
        plain = SurfaceBuilder(self._spec()).build_report()
        first = SurfaceBuilder(
            self._spec(), checkpoint_dir=str(tmp_path)
        ).build_report()
        resumed = SurfaceBuilder(
            self._spec(), checkpoint_dir=str(tmp_path)
        ).build_report()
        assert first.surface.content_hash == plain.surface.content_hash
        assert resumed.surface.content_hash == plain.surface.content_hash
        assert resumed.evaluations == 0

    def test_corrupt_snapshot_quarantined_and_rebuilt(self, tmp_path):
        plain = SurfaceBuilder(self._spec()).build_report()
        SurfaceBuilder(
            self._spec(), checkpoint_dir=str(tmp_path)
        ).build_report()
        campaign_dir = tmp_path / "sweep-uncorrelated"
        units = sorted((campaign_dir / "units").glob("*.npz"))
        assert units
        corrupt_file(units[-1], seed=3)
        rebuilt = SurfaceBuilder(
            self._spec(), checkpoint_dir=str(tmp_path)
        ).build_report()
        assert rebuilt.surface.content_hash == plain.surface.content_hash
        assert list((campaign_dir / "quarantine").glob("*.npz"))

    def test_resume_false_recomputes(self, tmp_path):
        first = SurfaceBuilder(
            self._spec(), checkpoint_dir=str(tmp_path)
        ).build_report()
        fresh = SurfaceBuilder(
            self._spec(), checkpoint_dir=str(tmp_path), resume=False
        ).build_report()
        assert fresh.evaluations == first.evaluations > 0
