"""Chaos tests for graceful-degradation serving: corrupt artifacts,
stale-cache fallback, circuit breaking, and deadline clamping."""

import numpy as np
import pytest

from repro.resilience import CircuitBreaker, CorruptArtifactError, corrupt_file
from repro.serving.service import YieldService
from repro.surface.builder import SurfaceBuilder, SweepSpec
from repro.surface.grid import GridAxis
from repro.surface.surface import SurfaceStore


@pytest.fixture(scope="module")
def surface():
    spec = SweepSpec(
        scenario="uncorrelated",
        width_axis=GridAxis.from_range("width_nm", 200.0, 400.0, 4),
        density_axis=GridAxis.from_range("cnt_density_per_um", 0.15, 0.35, 4),
        max_refinement_rounds=1,
    )
    return SurfaceBuilder(spec).build()


WIDTHS = np.array([250.0, 330.0])
DENSITIES = np.array([0.25, 0.30])


class TestCorruptArtifacts:
    def test_store_load_quarantines_and_raises(self, surface, tmp_path):
        store = SurfaceStore(tmp_path)
        path = store.save(surface)
        corrupt_file(path, seed=1)
        with pytest.raises(CorruptArtifactError, match="quarantined"):
            store.load(surface.key)
        assert store.quarantined
        assert not path.exists()
        assert (tmp_path / "quarantine" / path.name).exists()

    def test_quarantined_artifact_never_served_again(self, surface, tmp_path):
        store = SurfaceStore(tmp_path)
        path = store.save(surface)
        corrupt_file(path, seed=1)
        with pytest.raises(CorruptArtifactError):
            store.load(surface.key)
        with pytest.raises(KeyError):
            store.load(surface.key)

    def test_hash_mismatch_detected_for_decodable_corruption(
        self, surface, tmp_path
    ):
        # A renamed-but-valid artifact decodes fine; only the content
        # hash check can catch it.
        store = SurfaceStore(tmp_path)
        good = store.save(surface)
        forged = tmp_path / f"{surface.scenario}-{'0' * 12}.npz"
        forged.write_bytes(good.read_bytes())
        with pytest.raises(CorruptArtifactError, match="content hash"):
            store.load(forged.stem)

    def test_verify_false_skips_hash_check(self, surface, tmp_path):
        store = SurfaceStore(tmp_path, verify=False)
        good = store.save(surface)
        forged = tmp_path / f"{surface.scenario}-{'0' * 12}.npz"
        forged.write_bytes(good.read_bytes())
        loaded = store.load(forged.stem)
        assert loaded.content_hash == surface.content_hash


class TestStaleCacheServing:
    def test_corrupt_store_falls_back_to_stale_copy(self, surface, tmp_path):
        store = SurfaceStore(tmp_path)
        path = store.save(surface)
        service = YieldService(store=SurfaceStore(tmp_path), cache_capacity=1)
        healthy = service.query(surface.key, WIDTHS, DENSITIES)
        assert not healthy.degraded

        corrupt_file(path, seed=2)
        service.cache.put("filler", surface)  # evict the key from the LRU
        degraded = service.query(surface.key, WIDTHS, DENSITIES)
        assert degraded.degraded
        assert degraded.degradation == ("stale_cache",)
        np.testing.assert_array_equal(
            degraded.failure_probability, healthy.failure_probability
        )

    def test_no_stale_copy_raises_corrupt_artifact(self, surface, tmp_path):
        store = SurfaceStore(tmp_path)
        path = store.save(surface)
        corrupt_file(path, seed=3)
        service = YieldService(store=SurfaceStore(tmp_path))
        with pytest.raises(CorruptArtifactError):
            service.query(surface.key, WIDTHS, DENSITIES)
        assert service.breaker.stats()["failures"] == 1

    def test_open_breaker_skips_store_entirely(self, surface, tmp_path):
        store = SurfaceStore(tmp_path)
        store.save(surface)
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=3600.0)
        service = YieldService(
            store=SurfaceStore(tmp_path), cache_capacity=1, breaker=breaker
        )
        healthy = service.query(surface.key, WIDTHS, DENSITIES)
        breaker.record_failure()  # breaker opens; store must not be touched
        service.cache.put("filler", surface)
        result = service.query(surface.key, WIDTHS, DENSITIES)
        assert result.degradation == ("stale_cache",)
        np.testing.assert_array_equal(
            result.failure_probability, healthy.failure_probability
        )

    def test_degraded_query_counter(self, surface, tmp_path):
        store = SurfaceStore(tmp_path)
        path = store.save(surface)
        service = YieldService(store=SurfaceStore(tmp_path), cache_capacity=1)
        service.query(surface.key, WIDTHS, DENSITIES)
        assert service.degraded_queries == 0
        corrupt_file(path, seed=4)
        service.cache.put("filler", surface)
        service.query(surface.key, WIDTHS, DENSITIES)
        # Per-entry accounting: every answer in the degraded batch counts,
        # so the counter is directly comparable with queries_served.
        assert service.degraded_queries == WIDTHS.size
        assert service.queries_served == 2 * WIDTHS.size


class TestDeadlineClamping:
    def test_expired_deadline_clamps_out_of_grid(self, surface):
        service = YieldService()
        key = service.register(surface)
        widths = np.array([150.0, 250.0])  # first is out of grid
        densities = np.array([0.25, 0.25])
        exact = service.query(key, widths, densities)
        clamped = service.query(key, widths, densities, deadline_s=0.0)
        assert clamped.degradation == ("deadline_clamped",)
        # Out-of-grid entry gets the trivially correct [0, 1] bounds.
        assert clamped.failure_lower[0] == 0.0
        assert clamped.failure_upper[0] == 1.0
        # The in-grid entry is untouched by the clamp.
        np.testing.assert_allclose(
            clamped.failure_probability[1], exact.failure_probability[1]
        )
        assert clamped.bounds_contain(exact.failure_probability).all()

    def test_unbounded_deadline_stays_exact(self, surface):
        service = YieldService()
        key = service.register(surface)
        result = service.query(
            key, np.array([150.0]), np.array([0.25]), deadline_s=None
        )
        assert not result.degraded
        assert result.degradation == ("none",)

    def test_in_grid_queries_never_clamp(self, surface):
        service = YieldService(deadline_s=0.0)
        key = service.register(surface)
        result = service.query(key, WIDTHS, DENSITIES)
        assert not result.degraded
