"""Regressions for the PR-7 serving-ladder fixes.

Pre-fix behaviours these tests fail against:

* a *prefix* query that resolved to a surface already in the LRU called
  ``breaker.record_success()`` without touching the store, silently
  resetting a failure count earned by real store faults;
* the stale-copy registry grew without bound — one entry per surface
  ever served — leaking memory in a long-lived server;
* missing keys tripped the breaker's probe accounting (a "no such key"
  answer proves nothing about store health).
"""

import numpy as np
import pytest

from repro.resilience import CircuitBreaker
from repro.serving.service import YieldService
from repro.surface.builder import SurfaceBuilder, SweepSpec
from repro.surface.grid import GridAxis
from repro.surface.surface import SurfaceStore


def _surface(w_low: float = 200.0):
    spec = SweepSpec(
        scenario="uncorrelated",
        width_axis=GridAxis.from_range("width_nm", w_low, w_low + 200.0, 3),
        density_axis=GridAxis.from_range("cnt_density_per_um", 0.15, 0.35, 3),
        max_refinement_rounds=1,
    )
    return SurfaceBuilder(spec).build()


class TestPrefixResolveBreakerIsolation:
    def test_lru_hit_under_prefix_does_not_reset_failures(self, tmp_path):
        surface = _surface()
        SurfaceStore(tmp_path).save(surface)
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=3600.0)
        service = YieldService(store=SurfaceStore(tmp_path), breaker=breaker)

        # First resolve actually loads from the store — success is real.
        service.resolve(surface.key)
        assert breaker.stats()["failures"] == 0

        # The store then faults twice (e.g. transient I/O elsewhere).
        breaker.record_failure()
        breaker.record_failure()

        # A *prefix* query misses the LRU under the prefix, resolves the
        # full key via the store index, and hits the LRU there — no load
        # happened, so the earned failure count must survive.
        resolved, degradation = service.resolve("uncorrelated")
        assert resolved.key == surface.key
        assert degradation == "none"
        assert breaker.stats()["failures"] == 2

    def test_actual_store_load_does_reset_failures(self, tmp_path):
        surface = _surface()
        SurfaceStore(tmp_path).save(surface)
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=3600.0)
        service = YieldService(
            store=SurfaceStore(tmp_path), cache_capacity=1, breaker=breaker
        )
        breaker.record_failure()
        service.resolve(surface.key)  # cold cache: a real, verified load
        assert breaker.stats()["failures"] == 0

    def test_missing_key_releases_probe_without_recording(self, tmp_path):
        surface = _surface()
        SurfaceStore(tmp_path).save(surface)
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=3600.0)
        service = YieldService(store=SurfaceStore(tmp_path), breaker=breaker)
        breaker.record_failure()
        with pytest.raises(KeyError):
            service.resolve("no-such-surface")
        stats = breaker.stats()
        assert stats["failures"] == 1      # neither reset nor incremented
        assert stats["state"] == "closed"  # and no probe left dangling


class TestStaleCacheBound:
    def test_stale_registry_is_bounded_under_churn(self, tmp_path):
        store = SurfaceStore(tmp_path)
        keys = []
        for index in range(7):
            surface = _surface(w_low=200.0 + 10.0 * index)
            store.save(surface)
            keys.append(surface.key)
        assert len(set(keys)) == 7  # distinct content hashes

        service = YieldService(
            store=SurfaceStore(tmp_path), cache_capacity=1, stale_capacity=3
        )
        for key in keys:
            service.resolve(key)
        assert len(service._stale) <= 3
        # Recency order: only the most recently served copies survive.
        assert set(service._stale) == set(keys[-3:])
        assert service.stats()["stale_surfaces"] == 3

    def test_re_serving_refreshes_recency(self, tmp_path):
        store = SurfaceStore(tmp_path)
        keys = []
        for index in range(4):
            surface = _surface(w_low=300.0 + 10.0 * index)
            store.save(surface)
            keys.append(surface.key)
        service = YieldService(
            store=SurfaceStore(tmp_path), cache_capacity=1, stale_capacity=2
        )
        service.resolve(keys[0])
        service.resolve(keys[1])
        service.resolve(keys[0])  # refresh 0; 1 is now the LRU entry
        service.resolve(keys[2])
        assert set(service._stale) == {keys[0], keys[2]}

    def test_stale_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            YieldService(stale_capacity=0)

    def test_default_stale_capacity_scales_with_cache(self):
        service = YieldService(cache_capacity=5)
        assert service.stale_capacity == 20

    def test_queries_served_counts_entries(self, tmp_path):
        surface = _surface()
        SurfaceStore(tmp_path).save(surface)
        service = YieldService(store=SurfaceStore(tmp_path))
        widths = np.array([250.0, 300.0, 350.0])
        service.query(surface.key, widths, np.full(3, 0.25))
        service.query(surface.key, widths[:1], np.array([0.25]))
        assert service.queries_served == 4
        assert service.degraded_queries == 0
