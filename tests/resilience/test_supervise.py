"""Chaos tests for the supervised executor: injected worker deaths,
timeouts, retry budgets, and checkpoint integration."""

import numpy as np
import pytest

from repro.resilience import (
    CheckpointStore,
    FaultPlan,
    RetryPolicy,
    SeededChunk,
    SupervisorError,
)
from repro.resilience.supervise import run_supervised, seed_sequences_for


def _sum_worker(payload, n_trials, rng):
    """A deterministic stand-in for a Monte Carlo chunk worker."""
    return float(payload) + float(rng.standard_normal(n_trials).sum())


def _make_tasks(n_units=4, seed=123):
    rng = np.random.default_rng(seed)
    seqs, bit_generator = seed_sequences_for(rng, n_units)
    return [
        SeededChunk(
            worker=_sum_worker,
            payload=10.0 * unit,
            n_trials=64,
            seed=seq,
            bit_generator=bit_generator,
        )
        for unit, seq in enumerate(seqs)
    ]


class TestInProcessSupervision:
    def test_no_faults_matches_direct_execution(self):
        expected = [task() for task in _make_tasks()]
        got = run_supervised(_make_tasks())
        assert got == expected

    def test_killed_unit_retries_bitwise_identical(self):
        expected = [task() for task in _make_tasks()]
        got = run_supervised(
            _make_tasks(),
            policy=RetryPolicy(max_retries=2, backoff_s=0.0),
            faults=FaultPlan(kill_units=(1,), kill_attempts=1),
        )
        assert got == expected

    def test_retry_budget_exhaustion_raises_structured_error(self):
        with pytest.raises(SupervisorError) as err:
            run_supervised(
                _make_tasks(),
                policy=RetryPolicy(max_retries=1, backoff_s=0.0),
                faults=FaultPlan(kill_units=(2,), kill_attempts=5),
            )
        assert err.value.unit == 2
        assert err.value.attempts == 2
        assert "retry budget exhausted" in str(err.value)

    def test_exit_mode_downgraded_to_raise_in_process(self):
        # kill_mode="exit" would take the test runner down with it; the
        # in-process path must downgrade it to a raised WorkerCrash.
        expected = [task() for task in _make_tasks()]
        got = run_supervised(
            _make_tasks(),
            policy=RetryPolicy(max_retries=1, backoff_s=0.0),
            faults=FaultPlan(kill_units=(0,), kill_attempts=1, kill_mode="exit"),
        )
        assert got == expected

    def test_nan_injection_poisons_result(self):
        def array_worker(payload, n_trials, rng):
            return rng.standard_normal(n_trials)

        rng = np.random.default_rng(5)
        seqs, bg = seed_sequences_for(rng, 2)
        tasks = [
            SeededChunk(array_worker, None, 16, seq, bg) for seq in seqs
        ]
        results = run_supervised(tasks, faults=FaultPlan(nan_units=(1,)))
        assert not np.isnan(results[0]).any()
        assert np.isnan(results[1]).any()


class TestPoolSupervision:
    def test_worker_death_rebuilds_pool_and_matches(self):
        expected = [task() for task in _make_tasks()]
        got = run_supervised(
            _make_tasks(),
            n_workers=2,
            policy=RetryPolicy(max_retries=2, backoff_s=0.0),
            faults=FaultPlan(kill_units=(1,), kill_attempts=1, kill_mode="exit"),
        )
        assert got == expected

    def test_timeout_exhausts_retries(self):
        with pytest.raises(SupervisorError) as err:
            run_supervised(
                _make_tasks(n_units=2),
                n_workers=2,
                policy=RetryPolicy(
                    max_retries=0, timeout_s=0.15, backoff_s=0.0
                ),
                faults=FaultPlan(delay_units=(1,), delay_s=5.0),
            )
        assert err.value.unit == 1

    def test_pool_no_faults_matches_in_process(self):
        expected = run_supervised(_make_tasks())
        got = run_supervised(_make_tasks(), n_workers=2)
        assert got == expected


class TestCheckpointIntegration:
    def test_resume_skips_completed_units(self, tmp_path):
        store = CheckpointStore(tmp_path)
        fingerprint = "fp-supervise"
        first = store.campaign("sup", fingerprint, 4)
        expected = run_supervised(_make_tasks(), checkpoint=first)

        def poisoned_worker(payload, n_trials, rng):
            raise AssertionError("resume must not recompute saved units")

        rng = np.random.default_rng(123)
        seqs, bg = seed_sequences_for(rng, 4)
        poisoned = [
            SeededChunk(poisoned_worker, 10.0 * u, 64, seq, bg)
            for u, seq in enumerate(seqs)
        ]
        resumed = store.campaign("sup", fingerprint, 4)
        got = run_supervised(poisoned, checkpoint=resumed)
        assert got == expected

    def test_aborted_campaign_resumes_bitwise(self, tmp_path):
        store = CheckpointStore(tmp_path)
        fingerprint = "fp-abort"
        expected = [task() for task in _make_tasks()]
        with pytest.raises(SupervisorError):
            run_supervised(
                _make_tasks(),
                policy=RetryPolicy(max_retries=0, backoff_s=0.0),
                faults=FaultPlan(kill_units=(2,), kill_attempts=1),
                checkpoint=store.campaign("camp", fingerprint, 4),
            )
        saved = store.campaign("camp", fingerprint, 4).completed_units()
        assert saved and 2 not in saved
        got = run_supervised(
            _make_tasks(), checkpoint=store.campaign("camp", fingerprint, 4)
        )
        assert got == expected


class TestSeedDerivation:
    def test_spawned_sequences_match_generator_spawn(self):
        # The resilience layer's whole determinism story rests on this
        # numpy contract; pin it so an upstream change is caught here.
        parent_a = np.random.default_rng(77)
        parent_b = np.random.default_rng(77)
        children = parent_a.spawn(3)
        seqs, bit_generator = seed_sequences_for(parent_b, 3)
        for child, seq in zip(children, seqs):
            rebuilt = np.random.Generator(
                getattr(np.random, bit_generator)(seq)
            )
            assert (
                child.standard_normal(8).tolist()
                == rebuilt.standard_normal(8).tolist()
            )

    def test_rebuilding_twice_from_one_sequence_is_identical(self):
        rng = np.random.default_rng(7)
        (seq,), bit_generator = seed_sequences_for(rng, 1)
        chunk = SeededChunk(
            worker=lambda payload, n, r: r.standard_normal(n).tolist(),
            payload=None,
            n_trials=16,
            seed=seq,
            bit_generator=bit_generator,
        )
        assert chunk() == chunk()
