"""End-to-end tests of the ASGI application (no network involved).

Drives :class:`~repro.service.app.YieldApp` directly through the ASGI
protocol and cross-checks the wire answers against the in-process
:class:`~repro.serving.service.YieldService` contract.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.serving.service import YieldService
from repro.service.app import YieldApp
from repro.surface.builder import SurfaceBuilder, SweepSpec
from repro.surface.grid import GridAxis
from repro.surface.surface import SurfaceStore


def _build_surface(w_low=200.0, scenario="uncorrelated"):
    spec = SweepSpec(
        scenario=scenario,
        width_axis=GridAxis.from_range("width_nm", w_low, w_low + 200.0, 4),
        density_axis=GridAxis.from_range("cnt_density_per_um", 0.15, 0.35, 4),
        max_refinement_rounds=1,
    )
    return SurfaceBuilder(spec).build()


@pytest.fixture(scope="module")
def surface():
    return _build_surface()


@pytest.fixture()
def app(surface, tmp_path):
    SurfaceStore(tmp_path).save(surface)
    service = YieldService(store=SurfaceStore(tmp_path))
    application = YieldApp(service, refine_capacity=8, refine_workers=1)
    yield application
    application.refinement.close()


def call(app, method, path, body=b"", decode=True):
    """One ASGI round-trip; returns (status, parsed JSON body)."""
    if isinstance(body, (dict, list)):
        body = json.dumps(body).encode("utf-8")
    scope = {
        "type": "http",
        "asgi": {"version": "3.0"},
        "http_version": "1.1",
        "method": method,
        "path": path,
        "raw_path": path.encode(),
        "query_string": b"",
        "headers": [],
        "server": ("testserver", 80),
        "client": ("testclient", 1),
    }
    messages = []

    async def receive():
        return {"type": "http.request", "body": body, "more_body": False}

    async def send(message):
        messages.append(message)

    asyncio.run(app(scope, receive, send))
    status = messages[0]["status"]
    raw = b"".join(
        m.get("body", b"") for m in messages
        if m["type"] == "http.response.body"
    )
    return status, (json.loads(raw) if decode else raw)


QUERY = {
    "surface": None,  # filled per-test with the surface key
    "width_nm": [250.0, 330.0],
    "cnt_density_per_um": [0.25, 0.30],
    "device_count": 1e6,
}


def _query_body(surface, **overrides):
    body = dict(QUERY)
    body["surface"] = surface.key
    body.update(overrides)
    return body


class TestBasicRoutes:
    def test_healthz(self, app):
        status, body = call(app, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_unknown_route_is_404(self, app):
        status, body = call(app, "GET", "/nope")
        assert status == 404
        assert body["error"]["status"] == 404

    def test_wrong_method_is_404(self, app):
        status, _ = call(app, "DELETE", "/v1/query")
        assert status == 404


class TestQueryEndpoint:
    def test_bounds_match_in_process_service(self, app, surface):
        status, wire = call(app, "POST", "/v1/query", _query_body(surface))
        assert status == 200
        local = app.service.query(
            surface.key,
            np.array(QUERY["width_nm"]),
            cnt_density_per_um=np.array(QUERY["cnt_density_per_um"]),
            device_count=QUERY["device_count"],
        )
        for field, expected in (
            ("failure_probability", local.failure_probability),
            ("failure_lower", local.failure_lower),
            ("failure_upper", local.failure_upper),
            ("chip_yield", local.chip_yield),
            ("yield_lower", local.yield_lower),
            ("yield_upper", local.yield_upper),
        ):
            assert wire[field] == expected.tolist(), field
        assert wire["scenario"] == "uncorrelated"
        assert wire["n_queries"] == 2
        assert wire["degraded"] is False
        assert wire["degradation"] == ["none"]

    def test_malformed_json_is_400(self, app):
        status, body = call(app, "POST", "/v1/query", b"{not json")
        assert status == 400
        assert "invalid JSON" in body["error"]["message"]

    def test_schema_violation_is_400(self, app, surface):
        status, body = call(
            app, "POST", "/v1/query", _query_body(surface, widht_nm=[1.0])
        )
        assert status == 400
        assert "unknown fields" in body["error"]["message"]

    def test_unknown_surface_is_404(self, app):
        status, _ = call(
            app, "POST", "/v1/query",
            {"surface": "missing", "width_nm": [250.0]},
        )
        assert status == 404

    def test_deadline_clamp_flag_reaches_the_wire(self, app, surface):
        status, wire = call(
            app, "POST", "/v1/query",
            _query_body(surface, width_nm=[150.0], cnt_density_per_um=[0.25],
                        deadline_s=0.0),
        )
        assert status == 200
        assert wire["degraded"] is True
        assert wire["degradation"] == ["deadline_clamped"]
        assert wire["failure_lower"][0] == 0.0
        assert wire["failure_upper"][0] == 1.0


class TestRefinementFlow:
    def test_mc_query_never_samples_inline(self, app, surface):
        body = _query_body(
            surface,
            width_nm=[150.0],          # off-grid
            cnt_density_per_um=[0.25],
            fallback="mc",
            mc_samples=50,
        )
        status, first = call(app, "POST", "/v1/query", body)
        assert status == 200
        assert first["refinement"]["status"] == "queued"
        assert first["refinement"]["pending_points"] == 1

        assert app.refinement.drain(timeout_s=30.0)

        status, second = call(app, "POST", "/v1/query", body)
        assert status == 200
        assert second["refinement"]["status"] == "refined"
        assert second["refinement"]["pending_points"] == 0
        # Both answers carry valid bounds around a probability.
        for wire in (first, second):
            assert 0.0 <= wire["failure_lower"][0] <= wire["failure_upper"][0] <= 1.0

    def test_in_grid_mc_needs_no_refinement(self, app, surface):
        status, wire = call(
            app, "POST", "/v1/query",
            _query_body(surface, fallback="mc"),
        )
        assert status == 200
        assert wire["refinement"]["status"] == "not_needed"

    def test_duplicate_submission_reports_duplicate(self, app, surface):
        body = _query_body(
            surface, width_nm=[160.0], cnt_density_per_um=[0.25],
            fallback="mc", mc_samples=4000,
        )
        status, first = call(app, "POST", "/v1/query", body)
        assert status == 200
        assert first["refinement"]["status"] == "queued"
        # An immediate resubmit dedupes against the pending/active job —
        # or, if the worker already finished, answers from refined values.
        status, second = call(app, "POST", "/v1/query", body)
        assert second["refinement"]["status"] in ("duplicate", "refined")


class TestSurfaceEndpoints:
    def test_list_surfaces(self, app, surface):
        status, body = call(app, "GET", "/v1/surfaces")
        assert status == 200
        assert body["count"] == 1
        entry = body["surfaces"][0]
        assert entry["key"] == surface.key

    def test_get_surface_by_key_and_prefix(self, app, surface):
        status, body = call(app, "GET", f"/v1/surfaces/{surface.key}")
        assert status == 200
        assert body["key"] == surface.key
        status, body = call(app, "GET", "/v1/surfaces/uncorrelated")
        assert status == 200
        assert body["key"] == surface.key

    def test_get_missing_surface_is_404(self, app):
        status, _ = call(app, "GET", "/v1/surfaces/ghost")
        assert status == 404

    def test_upload_hot_reloads_a_new_version(self, app, tmp_path):
        newer = _build_surface(w_low=260.0)
        scratch = tmp_path / "scratch"   # outside the store root
        scratch.mkdir()
        artifact = scratch / "upload.npz"
        newer.save(artifact)
        payload = artifact.read_bytes()

        status, body = call(app, "POST", "/v1/surfaces", payload)
        assert status == 201
        assert body["key"] == newer.key
        assert body["persisted"] is True

        # The uploaded version answers queries immediately.
        status, wire = call(
            app, "POST", "/v1/query",
            {"surface": newer.key, "width_nm": [300.0],
             "cnt_density_per_um": [0.25]},
        )
        assert status == 200

        # Content-addressed: re-uploading identical bytes is idempotent.
        status, again = call(app, "POST", "/v1/surfaces", payload)
        assert status == 201
        assert again["key"] == body["key"]

        status, listing = call(app, "GET", "/v1/surfaces")
        assert listing["count"] == 2

    def test_upload_garbage_is_400(self, app):
        status, body = call(app, "POST", "/v1/surfaces", b"not an npz")
        assert status == 400
        assert "not a valid surface artifact" in body["error"]["message"]

    def test_upload_empty_body_is_400(self, app):
        status, _ = call(app, "POST", "/v1/surfaces", b"")
        assert status == 400


class TestMetricsEndpoint:
    def test_metrics_reflect_traffic(self, app, surface):
        call(app, "POST", "/v1/query", _query_body(surface))
        call(app, "POST", "/v1/query", b"{broken")
        call(app, "GET", "/healthz")
        status, body = call(app, "GET", "/v1/metrics")
        assert status == 200
        query_route = body["routes"]["POST /v1/query"]
        assert query_route["requests"] == 2
        assert query_route["status"] == {"200": 1, "400": 1}
        assert query_route["errors"] == 0
        assert query_route["latency"]["count"] == 2
        assert body["service"]["queries_served"] == 2
        assert body["service"]["breaker"]["state"] == "closed"
        assert body["refinement"]["capacity"] == 8
        json.dumps(body, allow_nan=False)


class TestLifespan:
    def test_startup_and_shutdown_complete(self, app):
        incoming = [
            {"type": "lifespan.startup"},
            {"type": "lifespan.shutdown"},
        ]
        outgoing = []

        async def receive():
            return incoming.pop(0)

        async def send(message):
            outgoing.append(message)

        asyncio.run(app({"type": "lifespan"}, receive, send))
        assert [m["type"] for m in outgoing] == [
            "lifespan.startup.complete",
            "lifespan.shutdown.complete",
        ]
