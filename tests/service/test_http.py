"""Tests of the bundled asyncio HTTP/1.1 server over real sockets.

Boots :class:`~repro.service.http.AsgiHttpServer` on an ephemeral port
in a background thread and speaks raw HTTP to it — keep-alive reuse,
malformed requests, and a full query round-trip cross-checked against
the in-process service.
"""

import asyncio
import json
import socket
import threading

import numpy as np
import pytest

from repro.serving.service import YieldService
from repro.service.app import YieldApp
from repro.service.http import AsgiHttpServer, StoreAppFactory, build_app
from repro.surface.builder import SurfaceBuilder, SweepSpec
from repro.surface.grid import GridAxis
from repro.surface.surface import SurfaceStore


@pytest.fixture(scope="module")
def surface():
    return SurfaceBuilder(SweepSpec(
        scenario="uncorrelated",
        width_axis=GridAxis.from_range("width_nm", 200.0, 400.0, 4),
        density_axis=GridAxis.from_range("cnt_density_per_um", 0.15, 0.35, 4),
        max_refinement_rounds=1,
    )).build()


class _ServerThread:
    """Run an AsgiHttpServer on its own event loop in a thread."""

    def __init__(self, app) -> None:
        self.app = app
        self.port = None
        self._ready = threading.Event()
        self._stop = None
        self._loop = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("server thread failed to start")

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = AsgiHttpServer(self.app, host="127.0.0.1", port=0)
        await server.start()
        self.port = server.port
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await server.close()

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10.0)


@pytest.fixture()
def server(surface, tmp_path):
    SurfaceStore(tmp_path).save(surface)
    service = YieldService(store=SurfaceStore(tmp_path))
    app = YieldApp(service, refine_capacity=4, refine_workers=1)
    handle = _ServerThread(app)
    handle.service = service
    yield handle
    handle.stop()
    app.refinement.close()


def _recv_response(sock):
    """Read one HTTP response (status, headers dict, body bytes)."""
    buffer = b""
    while b"\r\n\r\n" not in buffer:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("closed before headers")
        buffer += chunk
    head, _, rest = buffer.partition(b"\r\n\r\n")
    lines = head.split(b"\r\n")
    status = int(lines[0].split(b" ", 2)[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(b":")
        headers[name.strip().lower().decode()] = value.strip().decode()
    length = int(headers.get("content-length", "0"))
    while len(rest) < length:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("closed mid-body")
        rest += chunk
    return status, headers, rest[:length]


def _request(port, method, path, body=b"", extra=b"", sock=None):
    """Send one request; returns (status, headers, body, socket)."""
    if isinstance(body, dict):
        body = json.dumps(body).encode()
    if sock is None:
        sock = socket.create_connection(("127.0.0.1", port), timeout=10.0)
    sock.sendall(
        b"%s %s HTTP/1.1\r\nhost: test\r\ncontent-type: application/json\r\n"
        b"content-length: %d\r\n%s\r\n%s"
        % (method.encode(), path.encode(), len(body), extra, body)
    )
    status, headers, payload = _recv_response(sock)
    return status, headers, payload, sock


class TestHttpRoundTrip:
    def test_healthz_over_socket(self, server):
        status, headers, body, sock = _request(server.port, "GET", "/healthz")
        sock.close()
        assert status == 200
        assert headers["content-type"] == "application/json"
        assert json.loads(body)["status"] == "ok"

    def test_query_bounds_match_in_process(self, server, surface):
        widths = np.array([250.0, 330.0])
        densities = np.array([0.25, 0.30])
        status, _, raw, sock = _request(
            server.port, "POST", "/v1/query",
            {"surface": surface.key, "width_nm": widths.tolist(),
             "cnt_density_per_um": densities.tolist(), "device_count": 1e6},
        )
        sock.close()
        assert status == 200
        wire = json.loads(raw)
        local = server.service.query(
            surface.key, widths, cnt_density_per_um=densities,
            device_count=1e6,
        )
        assert wire["failure_probability"] == local.failure_probability.tolist()
        assert wire["failure_lower"] == local.failure_lower.tolist()
        assert wire["failure_upper"] == local.failure_upper.tolist()
        assert wire["chip_yield"] == local.chip_yield.tolist()

    def test_keep_alive_serves_many_requests_per_connection(self, server):
        sock = None
        for _ in range(5):
            status, headers, _, sock = _request(
                server.port, "GET", "/healthz", sock=sock
            )
            assert status == 200
            assert headers["connection"] == "keep-alive"
        sock.close()

    def test_connection_close_is_honoured(self, server):
        status, headers, _, sock = _request(
            server.port, "GET", "/healthz", extra=b"connection: close\r\n"
        )
        assert status == 200
        assert headers["connection"] == "close"
        assert sock.recv(1) == b""  # server closed its side
        sock.close()

    def test_malformed_request_line_is_400(self, server):
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=10.0)
        sock.sendall(b"NONSENSE\r\n\r\n")
        status, headers, _ = _recv_response(sock)
        sock.close()
        assert status == 400
        assert headers["connection"] == "close"

    def test_bad_content_length_is_400(self, server):
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=10.0)
        sock.sendall(b"GET /healthz HTTP/1.1\r\ncontent-length: moo\r\n\r\n")
        status, _, _ = _recv_response(sock)
        sock.close()
        assert status == 400

    def test_http_10_closes_by_default(self, server):
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=10.0)
        sock.sendall(b"GET /healthz HTTP/1.0\r\n\r\n")
        status, headers, _ = _recv_response(sock)
        sock.close()
        assert status == 200
        assert headers["connection"] == "close"


class TestFactories:
    def test_build_app_storeless(self):
        app = build_app(store=None, cache_capacity=2)
        try:
            assert app.service.store is None
        finally:
            app.refinement.close()

    def test_store_app_factory_is_picklable_and_builds(self, tmp_path, surface):
        import pickle

        SurfaceStore(tmp_path).save(surface)
        factory = StoreAppFactory(store=str(tmp_path), cache_capacity=3)
        clone = pickle.loads(pickle.dumps(factory))
        app = clone()
        try:
            assert app.service.cache.capacity == 3
            resolved, _ = app.service.resolve(surface.key)
            assert resolved.key == surface.key
        finally:
            app.refinement.close()
