"""Tests for the request-metrics primitives (histogram, routes)."""

import math
import threading

import pytest

from repro.service.metrics import LatencyHistogram, MetricsRegistry, RouteMetrics


class TestLatencyHistogram:
    def test_empty_histogram_quantiles_are_nan(self):
        histogram = LatencyHistogram()
        assert math.isnan(histogram.quantile(0.5))
        assert histogram.snapshot()["count"] == 0

    def test_quantile_is_conservative_upper_edge(self):
        histogram = LatencyHistogram(edges_s=(0.001, 0.01, 0.1))
        for _ in range(99):
            histogram.observe(0.0005)   # first bucket (edge 0.001)
        histogram.observe(0.05)         # third bucket (edge 0.1)
        assert histogram.quantile(0.5) == 0.001
        assert histogram.quantile(0.99) == 0.001
        assert histogram.quantile(1.0) == 0.1
        # Upper-edge convention: the estimate never understates.
        assert histogram.quantile(1.0) >= 0.05

    def test_overflow_bucket_reports_max(self):
        histogram = LatencyHistogram(edges_s=(0.001, 0.01))
        histogram.observe(5.0)
        assert histogram.quantile(1.0) == 5.0
        assert histogram.max_s == 5.0

    def test_mean_and_max_track_observations(self):
        histogram = LatencyHistogram()
        histogram.observe(0.010)
        histogram.observe(0.030)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 2
        assert snapshot["mean_s"] == pytest.approx(0.020)
        assert snapshot["max_s"] == 0.030

    def test_rejects_bad_edges_and_quantiles(self):
        with pytest.raises(ValueError):
            LatencyHistogram(edges_s=(0.01, 0.01))
        histogram = LatencyHistogram()
        with pytest.raises(ValueError):
            histogram.quantile(0.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_default_edges_span_10us_to_10s(self):
        histogram = LatencyHistogram()
        assert histogram.edges_s[0] == pytest.approx(1e-5)
        assert histogram.edges_s[-1] == pytest.approx(10.0)


class TestRouteMetrics:
    def test_5xx_counts_as_error(self):
        metrics = RouteMetrics()
        metrics.record(200, 0.001)
        metrics.record(404, 0.001)   # client errors are not server errors
        metrics.record(503, 0.001)
        snapshot = metrics.snapshot()
        assert snapshot["requests"] == 3
        assert snapshot["errors"] == 1
        assert snapshot["status"] == {"200": 1, "404": 1, "503": 1}

    def test_concurrent_recording_loses_nothing(self):
        metrics = RouteMetrics()
        n_threads, per_thread = 8, 500
        barrier = threading.Barrier(n_threads)

        def hammer():
            barrier.wait()
            for _ in range(per_thread):
                metrics.record(200, 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = metrics.snapshot()
        assert snapshot["requests"] == n_threads * per_thread
        assert snapshot["latency"]["count"] == n_threads * per_thread


class TestMetricsRegistry:
    def test_routes_created_on_first_use(self):
        registry = MetricsRegistry()
        registry.record("POST /v1/query", 200, 0.002)
        registry.record("GET /healthz", 200, 0.0001)
        assert registry.routes() == ["GET /healthz", "POST /v1/query"]
        snapshot = registry.snapshot()
        assert snapshot["POST /v1/query"]["requests"] == 1

    def test_same_route_object_reused(self):
        registry = MetricsRegistry()
        assert registry.route("r") is registry.route("r")
