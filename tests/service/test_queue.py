"""Tests for the bounded background refinement queue."""

import threading
import time

import pytest

from repro.service.queue import RefinementJob, RefinementQueue, refinement_job_key


def _job(surface="device-abc", widths=(150.0,), densities=(250.0,), samples=100):
    return RefinementJob(surface, widths, densities, samples)


class TestJobKeys:
    def test_key_is_stable_under_float_noise(self):
        a = refinement_job_key("s", [178.0], [250.0], 100)
        b = refinement_job_key("s", [178.0000000001], [250.0], 100)
        assert a == b

    def test_key_distinguishes_real_differences(self):
        base = refinement_job_key("s", [178.0], [250.0], 100)
        assert refinement_job_key("s", [179.0], [250.0], 100) != base
        assert refinement_job_key("s", [178.0], [251.0], 100) != base
        assert refinement_job_key("s", [178.0], [250.0], 200) != base
        assert refinement_job_key("t", [178.0], [250.0], 100) != base

    def test_job_validation(self):
        with pytest.raises(ValueError, match="match"):
            RefinementJob("s", [1.0, 2.0], [3.0], 100)
        with pytest.raises(ValueError, match="at least one point"):
            RefinementJob("s", [], [], 100)


class TestQueueLifecycle:
    def test_submit_runs_job_and_marks_done(self):
        ran = []
        queue = RefinementQueue(
            lambda *args: ran.append(args), capacity=4, workers=1
        )
        try:
            job = _job()
            assert queue.submit(job) == "queued"
            assert queue.drain(timeout_s=5.0)
            assert queue.is_done(job.key)
            assert ran == [("device-abc", (150.0,), (250.0,), 100)]
            assert queue.stats()["completed"] == 1
        finally:
            queue.close()

    def test_duplicates_are_collapsed(self):
        release = threading.Event()
        queue = RefinementQueue(
            lambda *args: release.wait(timeout=5.0), capacity=4, workers=1
        )
        try:
            assert queue.submit(_job()) == "queued"
            assert queue.submit(_job()) == "duplicate"   # pending or active
            release.set()
            assert queue.drain(timeout_s=5.0)
            assert queue.submit(_job()) == "duplicate"   # already done
            assert queue.stats()["duplicates"] == 2
        finally:
            queue.close()

    def test_full_queue_rejects_instead_of_blocking(self):
        release = threading.Event()
        queue = RefinementQueue(
            lambda *args: release.wait(timeout=5.0), capacity=1, workers=1
        )
        try:
            queue.submit(_job(widths=(1.0,)))  # taken by the worker
            time.sleep(0.05)
            assert queue.submit(_job(widths=(2.0,))) == "queued"
            started = time.perf_counter()
            assert queue.submit(_job(widths=(3.0,))) == "rejected"
            assert time.perf_counter() - started < 0.5  # never blocked
            assert queue.stats()["rejected"] == 1
        finally:
            release.set()
            queue.close()

    def test_failed_job_counts_and_is_not_done(self):
        def explode(*args):
            raise RuntimeError("sampler crashed")

        queue = RefinementQueue(explode, capacity=4, workers=1)
        try:
            job = _job()
            queue.submit(job)
            assert queue.drain(timeout_s=5.0)
            assert not queue.is_done(job.key)
            assert queue.stats()["failed"] == 1
        finally:
            queue.close()

    def test_closed_queue_rejects(self):
        queue = RefinementQueue(lambda *args: None, capacity=4, workers=1)
        queue.close()
        assert queue.submit(_job()) == "rejected"

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RefinementQueue(lambda *args: None, capacity=0)
        with pytest.raises(ValueError):
            RefinementQueue(lambda *args: None, workers=0)

    def test_done_registry_is_bounded(self):
        queue = RefinementQueue(
            lambda *args: None, capacity=64, workers=1, done_capacity=3
        )
        try:
            jobs = [_job(widths=(float(i),)) for i in range(1, 7)]
            for job in jobs:
                queue.submit(job)
            assert queue.drain(timeout_s=5.0)
            remembered = [job for job in jobs if queue.is_done(job.key)]
            assert len(remembered) <= 3
        finally:
            queue.close()
