"""Wire-schema tests: request validation and strict-JSON shaping."""

import json
import math

import numpy as np
import pytest

from repro.service.schemas import (
    MAX_BATCH,
    QueryRequest,
    SchemaError,
    error_body,
    json_safe,
    query_response,
)


def _payload(**overrides):
    payload = {"surface": "device", "width_nm": [100.0, 150.0]}
    payload.update(overrides)
    return payload


class TestQueryRequestValidation:
    def test_minimal_payload_parses(self):
        request = QueryRequest.from_payload(_payload())
        assert request.surface == "device"
        np.testing.assert_array_equal(request.width_nm, [100.0, 150.0])
        assert request.cnt_density_per_um is None
        assert request.device_count == 1.0
        assert request.fallback == "exact"
        assert request.deadline_s is None

    def test_scalar_width_becomes_array(self):
        request = QueryRequest.from_payload(_payload(width_nm=178.0))
        assert request.width_nm.shape == (1,)

    def test_rejects_non_object_body(self):
        with pytest.raises(SchemaError, match="JSON object"):
            QueryRequest.from_payload([1, 2, 3])

    def test_rejects_unknown_fields(self):
        with pytest.raises(SchemaError, match="unknown fields: widht_nm"):
            QueryRequest.from_payload(_payload(widht_nm=[1.0]))

    def test_rejects_missing_width(self):
        with pytest.raises(SchemaError, match="width_nm is required"):
            QueryRequest.from_payload({"surface": "device"})

    def test_rejects_empty_surface(self):
        with pytest.raises(SchemaError, match="surface"):
            QueryRequest.from_payload(_payload(surface=""))

    def test_rejects_non_numeric_width(self):
        with pytest.raises(SchemaError, match="width_nm"):
            QueryRequest.from_payload(_payload(width_nm=["a", "b"]))

    def test_rejects_non_finite_width(self):
        with pytest.raises(SchemaError, match="finite"):
            QueryRequest.from_payload(_payload(width_nm=[100.0, math.inf]))

    def test_rejects_negative_width(self):
        with pytest.raises(SchemaError, match="positive"):
            QueryRequest.from_payload(_payload(width_nm=[-1.0]))

    def test_rejects_oversized_batch(self):
        with pytest.raises(SchemaError, match="batch cap"):
            QueryRequest.from_payload(
                _payload(width_nm=[100.0] * (MAX_BATCH + 1))
            )

    def test_density_must_broadcast_or_match(self):
        with pytest.raises(SchemaError, match="cnt_density_per_um"):
            QueryRequest.from_payload(
                _payload(cnt_density_per_um=[250.0, 260.0, 270.0])
            )
        request = QueryRequest.from_payload(
            _payload(cnt_density_per_um=250.0)
        )
        assert request.cnt_density_per_um.shape == (1,)

    def test_device_count_scalar_or_match(self):
        request = QueryRequest.from_payload(_payload(device_count=3.3e7))
        assert request.device_count == 3.3e7
        request = QueryRequest.from_payload(_payload(device_count=[1e6, 2e6]))
        np.testing.assert_array_equal(request.device_count, [1e6, 2e6])
        with pytest.raises(SchemaError, match="device_count"):
            QueryRequest.from_payload(_payload(device_count=[1e6] * 3))

    def test_rejects_bad_fallback(self):
        with pytest.raises(SchemaError, match="fallback"):
            QueryRequest.from_payload(_payload(fallback="magic"))

    def test_rejects_bad_mc_samples(self):
        for bad in (0, -5, 1.5, True, "many"):
            with pytest.raises(SchemaError, match="mc_samples"):
                QueryRequest.from_payload(_payload(mc_samples=bad))

    def test_rejects_bad_deadline(self):
        for bad in (-1.0, math.nan, "soon", True):
            with pytest.raises(SchemaError, match="deadline_s"):
                QueryRequest.from_payload(_payload(deadline_s=bad))


class TestJsonSafe:
    def test_finite_float_array_passes_through(self):
        values = np.array([0.25, 1e-300, 0.75])
        assert json_safe(values) == [0.25, 1e-300, 0.75]

    def test_non_finite_floats_become_null(self):
        values = np.array([1.0, np.nan, np.inf, -np.inf])
        assert json_safe(values) == [1.0, None, None, None]
        assert json_safe(float("nan")) is None

    def test_integer_and_bool_arrays(self):
        assert json_safe(np.array([1, 2], dtype=np.int64)) == [1, 2]
        assert json_safe(np.array([True, False])) == [True, False]

    def test_numpy_scalars(self):
        assert json_safe(np.float64(0.5)) == 0.5
        assert json_safe(np.int32(7)) == 7
        assert json_safe(np.bool_(True)) is True

    def test_nested_structures(self):
        safe = json_safe({"a": [np.nan, np.array([1.0])], "b": (np.int8(1),)})
        assert safe == {"a": [None, [1.0]], "b": [1]}

    def test_output_is_strict_json(self):
        raw = json.dumps(
            json_safe({"x": np.array([np.inf, 1.0])}), allow_nan=False
        )
        assert json.loads(raw) == {"x": [None, 1.0]}


class TestResponseShaping:
    def test_query_response_carries_bounds_and_flags(self):
        class FakeResult:
            scenario = "device"
            n_queries = 2
            failure_probability = np.array([0.1, 0.2])
            failure_lower = np.array([0.09, 0.19])
            failure_upper = np.array([0.11, 0.21])
            chip_yield = np.array([0.9, 0.8])
            yield_lower = np.array([0.89, 0.79])
            yield_upper = np.array([0.91, 0.81])
            interpolated = np.array([True, False])
            degraded = True
            degradation = ("stale_cache",)

        body = query_response(FakeResult(), refinement={"status": "queued"})
        assert body["failure_probability"] == [0.1, 0.2]
        assert body["interpolated"] == [True, False]
        assert body["degraded"] is True
        assert body["degradation"] == ["stale_cache"]
        assert body["refinement"] == {"status": "queued"}
        json.dumps(body, allow_nan=False)  # strictly serialisable

    def test_error_body_shape(self):
        assert error_body(404, "nope") == {
            "error": {"status": 404, "message": "nope"}
        }
