"""Tests for the content-hash-keyed surface LRU cache."""

import pytest

from repro.serving.cache import LRUCache


class TestLRUCache:
    def test_put_get_round_trip(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache and len(cache) == 1

    def test_miss_without_loader_returns_none(self):
        cache = LRUCache(capacity=2)
        assert cache.get("missing") is None
        assert cache.misses == 1

    def test_load_through_on_miss(self):
        cache = LRUCache(capacity=2)
        calls = []

        def loader():
            calls.append(1)
            return "value"

        assert cache.get("k", loader) == "value"
        assert cache.get("k", loader) == "value"
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a; b is now LRU
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_put_updates_existing_key_without_eviction(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert cache.get("a") == 10
        assert len(cache) == 2 and cache.evictions == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)

    def test_stats(self):
        cache = LRUCache(capacity=1)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert stats["size"] == 1 and stats["capacity"] == 1


class TestThreadSafety:
    def test_concurrent_misses_run_loader_once(self):
        import threading
        import time

        cache = LRUCache(capacity=4)
        calls = []
        started = threading.Barrier(6)

        def loader():
            calls.append(1)
            time.sleep(0.05)
            return "value"

        results = []

        def worker():
            started.wait()
            results.append(cache.get("k", loader))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1
        assert results == ["value"] * 6

    def test_failing_loader_propagates_to_all_waiters(self):
        import threading
        import time

        cache = LRUCache(capacity=4)
        calls = []
        errors = []

        def loader():
            calls.append(1)
            time.sleep(0.02)
            raise RuntimeError("disk on fire")

        def worker():
            try:
                cache.get("bad", loader)
            except RuntimeError as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1
        assert errors == ["disk on fire"] * 4
        assert "bad" not in cache  # failed loads must not cache

    def test_failed_key_can_be_retried(self):
        cache = LRUCache(capacity=4)

        def boom():
            raise RuntimeError("once")

        with pytest.raises(RuntimeError):
            cache.get("k", boom)
        assert cache.get("k", lambda: 42) == 42

    def test_concurrent_puts_respect_capacity(self):
        import threading

        cache = LRUCache(capacity=8)

        def worker(base):
            for i in range(50):
                cache.put(f"{base}-{i}", i)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 8


class TestSingleFlightAccounting:
    """Pre-PR-7, every single-flight follower counted as a miss, so the
    reported miss count could exceed the number of loads actually paid."""

    def test_followers_count_coalesced_not_missed(self):
        import threading

        cache = LRUCache(capacity=2)
        n_followers = 5
        release = threading.Event()
        entered = threading.Event()

        def slow_loader():
            entered.set()
            release.wait(timeout=5.0)
            return "value"

        results = []
        lock = threading.Lock()

        def get():
            value = cache.get("k", slow_loader)
            with lock:
                results.append(value)

        leader = threading.Thread(target=get)
        leader.start()
        assert entered.wait(timeout=5.0)
        followers = [threading.Thread(target=get) for _ in range(n_followers)]
        for thread in followers:
            thread.start()
        # Followers are parked on the flight; only the leader loads.
        release.set()
        leader.join()
        for thread in followers:
            thread.join()

        assert results == ["value"] * (n_followers + 1)
        assert cache.misses == 1
        assert cache.coalesced == n_followers
        assert cache.hits == 0

    def test_loader_exception_shared_and_key_stays_uncached(self):
        import threading

        cache = LRUCache(capacity=2)
        release = threading.Event()
        entered = threading.Event()

        def failing_loader():
            entered.set()
            release.wait(timeout=5.0)
            raise OSError("disk gone")

        errors = []
        lock = threading.Lock()

        def get():
            try:
                cache.get("k", failing_loader)
            except OSError as exc:
                with lock:
                    errors.append(exc)

        leader = threading.Thread(target=get)
        leader.start()
        assert entered.wait(timeout=5.0)
        follower = threading.Thread(target=get)
        follower.start()
        release.set()
        leader.join()
        follower.join()

        assert len(errors) == 2
        assert "k" not in cache
        # The next get retries the loader (a fresh miss, not a hit).
        assert cache.get("k", lambda: "ok") == "ok"
        assert cache.misses == 2

    def test_hit_rate_counts_coalesced_as_served(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.coalesced += 2  # as if two followers shared one load
        stats = cache.stats()
        assert stats["coalesced"] == 2
        assert stats["hit_rate"] == (1 + 2) / (1 + 2 + 0)
