"""Property-based tests (hypothesis) for the removal-eta surface family.

The serving contract of :class:`repro.surface.EtaSurfaceFamily` mirrors
the 2D layer's: every served value carries an error bound that never
excludes the exact joint opens+shorts closed form — on eta nodes, at
interior (interpolated) etas, off the swept eta range and off the 2D
grid alike.  A second contract is physical: served failure can only grow
as removal efficiency degrades (eta falls), on-node and fused alike.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.surface import EtaSurfaceFamily, GridAxis, SweepSpec

W_LOW, W_HIGH = 60.0, 200.0
D_LOW, D_HIGH = 200.0, 320.0
ETAS = (0.85, 0.92, 1.0)
METALLIC_FRACTION = 1.0 / 3.0

widths = st.floats(min_value=W_LOW, max_value=W_HIGH, allow_nan=False)
densities = st.floats(min_value=D_LOW, max_value=D_HIGH, allow_nan=False)
etas_in_range = st.floats(min_value=ETAS[0], max_value=ETAS[-1], allow_nan=False)


def family_spec(**overrides):
    base = dict(
        scenario="device",
        width_axis=GridAxis.from_range("width_nm", W_LOW, W_HIGH, 9),
        density_axis=GridAxis.from_range("cnt_density_per_um", D_LOW, D_HIGH, 5),
        metallic_fraction=METALLIC_FRACTION,
        tolerance_log=5e-3,
        max_refinement_rounds=3,
    )
    base.update(overrides)
    return SweepSpec(**base)


@pytest.fixture(scope="module")
def family():
    return EtaSurfaceFamily.build(family_spec(), ETAS)


def exact_log(family, w, d, eta):
    values, _ = EtaSurfaceFamily._evaluator_for(family.spec, eta).points(
        np.array([w]), np.array([d])
    )
    return float(values[0])


class TestEtaBoundContract:
    @settings(max_examples=150, deadline=None)
    @given(w=widths, d=densities, eta=etas_in_range)
    def test_bounds_never_exclude_exact_joint_value(self, family, w, d, eta):
        result = family.query(np.array([w]), np.array([d]), eta)
        exact = exact_log(family, w, d, eta)
        served = float(result.log_failure[0])
        bound = float(result.error_log[0])
        assert served - bound <= exact <= served + bound

    @settings(max_examples=50, deadline=None)
    @given(w=widths, d=densities)
    def test_on_node_queries_skip_the_eta_term(self, family, w, d):
        # A node eta serves that node's surface alone, so its bound is
        # the 2D bound only — strictly tighter than any fused neighbour's.
        node = family.query(np.array([w]), np.array([d]), ETAS[1])
        fused = family.query(
            np.array([w]), np.array([d]), 0.5 * (ETAS[1] + ETAS[2])
        )
        assert float(node.error_log[0]) <= float(fused.error_log[0])
        exact = exact_log(family, w, d, ETAS[1])
        assert abs(float(node.log_failure[0]) - exact) <= float(node.error_log[0])

    @settings(max_examples=50, deadline=None)
    @given(w=widths, d=densities, eta=st.floats(min_value=0.0, max_value=0.8))
    def test_off_range_eta_served_exactly(self, family, w, d, eta):
        result = family.query(np.array([w]), np.array([d]), eta)
        assert bool(result.exact[0])
        exact = exact_log(family, w, d, eta)
        assert float(result.log_failure[0]) == pytest.approx(exact, abs=1e-12)

    @settings(max_examples=50, deadline=None)
    @given(d=densities, eta=etas_in_range)
    def test_off_grid_points_served_exactly(self, family, d, eta):
        w = W_HIGH * 2.0  # outside the swept width axis
        result = family.query(np.array([w]), np.array([d]), eta)
        assert bool(result.exact[0])
        exact = exact_log(family, w, d, eta)
        assert float(result.log_failure[0]) == pytest.approx(exact, abs=1e-12)

    @settings(max_examples=100, deadline=None)
    @given(w=widths, d=densities, e1=etas_in_range, e2=etas_in_range)
    def test_served_failure_nonincreasing_in_eta(self, family, w, d, e1, e2):
        # Better metallic removal can only lower the served failure; the
        # eta interpolation is linear between nodes whose values are
        # themselves monotone, so the fused values inherit the order.
        lo, hi = sorted((e1, e2))
        worse = family.query(np.array([w]), np.array([d]), lo)
        better = family.query(np.array([w]), np.array([d]), hi)
        assert float(better.log_failure[0]) <= float(worse.log_failure[0]) + 1e-9


class TestFamilyGuards:
    def test_tilted_method_rejected(self):
        with pytest.raises(ValueError, match="closed-form"):
            EtaSurfaceFamily.build(
                family_spec(scenario="device", method="tilted",
                            metallic_fraction=0.0),
                ETAS,
            )

    def test_empty_etas_rejected(self):
        with pytest.raises(ValueError, match="removal_etas"):
            EtaSurfaceFamily.build(family_spec(), ())

    def test_mismatched_query_shapes_rejected(self, family):
        with pytest.raises(ValueError, match="shape"):
            family.query(np.array([80.0, 90.0]), np.array([250.0]), 0.9)

    def test_describe_reports_the_axis(self, family):
        info = family.describe()
        assert info["removal_etas"] == list(ETAS)
        assert info["n_surfaces"] == len(ETAS)
        assert len(info["eta_interp_error_log"]) == len(ETAS) - 1
