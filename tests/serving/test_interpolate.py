"""Unit tests for the error-propagating interpolation layer."""

import numpy as np
import pytest

from repro.serving.interpolate import interpolate_log_failure
from repro.surface import GridAxis, SurfaceBuilder, SweepSpec, YieldSurface


@pytest.fixture(scope="module")
def device_surface():
    return SurfaceBuilder(SweepSpec(
        width_axis=GridAxis.from_range("width_nm", 60.0, 200.0, 9),
        density_axis=GridAxis.from_range("cnt_density_per_um", 200.0, 300.0, 5),
    )).build()


def test_rejects_negative_sigma(device_surface):
    with pytest.raises(ValueError, match="n_sigma"):
        interpolate_log_failure(
            device_surface, np.array([100.0]), np.array([250.0]), n_sigma=-1.0
        )


def test_rejects_shape_mismatch(device_surface):
    with pytest.raises(ValueError, match="match in shape"):
        interpolate_log_failure(
            device_surface, np.array([100.0, 110.0]), np.array([250.0])
        )


def test_in_grid_mask(device_surface):
    result = interpolate_log_failure(
        device_surface,
        np.array([50.0, 100.0, 250.0]),
        np.array([250.0, 250.0, 250.0]),
    )
    assert result.in_grid.tolist() == [False, True, False]


def test_statistical_corner_errors_widen_bounds():
    surface = SurfaceBuilder(SweepSpec(
        width_axis=GridAxis.from_range("width_nm", 60.0, 120.0, 3),
        density_axis=GridAxis.from_range("cnt_density_per_um", 200.0, 300.0, 2),
        method="tilted",
        mc_samples=2_000,
        max_refinement_rounds=0,
    )).build()
    assert surface.max_stat_se_log > 0.0
    w = np.array([90.0])
    d = np.array([250.0])
    no_sigma = interpolate_log_failure(surface, w, d, n_sigma=0.0)
    with_sigma = interpolate_log_failure(surface, w, d, n_sigma=4.0)
    assert with_sigma.error_log[0] > no_sigma.error_log[0]
    # The widening is exactly bounded by the worst corner SE.
    assert with_sigma.error_log[0] <= (
        no_sigma.error_log[0] + 4.0 * surface.max_stat_se_log + 1e-15
    )


def test_clamps_log_to_non_positive():
    # A hand-built surface whose extrapolated corner would cross log p = 0.
    surface = YieldSurface(
        scenario="device",
        width_nm=np.array([1.0, 2.0]),
        cnt_density_per_um=np.array([1.0, 2.0]),
        log_failure=np.array([[-2.0, -1.0], [-1.0, -0.001]]),
        stat_se_log=np.zeros((2, 2)),
        interp_error_log=np.full((1, 1), 1e-9),
        metadata={},
    )
    result = interpolate_log_failure(
        surface, np.array([2.0]), np.array([2.0])
    )
    assert result.log_failure[0] <= 0.0
