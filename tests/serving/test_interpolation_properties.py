"""Property-based tests (hypothesis) for surface interpolation.

Three contracts the serving layer advertises:

* chip yield is monotone non-decreasing in the device width W (wider
  devices catch more tubes, on-grid and interpolated alike);
* yield is monotone in correlation strength — aligned-active can never
  serve a lower yield than non-aligned, which can never undercut
  uncorrelated growth, at matched query points;
* the reported error bounds never exclude the exact Eq. 2.2 / 3.1 value.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.correlation import (
    CorrelationParameters,
    LayoutScenario,
    RowYieldModel,
)
from repro.core.count_model import count_model_from_pitch
from repro.core.failure import CNFETFailureModel
from repro.growth.pitch import GammaPitch
from repro.serving import YieldService
from repro.surface import (
    GridAxis,
    SurfaceBuilder,
    SweepSpec,
    density_to_mean_pitch_nm,
)

W_LOW, W_HIGH = 60.0, 300.0
D_LOW, D_HIGH = 180.0, 350.0
CORRELATION = CorrelationParameters()

widths = st.floats(min_value=W_LOW, max_value=W_HIGH, allow_nan=False)
densities = st.floats(min_value=D_LOW, max_value=D_HIGH, allow_nan=False)


def build(scenario, pitch=None, tolerance=5e-3):
    return SurfaceBuilder(SweepSpec(
        scenario=scenario,
        width_axis=GridAxis.from_range("width_nm", W_LOW, W_HIGH, 17),
        density_axis=GridAxis.from_range("cnt_density_per_um", D_LOW, D_HIGH, 9),
        pitch=pitch if pitch is not None else SweepSpec().pitch,
        correlation=CORRELATION,
        tolerance_log=tolerance,
        max_refinement_rounds=4,
    )).build()


@pytest.fixture(scope="module")
def service():
    svc = YieldService()
    keys = {}
    keys["device"] = svc.register(build("device"))
    keys["device_gamma"] = svc.register(
        build("device", pitch=GammaPitch(4.0, 0.5))
    )
    for scenario in LayoutScenario:
        keys[scenario.value] = svc.register(build(scenario.value))
    return svc, keys


class TestMonotonicity:
    @settings(max_examples=200, deadline=None)
    @given(w1=widths, w2=widths, d=densities)
    def test_yield_non_decreasing_in_width(self, service, w1, w2, d):
        svc, keys = service
        w_lo, w_hi = sorted((w1, w2))
        result = svc.query(
            keys["device"],
            np.array([w_lo, w_hi]),
            cnt_density_per_um=np.array([d, d]),
            device_count=3.3e7,
        )
        assert result.chip_yield[1] >= result.chip_yield[0] - 1e-12

    @settings(max_examples=200, deadline=None)
    @given(w=widths, d=densities)
    def test_yield_monotone_in_correlation_strength(self, service, w, d):
        svc, keys = service
        order = [
            LayoutScenario.UNCORRELATED_GROWTH,
            LayoutScenario.DIRECTIONAL_NON_ALIGNED,
            LayoutScenario.DIRECTIONAL_ALIGNED,
        ]
        yields = [
            svc.query(
                keys[scenario.value],
                np.array([w]),
                cnt_density_per_um=np.array([d]),
                device_count=3.3e7,
            ).chip_yield[0]
            for scenario in order
        ]
        # Stronger correlation can only help; allow the combined
        # interpolation bound as slack between neighbouring scenarios.
        assert yields[1] >= yields[0] - 1e-9
        assert yields[2] >= yields[1] - 1e-9


class TestErrorBounds:
    @settings(max_examples=200, deadline=None)
    @given(w=widths, d=densities)
    def test_bounds_never_exclude_exact_device_value(self, service, w, d):
        svc, keys = service
        result = svc.query(
            keys["device"], np.array([w]), cnt_density_per_um=np.array([d])
        )
        pitch = SweepSpec().pitch.with_mean(density_to_mean_pitch_nm(d))
        model = CNFETFailureModel(
            count_model_from_pitch(pitch), SweepSpec().per_cnt_failure
        )
        exact = model.failure_probability(w)
        assert result.failure_lower[0] <= exact <= result.failure_upper[0]

    @settings(max_examples=50, deadline=None)
    @given(w=widths, d=densities)
    def test_bounds_never_exclude_exact_gamma_value(self, service, w, d):
        svc, keys = service
        result = svc.query(
            keys["device_gamma"], np.array([w]), cnt_density_per_um=np.array([d])
        )
        pitch = GammaPitch(4.0, 0.5).with_mean(density_to_mean_pitch_nm(d))
        model = CNFETFailureModel(
            count_model_from_pitch(pitch), SweepSpec().per_cnt_failure
        )
        exact = model.failure_probability(w)
        assert result.failure_lower[0] <= exact <= result.failure_upper[0]

    @settings(max_examples=100, deadline=None)
    @given(w=widths, d=densities)
    def test_bounds_never_exclude_exact_row_value(self, service, w, d):
        svc, keys = service
        scenario = LayoutScenario.UNCORRELATED_GROWTH
        result = svc.query(
            keys[scenario.value], np.array([w]), cnt_density_per_um=np.array([d])
        )
        pitch = SweepSpec().pitch.with_mean(density_to_mean_pitch_nm(d))
        model = CNFETFailureModel(
            count_model_from_pitch(pitch), SweepSpec().per_cnt_failure
        )
        exact = RowYieldModel(parameters=CORRELATION).row_failure_probability(
            scenario, model.failure_probability(w)
        )
        assert result.failure_lower[0] <= exact <= result.failure_upper[0]
