"""Tests for the batched YieldService: correctness, bounds, fallbacks."""

import math

import numpy as np
import pytest

from repro.core.circuit_yield import yield_from_uniform_failure_probability
from repro.core.correlation import CorrelationParameters, LayoutScenario, RowYieldModel
from repro.serving import YieldService
from repro.surface import GridAxis, SurfaceBuilder, SurfaceStore, SweepSpec

W_AXIS = GridAxis.from_range("width_nm", 40.0, 300.0, 17)
D_AXIS = GridAxis.from_range("cnt_density_per_um", 150.0, 400.0, 9)


@pytest.fixture(scope="module")
def device_surface():
    return SurfaceBuilder(
        SweepSpec(width_axis=W_AXIS, density_axis=D_AXIS)
    ).build()


@pytest.fixture(scope="module")
def aligned_surface():
    return SurfaceBuilder(
        SweepSpec(
            scenario="directional_aligned", width_axis=W_AXIS, density_axis=D_AXIS
        )
    ).build()


def exact_log_pf(width, density, per_cnt_failure=0.5333333333333333):
    return -(width * density / 1000.0) * (1.0 - per_cnt_failure)


class TestInterpolatedQueries:
    def test_matches_exact_closed_form_within_bounds(self, device_surface):
        service = YieldService()
        key = service.register(device_surface)
        rng = np.random.default_rng(3)
        w = rng.uniform(45.0, 295.0, 4096)
        d = rng.uniform(155.0, 395.0, 4096)
        result = service.query(key, w, d, device_count=3.3e7)
        exact = np.exp(exact_log_pf(w, d))
        assert result.bounds_contain(exact).all()
        np.testing.assert_allclose(result.failure_probability, exact, rtol=1e-9)
        assert result.interpolated.all()
        assert result.n_fallback == 0

    def test_chip_yield_matches_eq23(self, device_surface):
        service = YieldService()
        key = service.register(device_surface)
        result = service.query(key, np.array([178.0]), device_count=1e8)
        p = result.failure_probability[0]
        expected = yield_from_uniform_failure_probability(p, 1e8)
        assert result.chip_yield[0] == pytest.approx(expected, rel=1e-12)
        assert result.yield_lower[0] <= expected <= result.yield_upper[0]

    def test_default_density_is_family_reference(self, device_surface):
        service = YieldService()
        key = service.register(device_surface)
        implicit = service.query(key, np.array([100.0]))
        explicit = service.query(
            key, np.array([100.0]), cnt_density_per_um=np.array([250.0])
        )
        assert implicit.failure_probability[0] == pytest.approx(
            explicit.failure_probability[0]
        )

    def test_scalar_density_broadcasts(self, device_surface):
        service = YieldService()
        key = service.register(device_surface)
        result = service.query(
            key, np.array([80.0, 120.0]), cnt_density_per_um=np.array([250.0])
        )
        assert result.n_queries == 2

    def test_device_count_array(self, device_surface):
        service = YieldService()
        key = service.register(device_surface)
        counts = np.array([1e6, 1e8])
        result = service.query(
            key, np.array([178.0, 178.0]), device_count=counts
        )
        assert result.chip_yield[0] > result.chip_yield[1]

    def test_row_scenario_uses_row_count(self, aligned_surface):
        service = YieldService()
        key = service.register(aligned_surface)
        m_min = 3.3e7
        result = service.query(key, np.array([103.0]), device_count=m_min)
        params = CorrelationParameters(
            **aligned_surface.metadata["correlation"]
        )
        model = RowYieldModel(parameters=params)
        evaluated = model.evaluate(
            LayoutScenario.DIRECTIONAL_ALIGNED,
            result.failure_probability[0],
            m_min,
        )
        assert result.chip_yield[0] == pytest.approx(
            evaluated.chip_yield, rel=1e-9
        )


class TestFallbacks:
    def test_exact_fallback_outside_grid(self, device_surface):
        service = YieldService()
        key = service.register(device_surface)
        result = service.query(
            key,
            np.array([10.0, 100.0]),
            cnt_density_per_um=np.array([250.0, 250.0]),
        )
        assert not result.interpolated[0] and result.interpolated[1]
        assert result.n_fallback == 1
        assert result.failure_probability[0] == pytest.approx(
            math.exp(exact_log_pf(10.0, 250.0)), rel=1e-12
        )
        # Exact fallback on a closed-form surface is error-free.
        assert result.failure_lower[0] == pytest.approx(
            result.failure_upper[0], rel=1e-12
        )

    def test_fallback_none_raises(self, device_surface):
        service = YieldService()
        key = service.register(device_surface)
        with pytest.raises(ValueError, match="outside the surface grid"):
            service.query(key, np.array([10.0]), fallback="none")

    def test_mc_fallback_agrees_with_closed_form(self, device_surface):
        service = YieldService(n_sigma=5.0)
        key = service.register(device_surface)
        result = service.query(
            key, np.array([320.0]), fallback="mc", mc_samples=4_000
        )
        exact = math.exp(exact_log_pf(320.0, 250.0))
        assert result.failure_lower[0] <= exact <= result.failure_upper[0]
        # MC answers carry nonzero statistical bounds.
        assert result.failure_upper[0] > result.failure_lower[0]

    def test_mc_fallback_respects_sample_count(self, device_surface):
        # A repeat query with a larger sample budget must re-estimate, not
        # replay the cached low-sample answer.
        service = YieldService()
        key = service.register(device_surface)
        coarse = service.query(
            key, np.array([320.0]), fallback="mc", mc_samples=500
        )
        fine = service.query(
            key, np.array([320.0]), fallback="mc", mc_samples=20_000
        )
        coarse_width = coarse.failure_upper[0] / coarse.failure_lower[0]
        fine_width = fine.failure_upper[0] / fine.failure_lower[0]
        assert fine_width < coarse_width

    def test_unknown_fallback_mode_rejected(self, device_surface):
        service = YieldService()
        key = service.register(device_surface)
        with pytest.raises(ValueError, match="unknown fallback"):
            service.query(key, np.array([100.0]), fallback="wishful")


class TestSurfaceResolution:
    def test_register_and_query_by_key(self, device_surface):
        service = YieldService()
        key = service.register(device_surface)
        assert service.query(key, np.array([100.0])).n_queries == 1

    def test_unknown_key_without_store_raises(self):
        service = YieldService()
        with pytest.raises(KeyError):
            service.query("device-cafecafecafe", np.array([100.0]))

    def test_store_load_through_and_cache_hit(self, device_surface, tmp_path):
        store = SurfaceStore(tmp_path)
        store.save(device_surface)
        service = YieldService(store=store)
        service.query(device_surface.key, np.array([100.0]))
        service.query(device_surface.key[:10], np.array([110.0]))
        stats = service.cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_store_accepts_path_string(self, device_surface, tmp_path):
        SurfaceStore(tmp_path).save(device_surface)
        service = YieldService(store=str(tmp_path))
        result = service.query("device", np.array([100.0]))
        assert result.n_queries == 1

    def test_persist_requires_store(self, device_surface):
        with pytest.raises(ValueError, match="without a SurfaceStore"):
            YieldService().register(device_surface, persist=True)

    def test_persist_writes_artifact(self, device_surface, tmp_path):
        store = SurfaceStore(tmp_path)
        service = YieldService(store=store)
        service.register(device_surface, persist=True)
        assert store.keys() == [device_surface.key]

    def test_unpersisted_surface_resolvable_on_store_backed_service(
        self, device_surface, aligned_surface, tmp_path
    ):
        # A store-backed service must still answer for surfaces that were
        # registered in memory only (never persisted to the store).
        store = SurfaceStore(tmp_path)
        store.save(device_surface)
        service = YieldService(store=store)
        key = service.register(aligned_surface)
        assert service.query(key, np.array([100.0])).n_queries == 1

    def test_mismatched_query_shapes_rejected(self, device_surface):
        service = YieldService()
        key = service.register(device_surface)
        with pytest.raises(ValueError, match="match in shape"):
            service.query(
                key, np.array([1.0, 2.0]), cnt_density_per_um=np.array([1.0, 2.0, 3.0])
            )

    def test_registered_keys_survive_lru_eviction(self, device_surface,
                                                  aligned_surface):
        # register() promises the key stays queryable; evicting the only
        # in-memory copy of an unpersisted surface must not orphan it.
        service = YieldService(cache_capacity=1)
        first = service.register(device_surface)
        service.register(aligned_surface)   # evicts device_surface from LRU
        assert service.query(first, np.array([100.0])).n_queries == 1

    def test_queries_served_counter(self, device_surface):
        service = YieldService()
        key = service.register(device_surface)
        service.query(key, np.arange(60.0, 70.0))
        assert service.queries_served == 10
