"""Tests for the sweep builder: exactness, refinement, MC path, hooks."""

import math

import numpy as np
import pytest

from repro.core.correlation import (
    CorrelationParameters,
    LayoutScenario,
    RowYieldModel,
    propagate_row_failure_se,
    scenario_row_failure_probabilities,
)
from repro.core.count_model import count_model_from_pitch
from repro.core.failure import CNFETFailureModel
from repro.growth.pitch import (
    DeterministicPitch,
    ExponentialPitch,
    GammaPitch,
    TruncatedNormalPitch,
)
from repro.surface import (
    ExactEvaluator,
    GridAxis,
    SurfaceBuilder,
    SweepSpec,
    density_to_mean_pitch_nm,
    pitch_descriptor,
    pitch_from_descriptor,
)

W_AXIS = GridAxis.from_range("width_nm", 40.0, 300.0, 9)
D_AXIS = GridAxis.from_range("cnt_density_per_um", 150.0, 400.0, 5)


def small_spec(**overrides):
    defaults = dict(width_axis=W_AXIS, density_axis=D_AXIS)
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestSweepSpec:
    def test_rejects_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            small_spec(scenario="bogus")

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            small_spec(method="oracle")

    def test_rejects_bad_numbers(self):
        with pytest.raises(ValueError):
            small_spec(tolerance_log=0.0)
        with pytest.raises(ValueError):
            small_spec(max_refinement_rounds=-1)
        with pytest.raises(ValueError):
            small_spec(safety_factor=0.5)
        with pytest.raises(ValueError):
            small_spec(mc_samples=0)

    def test_auto_method_resolution(self):
        assert small_spec().resolved_method == "closed_form"
        assert (
            small_spec(pitch=GammaPitch(4.0, 0.5)).resolved_method == "closed_form"
        )
        trunc = TruncatedNormalPitch(nominal_mean_nm=4.0, nominal_std_nm=2.0)
        assert small_spec(pitch=trunc).resolved_method == "tilted"
        assert small_spec(pitch=trunc, method="closed_form").resolved_method == (
            "closed_form"
        )


class TestPitchDescriptor:
    @pytest.mark.parametrize("pitch", [
        ExponentialPitch(4.0),
        GammaPitch(4.0, 0.5),
        DeterministicPitch(3.0),
        TruncatedNormalPitch(nominal_mean_nm=4.0, nominal_std_nm=2.0),
    ])
    def test_round_trip(self, pitch):
        rebuilt = pitch_from_descriptor(pitch_descriptor(pitch))
        assert type(rebuilt) is type(pitch)
        assert rebuilt.mean_nm == pytest.approx(pitch.mean_nm)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown pitch family"):
            pitch_from_descriptor({"family": "CauchyPitch", "params": {}})


class TestDensityConversion:
    def test_density_to_mean_pitch(self):
        assert density_to_mean_pitch_nm(250.0) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            density_to_mean_pitch_nm(0.0)


class TestClosedFormBuild:
    def test_device_nodes_match_failure_model(self):
        spec = small_spec()
        surface = SurfaceBuilder(spec).build()
        for j, density in enumerate(surface.cnt_density_per_um[::2]):
            pitch = spec.pitch.with_mean(density_to_mean_pitch_nm(density))
            model = CNFETFailureModel(
                count_model_from_pitch(pitch), spec.per_cnt_failure
            )
            expected = model.log_failure_probabilities(surface.width_nm)
            np.testing.assert_allclose(
                surface.log_failure[:, 2 * j], expected, rtol=1e-12
            )
        assert surface.max_stat_se_log == 0.0

    def test_poisson_device_surface_interpolates_exactly(self):
        report = SurfaceBuilder(small_spec()).build_report()
        # log pF is bilinear in (W, density) for the Poisson family, so no
        # refinement is needed and the bound collapses to the floor.
        assert report.refinement_rounds == 0
        assert report.converged
        assert report.max_interp_error_log <= 1e-8

    def test_scenario_nodes_match_row_yield_model(self):
        params = CorrelationParameters()
        spec = small_spec(scenario="uncorrelated", correlation=params,
                          max_refinement_rounds=0)
        surface = SurfaceBuilder(spec).build()
        model = RowYieldModel(parameters=params)
        pitch = spec.pitch.with_mean(
            density_to_mean_pitch_nm(surface.cnt_density_per_um[0])
        )
        failure = CNFETFailureModel(
            count_model_from_pitch(pitch), spec.per_cnt_failure
        )
        for i in (0, 4, 8):
            p_f = failure.failure_probability(float(surface.width_nm[i]))
            expected = model.row_failure_probability(
                LayoutScenario.UNCORRELATED_GROWTH, p_f
            )
            assert surface.log_failure[i, 0] == pytest.approx(
                math.log(expected), rel=1e-9
            )

    def test_refinement_tightens_nonlinear_scenarios(self):
        loose = SurfaceBuilder(
            small_spec(scenario="uncorrelated", max_refinement_rounds=0)
        ).build_report()
        refined = SurfaceBuilder(
            small_spec(scenario="uncorrelated", max_refinement_rounds=2)
        ).build_report()
        assert refined.max_interp_error_log < loose.max_interp_error_log
        assert refined.surface.width_nm.size > loose.surface.width_nm.size
        assert refined.refinement_rounds == 2

    def test_gamma_family_builds(self):
        spec = small_spec(pitch=GammaPitch(4.0, 0.5), tolerance_log=0.05)
        report = SurfaceBuilder(spec).build_report()
        assert report.converged
        assert report.surface.metadata["pitch"]["family"] == "GammaPitch"

    def test_metadata_records_build_parameters(self):
        spec = small_spec(seed=7, tolerance_log=0.01)
        surface = SurfaceBuilder(spec).build()
        meta = surface.metadata
        assert meta["seed"] == 7
        assert meta["tolerance_log"] == 0.01
        assert meta["method"] == "closed_form"
        assert meta["correlation"]["cnt_length_um"] == pytest.approx(200.0)
        assert meta["pitch_cv"] == pytest.approx(1.0)


class TestMonteCarloBuild:
    def test_tilted_sweep_carries_standard_errors(self):
        spec = small_spec(
            width_axis=GridAxis.from_range("width_nm", 60.0, 120.0, 3),
            density_axis=GridAxis.from_range("cnt_density_per_um", 200.0, 300.0, 2),
            method="tilted",
            mc_samples=4_000,
            tolerance_log=0.5,
            max_refinement_rounds=0,
        )
        surface = SurfaceBuilder(spec).build()
        assert np.all(surface.stat_se_log > 0.0)
        # The sampled nodes must agree with the closed form within a few
        # sigma (log-space SE ≈ relative error of the estimate).
        pitch = spec.pitch.with_mean(
            density_to_mean_pitch_nm(surface.cnt_density_per_um[0])
        )
        model = CNFETFailureModel(
            count_model_from_pitch(pitch), spec.per_cnt_failure
        )
        exact = model.log_failure_probabilities(surface.width_nm)
        deviation = np.abs(surface.log_failure[:, 0] - exact)
        assert np.all(deviation <= 5.0 * np.maximum(surface.stat_se_log[:, 0], 1e-3))

    def test_grid_hook_is_batch_independent(self):
        from repro.montecarlo.rare_event import estimate_device_failure_grid

        pitch = ExponentialPitch(4.0)
        together = estimate_device_failure_grid(
            pitch, 0.5333333333333333, np.array([80.0, 100.0]), 2_000,
            seed_key=(7, 123),
        )
        alone = estimate_device_failure_grid(
            pitch, 0.5333333333333333, np.array([100.0]), 2_000,
            seed_key=(7, 123),
        )
        # Streams are keyed by the width coordinate, not the grid index:
        # the same point estimated in any batch gives bitwise-equal results.
        assert together[1].estimate == alone[0].estimate
        assert together[1].standard_error == alone[0].standard_error
        # ... and distinct widths do not share a stream.
        assert together[0].estimate != together[1].estimate

    def test_mc_refinement_does_not_chase_noise(self):
        # With a tolerance far below the Monte Carlo noise floor the probed
        # residual is pure noise; refinement must recognise that and stop
        # instead of splitting every cell each round.
        spec = small_spec(
            width_axis=GridAxis.from_range("width_nm", 60.0, 120.0, 3),
            density_axis=GridAxis.from_range("cnt_density_per_um", 200.0, 300.0, 2),
            method="tilted",
            mc_samples=2_000,
            tolerance_log=1e-4,
            max_refinement_rounds=2,
        )
        report = SurfaceBuilder(spec).build_report()
        assert report.refinement_rounds == 0
        assert report.converged

    def test_mc_build_is_deterministic(self):
        spec = small_spec(
            width_axis=GridAxis.from_range("width_nm", 60.0, 120.0, 2),
            density_axis=GridAxis.from_range("cnt_density_per_um", 200.0, 300.0, 2),
            method="tilted",
            mc_samples=2_000,
            max_refinement_rounds=0,
        )
        first = SurfaceBuilder(spec).build()
        second = SurfaceBuilder(spec).build()
        assert first.content_hash == second.content_hash


class TestExactEvaluator:
    def test_cache_avoids_re_evaluation(self):
        spec = small_spec()
        evaluator = ExactEvaluator(
            scenario=spec.scenario,
            pitch=spec.pitch,
            per_cnt_failure=spec.per_cnt_failure,
            correlation=spec.correlation,
        )
        evaluator.mesh(W_AXIS.values, D_AXIS.values)
        count = evaluator.evaluation_count
        evaluator.mesh(W_AXIS.values, D_AXIS.values)
        assert evaluator.evaluation_count == count

    def test_points_matches_mesh(self):
        spec = small_spec()
        evaluator = ExactEvaluator(
            scenario=spec.scenario,
            pitch=spec.pitch,
            per_cnt_failure=spec.per_cnt_failure,
            correlation=spec.correlation,
        )
        mesh_vals, _ = evaluator.mesh(W_AXIS.values, D_AXIS.values)
        w = np.array([W_AXIS.values[2], W_AXIS.values[5]])
        d = np.array([D_AXIS.values[1], D_AXIS.values[3]])
        point_vals, point_errs = evaluator.points(w, d)
        assert point_vals[0] == pytest.approx(mesh_vals[2, 1])
        assert point_vals[1] == pytest.approx(mesh_vals[5, 3])
        assert np.all(point_errs == 0.0)

    def test_from_surface_round_trip(self):
        spec = small_spec(scenario="directional_aligned")
        surface = SurfaceBuilder(spec).build()
        evaluator = ExactEvaluator.from_surface(surface)
        w = np.array([100.0])
        d = np.array([250.0])
        vals, _ = evaluator.points(w, d)
        model = CNFETFailureModel(
            count_model_from_pitch(spec.pitch.with_mean(4.0)),
            spec.per_cnt_failure,
        )
        assert vals[0] == pytest.approx(
            model.log_failure_probabilities(w)[0], rel=1e-12
        )

    def test_points_shape_mismatch_raises(self):
        evaluator = ExactEvaluator(
            scenario="device",
            pitch=ExponentialPitch(4.0),
            per_cnt_failure=0.5,
            correlation=CorrelationParameters(),
        )
        with pytest.raises(ValueError):
            evaluator.points(np.array([1.0, 2.0]), np.array([1.0]))


class TestVectorisedCoreHooks:
    """The estimate-propagation hooks the builder rests on."""

    @pytest.mark.parametrize("scenario", list(LayoutScenario))
    def test_vectorised_matches_scalar_row_model(self, scenario):
        params = CorrelationParameters()
        model = RowYieldModel(parameters=params)
        p = np.array([1e-12, 1e-9, 1e-6, 1e-3, 0.1, 0.9])
        vectorised = scenario_row_failure_probabilities(scenario, p, params)
        scalar = np.array([
            model.row_failure_probability(scenario, float(x)) for x in p
        ])
        np.testing.assert_allclose(vectorised, scalar, rtol=1e-13)

    def test_shared_fraction_model_vectorised(self):
        params = CorrelationParameters(unaligned_offset_groups=None,
                                       alignment_fraction=0.5)
        model = RowYieldModel(parameters=params)
        p = np.array([1e-10, 1e-6, 1e-2])
        vectorised = scenario_row_failure_probabilities(
            LayoutScenario.DIRECTIONAL_NON_ALIGNED, p, params
        )
        scalar = np.array([
            model.row_failure_probability(
                LayoutScenario.DIRECTIONAL_NON_ALIGNED, float(x)
            )
            for x in p
        ])
        np.testing.assert_allclose(vectorised, scalar, rtol=1e-13)

    def test_propagated_se_matches_analytic_slope(self):
        params = CorrelationParameters()
        p = np.array([1e-9, 1e-6, 1e-3])
        se = np.full(3, 1e-10)
        # Uncorrelated: dpRF/dpF = m (1 - pF)^(m-1).
        m = params.devices_per_row
        slope = m * np.exp((m - 1.0) * np.log1p(-p))
        propagated = propagate_row_failure_se(
            LayoutScenario.UNCORRELATED_GROWTH, p, se, params
        )
        np.testing.assert_allclose(propagated, slope * se, rtol=1e-5)
        aligned = propagate_row_failure_se(
            LayoutScenario.DIRECTIONAL_ALIGNED, p, se, params
        )
        np.testing.assert_allclose(aligned, se, rtol=1e-5)

    def test_log_failure_probabilities_matches_scalar(self):
        from repro.core.count_model import RenewalCountModel

        widths = np.array([40.0, 80.0, 160.0])
        poisson_model = CNFETFailureModel(
            count_model_from_pitch(ExponentialPitch(4.0)), 0.5333333333333333
        )
        logs = poisson_model.log_failure_probabilities(widths)
        for w, value in zip(widths, logs):
            assert value == pytest.approx(
                math.log(poisson_model.failure_probability(w)), rel=1e-10
            )
        renewal_model = CNFETFailureModel(
            RenewalCountModel(GammaPitch(4.0, 0.5)), 0.5
        )
        logs = renewal_model.log_failure_probabilities(widths)
        for w, value in zip(widths, logs):
            assert value == pytest.approx(
                math.log(renewal_model.failure_probability(w)), rel=1e-10
            )

    def test_with_mean_preserves_cv(self):
        for pitch in (
            ExponentialPitch(4.0),
            GammaPitch(4.0, 0.5),
            DeterministicPitch(3.0),
            TruncatedNormalPitch(nominal_mean_nm=4.0, nominal_std_nm=2.0),
        ):
            rescaled = pitch.with_mean(7.0)
            assert rescaled.mean_nm == pytest.approx(7.0)
            assert rescaled.cv == pytest.approx(pitch.cv, rel=1e-9)


class TestShortsSweep:
    def test_short_probability_property(self):
        spec = small_spec(metallic_fraction=1.0 / 3.0, removal_eta=0.9)
        assert spec.short_probability == pytest.approx(
            (1.0 / 3.0) * 0.1, abs=1e-15
        )
        assert small_spec().short_probability == 0.0

    def test_tilted_method_rejects_shorts(self):
        with pytest.raises(ValueError, match="opens-only"):
            small_spec(
                method="tilted", metallic_fraction=1.0 / 3.0, removal_eta=0.9
            )

    def test_shorts_nodes_match_joint_failure_model(self):
        spec = small_spec(metallic_fraction=1.0 / 3.0, removal_eta=0.9)
        surface = SurfaceBuilder(spec).build()
        for j, density in enumerate(surface.cnt_density_per_um[::2]):
            pitch = spec.pitch.with_mean(density_to_mean_pitch_nm(density))
            model = CNFETFailureModel(
                count_model_from_pitch(pitch),
                spec.per_cnt_failure,
                short_probability=spec.short_probability,
            )
            expected = model.log_failure_probabilities(surface.width_nm)
            np.testing.assert_allclose(
                surface.log_failure[:, 2 * j], expected, rtol=1e-9
            )

    def test_metadata_records_shorts_knobs(self):
        spec = small_spec(metallic_fraction=1.0 / 3.0, removal_eta=0.9)
        meta = SurfaceBuilder(spec).build().metadata
        assert meta["metallic_fraction"] == pytest.approx(1.0 / 3.0)
        assert meta["removal_eta"] == pytest.approx(0.9)
        assert meta["short_probability"] == pytest.approx((1.0 / 3.0) * 0.1)
        default_meta = SurfaceBuilder(small_spec()).build().metadata
        assert default_meta["short_probability"] == 0.0

    def test_from_surface_restores_short_probability(self):
        spec = small_spec(metallic_fraction=1.0 / 3.0, removal_eta=0.9)
        surface = SurfaceBuilder(spec).build()
        evaluator = ExactEvaluator.from_surface(surface)
        assert evaluator.short_probability == pytest.approx(
            spec.short_probability, abs=1e-15
        )
        values, _ = evaluator.points(
            surface.width_nm[:3], np.full(3, surface.cnt_density_per_um[0])
        )
        np.testing.assert_allclose(values, surface.log_failure[:3, 0], rtol=1e-9)

    def test_eta_changes_surface_content(self):
        # Pin the base grid: the joint sweep would otherwise refine (log
        # pF is no longer bilinear once the short term bends it) and the
        # two surfaces could not be compared node for node.
        clean = SurfaceBuilder(small_spec(
            metallic_fraction=1.0 / 3.0, removal_eta=1.0,
            max_refinement_rounds=0,
        )).build()
        shorted = SurfaceBuilder(small_spec(
            metallic_fraction=1.0 / 3.0, removal_eta=0.9,
            max_refinement_rounds=0,
        )).build()
        assert clean.content_hash != shorted.content_hash
        assert np.all(shorted.log_failure >= clean.log_failure - 1e-12)
