"""Tests for sweep axes and the raw bilinear kernel."""

import numpy as np
import pytest

from repro.surface.grid import GridAxis, bilinear_interpolate


class TestGridAxis:
    def test_from_range_log_spacing(self):
        axis = GridAxis.from_range("w", 10.0, 1000.0, 5)
        assert axis.values[0] == 10.0 and axis.values[-1] == 1000.0
        ratios = axis.values[1:] / axis.values[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_from_range_linear_spacing(self):
        axis = GridAxis.from_range("w", 1.0, 5.0, 5, spacing="linear")
        assert np.allclose(axis.values, [1, 2, 3, 4, 5])

    def test_from_range_rejects_bad_input(self):
        with pytest.raises(ValueError):
            GridAxis.from_range("w", 5.0, 1.0, 4)
        with pytest.raises(ValueError):
            GridAxis.from_range("w", 1.0, 5.0, 1)
        with pytest.raises(ValueError):
            GridAxis.from_range("w", 1.0, 5.0, 4, spacing="cubic")
        with pytest.raises(ValueError):
            GridAxis.from_range("w", -1.0, 5.0, 4)

    def test_rejects_unsorted_values(self):
        with pytest.raises(ValueError):
            GridAxis("w", np.array([1.0, 3.0, 2.0]))
        with pytest.raises(ValueError):
            GridAxis("w", np.array([1.0, 1.0, 2.0]))
        with pytest.raises(ValueError):
            GridAxis("w", np.array([5.0]))

    def test_midpoints_and_interleave(self):
        axis = GridAxis("w", np.array([1.0, 3.0, 7.0]))
        assert np.allclose(axis.midpoints(), [2.0, 5.0])
        assert np.allclose(axis.with_midpoints(), [1, 2, 3, 5, 7])

    def test_refined_inserts_flagged_midpoints_only(self):
        axis = GridAxis("w", np.array([1.0, 3.0, 7.0]))
        refined = axis.refined(np.array([True, False]))
        assert np.allclose(refined.values, [1, 2, 3, 7])
        same = axis.refined(np.array([False, False]))
        assert same is axis

    def test_refined_rejects_bad_mask_shape(self):
        axis = GridAxis("w", np.array([1.0, 3.0, 7.0]))
        with pytest.raises(ValueError):
            axis.refined(np.array([True]))



class TestBilinearInterpolate:
    def test_exact_for_bilinear_functions(self):
        # f(x, y) = 2 + 3x - y + 0.5xy lies in span{1, x, y, xy}.
        x = np.array([1.0, 2.0, 4.0, 8.0])
        y = np.array([10.0, 20.0, 40.0])
        f = lambda xx, yy: 2.0 + 3.0 * xx - yy + 0.5 * xx * yy
        values = f(x[:, None], y[None, :])
        rng = np.random.default_rng(1)
        xq = rng.uniform(1.0, 8.0, 257)
        yq = rng.uniform(10.0, 40.0, 257)
        interp, i, j = bilinear_interpolate(x, y, values, xq, yq)
        assert np.allclose(interp, f(xq, yq), rtol=1e-12, atol=1e-12)
        assert np.all((i >= 0) & (i <= x.size - 2))
        assert np.all((j >= 0) & (j <= y.size - 2))

    def test_reproduces_nodes(self):
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([1.0, 4.0])
        values = np.arange(6, dtype=float).reshape(3, 2)
        xg, yg = np.meshgrid(x, y, indexing="ij")
        interp, _, _ = bilinear_interpolate(x, y, values, xg.ravel(), yg.ravel())
        assert np.allclose(interp, values.ravel())

    def test_out_of_grid_clamps_to_boundary_cell(self):
        x = np.array([0.0, 1.0])
        y = np.array([0.0, 1.0])
        values = np.array([[0.0, 0.0], [1.0, 1.0]])  # f = x
        interp, i, j = bilinear_interpolate(
            x, y, values, np.array([2.0]), np.array([0.5])
        )
        # Linear extrapolation from the boundary cell: f(2) = 2.
        assert interp[0] == pytest.approx(2.0)
        assert i[0] == 0 and j[0] == 0
