"""Tests for the YieldSurface artifact, persistence and the store."""

import json

import numpy as np
import pytest

from repro.surface import (
    SURFACE_FORMAT_VERSION,
    SurfaceStore,
    YieldSurface,
)


def make_surface(scenario="device", offset=0.0, metadata=None):
    w = np.array([10.0, 20.0, 40.0])
    d = np.array([100.0, 200.0])
    values = -(w[:, None] * d[None, :] / 1000.0) - offset
    return YieldSurface(
        scenario=scenario,
        width_nm=w,
        cnt_density_per_um=d,
        log_failure=values,
        stat_se_log=np.zeros_like(values),
        interp_error_log=np.full((2, 1), 1e-9),
        metadata=metadata or {"method": "closed_form"},
    )


class TestValidation:
    def test_shape_mismatches_rejected(self):
        good = make_surface()
        with pytest.raises(ValueError):
            YieldSurface(
                scenario="device",
                width_nm=good.width_nm,
                cnt_density_per_um=good.cnt_density_per_um,
                log_failure=good.log_failure[:2],
                stat_se_log=good.stat_se_log,
                interp_error_log=good.interp_error_log,
            )
        with pytest.raises(ValueError):
            YieldSurface(
                scenario="device",
                width_nm=good.width_nm,
                cnt_density_per_um=good.cnt_density_per_um,
                log_failure=good.log_failure,
                stat_se_log=good.stat_se_log,
                interp_error_log=np.zeros((1, 1)),
            )

    def test_positive_log_failure_rejected(self):
        good = make_surface()
        with pytest.raises(ValueError):
            YieldSurface(
                scenario="device",
                width_nm=good.width_nm,
                cnt_density_per_um=good.cnt_density_per_um,
                log_failure=np.abs(good.log_failure),
                stat_se_log=good.stat_se_log,
                interp_error_log=good.interp_error_log,
            )

    def test_negative_errors_rejected(self):
        good = make_surface()
        with pytest.raises(ValueError):
            YieldSurface(
                scenario="device",
                width_nm=good.width_nm,
                cnt_density_per_um=good.cnt_density_per_um,
                log_failure=good.log_failure,
                stat_se_log=good.stat_se_log - 1.0,
                interp_error_log=good.interp_error_log,
            )

    def test_unsorted_axis_rejected(self):
        good = make_surface()
        with pytest.raises(ValueError):
            YieldSurface(
                scenario="device",
                width_nm=good.width_nm[::-1].copy(),
                cnt_density_per_um=good.cnt_density_per_um,
                log_failure=good.log_failure,
                stat_se_log=good.stat_se_log,
                interp_error_log=good.interp_error_log,
            )


class TestIdentity:
    def test_content_hash_is_stable(self):
        assert make_surface().content_hash == make_surface().content_hash

    def test_content_hash_tracks_data_and_metadata(self):
        base = make_surface()
        assert base.content_hash != make_surface(offset=0.5).content_hash
        assert (
            base.content_hash
            != make_surface(metadata={"method": "tilted"}).content_hash
        )

    def test_key_includes_scenario(self):
        surface = make_surface(scenario="uncorrelated")
        assert surface.key.startswith("uncorrelated-")

    def test_describe_is_json_serialisable(self):
        json.dumps(make_surface().describe())

    def test_covers(self):
        surface = make_surface()
        mask = surface.covers(
            np.array([5.0, 10.0, 25.0, 40.0, 45.0]),
            np.array([150.0, 150.0, 150.0, 150.0, 150.0]),
        )
        assert mask.tolist() == [False, True, True, True, False]
        assert not surface.covers(np.array([20.0]), np.array([500.0]))[0]


class TestPersistence:
    def test_round_trip(self, tmp_path):
        surface = make_surface(metadata={"method": "closed_form", "seed": 1})
        path = surface.save(tmp_path / "s.npz")
        loaded = YieldSurface.load(path)
        assert loaded.content_hash == surface.content_hash
        assert loaded.scenario == surface.scenario
        assert loaded.metadata == surface.metadata
        np.testing.assert_array_equal(loaded.log_failure, surface.log_failure)

    def test_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, a=np.arange(3))
        with pytest.raises(ValueError, match="not a yield-surface artifact"):
            YieldSurface.load(path)

    def test_rejects_future_format_version(self, tmp_path, monkeypatch):
        surface = make_surface()
        monkeypatch.setattr(
            "repro.surface.surface.SURFACE_FORMAT_VERSION",
            SURFACE_FORMAT_VERSION + 1,
        )
        path = surface.save(tmp_path / "s.npz")
        monkeypatch.undo()
        with pytest.raises(ValueError, match="format version"):
            YieldSurface.load(path)


class TestSurfaceStore:
    def test_save_and_load_by_key(self, tmp_path):
        store = SurfaceStore(tmp_path)
        surface = make_surface()
        path = store.save(surface)
        assert path.exists()
        assert store.keys() == [surface.key]
        loaded = store.load(surface.key)
        assert loaded.content_hash == surface.content_hash

    def test_save_is_idempotent(self, tmp_path):
        store = SurfaceStore(tmp_path)
        surface = make_surface()
        first = store.save(surface)
        second = store.save(surface)
        assert first == second
        assert len(store.keys()) == 1

    def test_prefix_resolution(self, tmp_path):
        store = SurfaceStore(tmp_path)
        surface = make_surface()
        store.save(surface)
        assert store.load("device").content_hash == surface.content_hash

    def test_ambiguous_prefix_raises(self, tmp_path):
        store = SurfaceStore(tmp_path)
        store.save(make_surface())
        store.save(make_surface(offset=0.5))
        with pytest.raises(KeyError, match="ambiguous"):
            store.load("device")

    def test_missing_key_raises(self, tmp_path):
        store = SurfaceStore(tmp_path)
        with pytest.raises(KeyError, match="no surface matching"):
            store.load("nope")
        assert store.keys() == []
