"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_wmin_defaults(self):
        args = build_parser().parse_args(["wmin"])
        assert args.yield_target == 0.90
        assert args.pitch_cv == 1.0

    def test_align_options(self):
        args = build_parser().parse_args(
            ["align", "--library", "commercial65", "--aligned-regions", "2"]
        )
        assert args.library == "commercial65"
        assert args.aligned_regions == 2


class TestCommands:
    def test_wmin_command(self, capsys):
        exit_code = main(["wmin"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Relaxation factor" in captured
        assert "Wmin with correlation" in captured

    def test_table1_command(self, capsys):
        exit_code = main(["table1"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "pRF uncorrelated growth" in captured
        assert "X" in captured

    def test_table2_command(self, capsys):
        exit_code = main(["table2"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "nangate45_cnfet" in captured
        assert "commercial65" in captured

    def test_scaling_command(self, capsys):
        exit_code = main(["scaling"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "45" in captured and "16" in captured

    def test_align_command_writes_views(self, tmp_path, capsys):
        physical = tmp_path / "aligned.leftxt"
        liberty = tmp_path / "aligned.libtxt"
        exit_code = main([
            "align", "--library", "nangate45",
            "--wmin-nm", "103",
            "--physical-out", str(physical),
            "--liberty-out", str(liberty),
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "cells with penalty" in captured
        assert physical.exists() and physical.stat().st_size > 0
        assert liberty.exists() and liberty.stat().st_size > 0

    def test_netlist_command_to_file(self, tmp_path, capsys):
        output = tmp_path / "core.v"
        exit_code = main(["netlist", "--scale", "0.05", "--output", str(output)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "instances" in captured
        content = output.read_text()
        assert content.startswith("// structural netlist")
        assert "endmodule" in content

    def test_custom_yield_target_changes_wmin(self, capsys):
        main(["wmin", "--yield-target", "0.99"])
        strict = capsys.readouterr().out
        main(["wmin", "--yield-target", "0.50"])
        relaxed = capsys.readouterr().out

        def extract(output):
            for line in output.splitlines():
                if line.startswith("Wmin without correlation"):
                    return float(line.split(":")[1].replace("nm", "").strip())
            raise AssertionError("Wmin line not found")

        assert extract(strict) > extract(relaxed)
