"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_wmin_defaults(self):
        args = build_parser().parse_args(["wmin"])
        assert args.yield_target == 0.90
        assert args.pitch_cv == 1.0

    def test_align_options(self):
        args = build_parser().parse_args(
            ["align", "--library", "commercial65", "--aligned-regions", "2"]
        )
        assert args.library == "commercial65"
        assert args.aligned_regions == 2


class TestCommands:
    def test_wmin_command(self, capsys):
        exit_code = main(["wmin"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Relaxation factor" in captured
        assert "Wmin with correlation" in captured

    def test_table1_command(self, capsys):
        exit_code = main(["table1"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "pRF uncorrelated growth" in captured
        assert "X" in captured

    def test_table2_command(self, capsys):
        exit_code = main(["table2"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "nangate45_cnfet" in captured
        assert "commercial65" in captured

    def test_scaling_command(self, capsys):
        exit_code = main(["scaling"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "45" in captured and "16" in captured

    def test_align_command_writes_views(self, tmp_path, capsys):
        physical = tmp_path / "aligned.leftxt"
        liberty = tmp_path / "aligned.libtxt"
        exit_code = main([
            "align", "--library", "nangate45",
            "--wmin-nm", "103",
            "--physical-out", str(physical),
            "--liberty-out", str(liberty),
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "cells with penalty" in captured
        assert physical.exists() and physical.stat().st_size > 0
        assert liberty.exists() and liberty.stat().st_size > 0

    def test_netlist_command_to_file(self, tmp_path, capsys):
        output = tmp_path / "core.v"
        exit_code = main(["netlist", "--scale", "0.05", "--output", str(output)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "instances" in captured
        content = output.read_text()
        assert content.startswith("// structural netlist")
        assert "endmodule" in content

    def test_sweep_and_query_round_trip(self, tmp_path, capsys):
        store = tmp_path / "surfaces"
        exit_code = main([
            "sweep", "--scenario", "device",
            "--w-min", "60", "--w-max", "300", "--w-points", "9",
            "--density-min", "180", "--density-max", "350",
            "--density-points", "5",
            "--out", str(store),
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "device" in captured and "persisted 1 surface(s)" in captured
        assert list(store.glob("device-*.npz"))

        exit_code = main([
            "query", "--store", str(store), "--key", "device",
            "--width-nm", "103,155,178",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "chip yield" in captured
        assert captured.count("grid") >= 3

    def test_query_fallback_modes(self, tmp_path, capsys):
        store = tmp_path / "surfaces"
        main([
            "sweep", "--scenario", "device",
            "--w-min", "60", "--w-max", "300", "--w-points", "9",
            "--density-min", "180", "--density-max", "350",
            "--density-points", "5",
            "--out", str(store),
        ])
        capsys.readouterr()
        # Out-of-grid width served through the exact fallback.
        exit_code = main([
            "query", "--store", str(store), "--key", "device",
            "--width-nm", "20", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["interpolated"] == [False]
        # fallback=none makes the same query a hard error (exit code 1).
        exit_code = main([
            "query", "--store", str(store), "--key", "device",
            "--width-nm", "20", "--fallback", "none",
        ])
        assert exit_code == 1

    def test_query_missing_key_exits_one(self, tmp_path, capsys):
        exit_code = main([
            "query", "--store", str(tmp_path), "--key", "nope",
            "--width-nm", "100",
        ])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "error:" in captured.err

    def test_query_bad_width_list_exits_one(self, tmp_path, capsys):
        exit_code = main([
            "query", "--store", str(tmp_path), "--key", "device",
            "--width-nm", "abc",
        ])
        assert exit_code == 1
        assert "error:" in capsys.readouterr().err

    def test_custom_yield_target_changes_wmin(self, capsys):
        main(["wmin", "--yield-target", "0.99"])
        strict = capsys.readouterr().out
        main(["wmin", "--yield-target", "0.50"])
        relaxed = capsys.readouterr().out

        def extract(output):
            for line in output.splitlines():
                if line.startswith("Wmin without correlation"):
                    return float(line.split(":")[1].replace("nm", "").strip())
            raise AssertionError("Wmin line not found")

        assert extract(strict) > extract(relaxed)


class TestJsonOutput:
    """Every sub-command must emit parseable JSON under --json."""

    @pytest.mark.parametrize("argv", [
        ["wmin", "--json"],
        ["table1", "--json"],
        ["table2", "--json"],
        ["scaling", "--json"],
        ["align", "--wmin-nm", "103", "--json"],
    ])
    def test_analysis_commands(self, argv, capsys):
        exit_code = main(argv)
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert isinstance(payload, dict) and payload

    def test_wmin_json_fields(self, capsys):
        main(["wmin", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["wmin_baseline_nm"] > payload["wmin_optimized_nm"]
        assert payload["relaxation_factor"] > 100.0

    def test_netlist_json(self, tmp_path, capsys):
        output = tmp_path / "core.v"
        exit_code = main([
            "netlist", "--scale", "0.05", "--output", str(output), "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["instance_count"] > 0
        assert payload["output"] == str(output)

    def test_rare_event_json(self, capsys):
        exit_code = main([
            "rare-event", "--samples", "2000", "--target-pf", "1e-6", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["sampled_pf"] > 0
        assert payload["chip_yield_sampled_se"] >= 0

    def test_sweep_json(self, tmp_path, capsys):
        exit_code = main([
            "sweep", "--scenario", "directional_aligned",
            "--w-min", "60", "--w-max", "300", "--w-points", "5",
            "--density-min", "180", "--density-max", "350",
            "--density-points", "3",
            "--out", str(tmp_path / "surfaces"), "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["surfaces"][0]["scenario"] == "directional_aligned"
        assert payload["evaluations"][0] > 0

    def test_wafer_command(self, capsys):
        exit_code = main([
            "wafer", "--trials", "128", "--die-size-mm", "25",
            "--widths-nm", "100,140", "--device-counts", "200,100",
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "mean chip yield" in out
        assert "good-die fraction" in out
        assert "wafer" in out  # the radial summary table's aggregate row

    def test_wafer_json_matches_per_die_loop_statistically(self, capsys):
        common = [
            "--trials", "256", "--die-size-mm", "25",
            "--widths-nm", "110", "--device-counts", "150", "--json",
        ]
        assert main(["wafer"] + common) == 0
        stacked = json.loads(capsys.readouterr().out)
        assert main(["wafer"] + common + ["--per-die-loop"]) == 0
        loop = json.loads(capsys.readouterr().out)
        assert stacked["die_count"] == loop["die_count"] > 0
        assert stacked["mean_chip_yield"] == pytest.approx(
            loop["mean_chip_yield"], abs=0.1
        )
        assert 0.0 <= stacked["good_die_fraction"] <= 1.0

    def test_wafer_dtype_option(self, capsys):
        exit_code = main([
            "wafer", "--trials", "64", "--die-size-mm", "25",
            "--widths-nm", "100", "--device-counts", "50",
            "--dtype", "float32", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["die_count"] > 0

    def test_wafer_bad_width_list_exits_one(self, capsys):
        exit_code = main([
            "wafer", "--widths-nm", "not-a-number", "--trials", "8",
        ])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "error:" in captured.err


class TestWaferFieldOptions:
    """Correlated-field, de-rating and chip-wafer additions (PR 5)."""

    def test_wafer_correlated_field_and_derate(self, capsys):
        exit_code = main([
            "wafer", "--trials", "64", "--die-size-mm", "25",
            "--widths-nm", "100", "--device-counts", "100",
            "--correlation-length-mm", "25", "--field-sigma", "0.05",
            "--misalignment-correlation-length-mm", "30",
            "--derate-misalignment", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["correlation_length_mm"] == 25.0
        assert payload["derate_misalignment"] is True
        assert all(d["relaxation_factor"] >= 1.0 for d in payload["dice"])

    def test_wafer_field_run_is_deterministic(self, capsys):
        args = [
            "wafer", "--trials", "32", "--die-size-mm", "25",
            "--widths-nm", "100", "--correlation-length-mm", "20", "--json",
        ]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["dice"] == second["dice"]

    def test_wafer_prints_yield_map(self, capsys):
        exit_code = main([
            "wafer", "--trials", "32", "--die-size-mm", "25",
            "--widths-nm", "100",
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        # The text map draws one character per die.
        assert "#" in out or "." in out

    def test_chip_wafer_command(self, capsys):
        exit_code = main([
            "chip-wafer", "--trials", "16", "--die-size-mm", "25",
            "--scale", "0.01", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["die_count"] > 0
        assert payload["device_count"] > 0
        assert len(payload["widths_nm"]) >= 1
        for die in payload["dice"]:
            assert 0.0 <= die["chip_yield"] <= 1.0
            assert 0.0 <= die["eq23_chip_yield"] <= 1.0

    def test_chip_wafer_matches_per_die_loop(self, capsys):
        common = [
            "--trials", "16", "--die-size-mm", "25", "--scale", "0.01",
            "--json",
        ]
        assert main(["chip-wafer"] + common) == 0
        shared = json.loads(capsys.readouterr().out)
        assert main(["chip-wafer"] + common + ["--per-die-loop"]) == 0
        loop = json.loads(capsys.readouterr().out)
        assert shared["die_count"] == loop["die_count"]
        for a, b in zip(shared["dice"], loop["dice"]):
            assert a["chip_yield"] == b["chip_yield"]
            assert a["mean_failing_devices"] == b["mean_failing_devices"]


class TestUsageErrors:
    """Semantic usage errors must exit 2 with a one-line message."""

    def test_resume_without_checkpoint_dir(self, capsys):
        exit_code = main(["wafer", "--resume", "--trials", "8"])
        err = capsys.readouterr().err
        assert exit_code == 2
        assert err.startswith("error: ")
        assert "--resume requires --checkpoint-dir" in err
        assert err.count("\n") == 1  # exactly one line

    def test_checkpoint_dir_is_a_file(self, capsys, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        exit_code = main([
            "wafer", "--trials", "8", "--checkpoint-dir", str(blocker),
        ])
        err = capsys.readouterr().err
        assert exit_code == 2
        assert "not a directory" in err

    def test_resume_from_nonexistent_checkpoint_dir(self, capsys, tmp_path):
        exit_code = main([
            "sweep", "--scenario", "device",
            "--checkpoint-dir", str(tmp_path / "missing"), "--resume",
        ])
        err = capsys.readouterr().err
        assert exit_code == 2
        assert "does not exist" in err

    def test_query_nonexistent_store_exits_two(self, capsys, tmp_path):
        exit_code = main([
            "query", "--store", str(tmp_path / "missing"),
            "--key", "device", "--width-nm", "250",
        ])
        err = capsys.readouterr().err
        assert exit_code == 2
        assert "does not exist" in err

    def test_query_store_is_a_file_exits_two(self, capsys, tmp_path):
        blocker = tmp_path / "store-file"
        blocker.write_text("occupied")
        exit_code = main([
            "query", "--store", str(blocker),
            "--key", "device", "--width-nm", "250",
        ])
        err = capsys.readouterr().err
        assert exit_code == 2
        assert "not a directory" in err

    def test_chip_wafer_usage_errors_share_the_contract(self, capsys):
        exit_code = main(["chip-wafer", "--resume", "--trials", "8"])
        err = capsys.readouterr().err
        assert exit_code == 2
        assert "--resume requires --checkpoint-dir" in err


class TestCheckpointedCommands:
    def test_wafer_checkpoint_resume_identical(self, capsys, tmp_path):
        common = [
            "wafer", "--trials", "16", "--die-size-mm", "25", "--json",
        ]
        assert main(common) == 0
        plain = json.loads(capsys.readouterr().out)
        ck = ["--checkpoint-dir", str(tmp_path / "ck")]
        assert main(common + ck) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(common + ck + ["--resume"]) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert first == plain
        assert resumed == plain
        assert (tmp_path / "ck" / "wafer" / "manifest.json").exists()

    def test_sweep_checkpoint_resume_replays(self, capsys, tmp_path):
        common = [
            "sweep", "--scenario", "device",
            "--w-min", "150", "--w-max", "300", "--w-points", "5",
            "--density-min", "200", "--density-max", "300",
            "--density-points", "5", "--max-refinement-rounds", "1",
            "--json", "--checkpoint-dir", str(tmp_path / "ck"),
        ]
        assert main(common + ["--out", str(tmp_path / "s1")]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(
            common + ["--out", str(tmp_path / "s2"), "--resume"]
        ) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert first["surfaces"] == resumed["surfaces"]
        assert first["evaluations"][0] > 0
        assert resumed["evaluations"] == [0]

    def test_query_reports_degradation_field(self, capsys, tmp_path):
        sweep = [
            "sweep", "--scenario", "device",
            "--w-min", "150", "--w-max", "300", "--w-points", "5",
            "--density-min", "200", "--density-max", "300",
            "--density-points", "5", "--max-refinement-rounds", "1",
            "--out", str(tmp_path / "store"), "--json",
        ]
        assert main(sweep) == 0
        capsys.readouterr()
        assert main([
            "query", "--store", str(tmp_path / "store"),
            "--key", "device", "--width-nm", "200,250", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["degraded"] is False
        assert payload["degradation"] == ["none"]


class TestServeCommand:
    """Validation of the `serve` subcommand (no server is booted here;
    the full boot path is exercised by benchmarks/bench_service_http.py)."""

    def test_missing_store_is_usage_error(self, capsys):
        exit_code = main(["serve", "--store", "/no/such/dir"])
        assert exit_code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_store_must_be_a_directory(self, tmp_path, capsys):
        artifact = tmp_path / "file.npz"
        artifact.write_bytes(b"x")
        exit_code = main(["serve", "--store", str(artifact)])
        assert exit_code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_workers_must_be_positive(self, capsys):
        exit_code = main(["serve", "--workers", "0"])
        assert exit_code == 2
        assert "--workers" in capsys.readouterr().err

    def test_multi_worker_needs_explicit_port(self, capsys):
        exit_code = main(["serve", "--workers", "2", "--port", "0"])
        assert exit_code == 2
        assert "explicit --port" in capsys.readouterr().err


class TestTimingCommand:
    GRAPH_TEXT = (
        "node ff0.Q DFF_X1 width=160 load=640 source\n"
        "node u1 NAND2_X1 width=160 load=640\n"
        "node ff1.D DFF_X1 width=160 load=0 sink\n"
        "arc ff0.Q u1\n"
        "arc u1 ff1.D\n"
    )

    def test_derived_mode(self, capsys):
        exit_code = main([
            "timing", "--scale", "0.02", "--trials", "32",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "functional yield" in captured
        assert "timing yield" in captured
        assert "combined yield" in captured
        assert "derived" in captured

    def test_json_payload(self, capsys):
        exit_code = main([
            "timing", "--scale", "0.02", "--trials", "32", "--json",
        ])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_trials"] == 32
        assert 0.0 <= payload["combined_yield"] <= payload["functional_yield"]
        assert payload["t_clk_ps"] > 0
        assert payload["nominal_critical_path_ps"] > 0

    def test_ingested_mode(self, tmp_path, capsys):
        graph_file = tmp_path / "tiny.tg"
        graph_file.write_text(self.GRAPH_TEXT, encoding="utf-8")
        exit_code = main([
            "timing", "--graph", str(graph_file), "--trials", "32", "--json",
        ])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_nodes"] == 3
        assert "ingested" in payload["mode"]

    def test_oracle_matches_batched(self, tmp_path, capsys):
        graph_file = tmp_path / "tiny.tg"
        graph_file.write_text(self.GRAPH_TEXT, encoding="utf-8")
        base_args = [
            "timing", "--graph", str(graph_file), "--trials", "64", "--json",
        ]
        assert main(base_args) == 0
        batched = json.loads(capsys.readouterr().out)
        assert main(base_args + ["--oracle"]) == 0
        oracle = json.loads(capsys.readouterr().out)
        assert batched == oracle

    def test_tclk_flags_are_exclusive(self, capsys):
        exit_code = main([
            "timing", "--tclk-ps", "100", "--tclk-factor", "2",
        ])
        assert exit_code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_graph_excludes_netlist_flags(self, tmp_path, capsys):
        graph_file = tmp_path / "tiny.tg"
        graph_file.write_text(self.GRAPH_TEXT, encoding="utf-8")
        exit_code = main([
            "timing", "--graph", str(graph_file), "--scale", "0.1",
        ])
        assert exit_code == 2
        assert "derived netlist mode" in capsys.readouterr().err

    def test_unreadable_graph_exits_two(self, capsys):
        exit_code = main(["timing", "--graph", "/no/such/graph.tg"])
        assert exit_code == 2
        assert "not a readable file" in capsys.readouterr().err

    def test_workers_must_be_positive(self, capsys):
        exit_code = main(["timing", "--workers", "0"])
        assert exit_code == 2
        assert "--workers" in capsys.readouterr().err

    def test_malformed_graph_exits_one(self, tmp_path, capsys):
        graph_file = tmp_path / "bad.tg"
        graph_file.write_text("node u1\n", encoding="utf-8")
        exit_code = main(["timing", "--graph", str(graph_file)])
        assert exit_code == 1
        assert "error:" in capsys.readouterr().err
