"""Integrity checks for the MkDocs documentation site.

``mkdocs build --strict`` runs in CI (the container here has no mkdocs);
these tests catch the failure modes that matter *before* CI: nav entries
pointing at missing files, ``::: module`` mkdocstrings directives naming
modules that do not import, broken relative links between pages, and
public subsystems missing from the API reference.
"""

import importlib
import re
from pathlib import Path

import pytest
import yaml

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"
MKDOCS_YML = REPO / "mkdocs.yml"


def _nav_paths(nav) -> list:
    paths = []
    for entry in nav:
        if isinstance(entry, str):
            paths.append(entry)
        elif isinstance(entry, dict):
            for value in entry.values():
                if isinstance(value, str):
                    paths.append(value)
                else:
                    paths.extend(_nav_paths(value))
    return paths


@pytest.fixture(scope="module")
def config():
    # The material theme and python-markdown extensions are not installed
    # here; BaseLoader reads the file as plain data without resolving the
    # !!python tags some extensions use.
    return yaml.load(MKDOCS_YML.read_text(), Loader=yaml.BaseLoader)


@pytest.fixture(scope="module")
def markdown_files():
    files = sorted(DOCS.rglob("*.md"))
    assert files, "docs/ contains no markdown"
    return files


class TestNav:
    def test_every_nav_entry_exists(self, config):
        for path in _nav_paths(config["nav"]):
            assert (DOCS / path).is_file(), f"nav entry missing: {path}"

    def test_every_page_is_in_nav(self, config, markdown_files):
        nav = set(_nav_paths(config["nav"]))
        for md in markdown_files:
            rel = md.relative_to(DOCS).as_posix()
            assert rel in nav, f"page not reachable from nav: {rel}"

    def test_mkdocstrings_configured_for_src_layout(self, config):
        plugins = config["plugins"]
        mkdocstrings = next(
            p["mkdocstrings"] for p in plugins
            if isinstance(p, dict) and "mkdocstrings" in p
        )
        assert mkdocstrings["handlers"]["python"]["paths"] == ["src"]


class TestDirectives:
    def test_every_mkdocstrings_directive_imports(self, markdown_files):
        pattern = re.compile(r"^::: ([\w.]+)$", re.MULTILINE)
        seen = 0
        for md in markdown_files:
            for module in pattern.findall(md.read_text()):
                importlib.import_module(module)
                seen += 1
        assert seen >= 40, "expected API directives for every public module"

    def test_every_public_subsystem_has_reference_coverage(self, markdown_files):
        # Acceptance: API reference pages for every public subsystem.
        packages = sorted(
            p.parent.name for p in (REPO / "src" / "repro").glob("*/__init__.py")
        )
        text = "\n".join(
            md.read_text() for md in markdown_files
            if md.parent.name == "reference"
        )
        for package in packages:
            assert f"::: repro.{package}" in text or (
                f"::: repro.{package}." in text
            ), f"subsystem repro.{package} missing from the API reference"
        for module in ("repro.cli", "repro.units", "repro.constants"):
            assert f"::: {module}" in text

    def test_wafer_tier_modules_documented(self, markdown_files):
        text = "\n".join(md.read_text() for md in markdown_files)
        assert "::: repro.growth.spatial" in text
        assert "::: repro.montecarlo.wafer_sim" in text


class TestLinks:
    def test_relative_markdown_links_resolve(self, markdown_files):
        link = re.compile(r"\]\((?!https?://|#|mailto:)([^)#]+)(#[^)]*)?\)")
        for md in markdown_files:
            for target, _anchor in link.findall(md.read_text()):
                resolved = (md.parent / target).resolve()
                assert resolved.exists(), (
                    f"{md.relative_to(REPO)} links to missing {target}"
                )

    def test_readme_links_to_docs(self):
        readme = (REPO / "README.md").read_text()
        assert "docs/" in readme or "mkdocs" in readme.lower(), (
            "README should point readers at the documentation site"
        )
