"""Tier-1 docstring-coverage gate over the audited packages.

Wraps ``tools/docstring_coverage.py`` (the interrogate-equivalent checker
the CI docs job also runs) so the audit of PR 5 — numpydoc-style
docstrings on every public definition of :mod:`repro.growth`,
:mod:`repro.montecarlo.wafer_sim` and :mod:`repro.backend` — cannot rot
silently: a new public function without a docstring fails the suite.
"""

import importlib.util
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: The packages the PR-5 docstring audit covers; extend as further
#: packages are brought up to 100 %.
AUDITED_PATHS = (
    REPO / "src" / "repro" / "growth",
    REPO / "src" / "repro" / "backend",
    REPO / "src" / "repro" / "montecarlo" / "wafer_sim.py",
    REPO / "src" / "repro" / "resilience",
    REPO / "src" / "repro" / "service",
    REPO / "src" / "repro" / "timing",
    REPO / "src" / "repro" / "analysis",
    REPO / "src" / "repro" / "core",
    REPO / "src" / "repro" / "device",
)


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "docstring_coverage", REPO / "tools" / "docstring_coverage.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["docstring_coverage"] = module
    spec.loader.exec_module(module)
    return module


def test_audited_packages_fully_documented(capsys):
    checker = _load_checker()
    exit_code = checker.main(
        [str(p) for p in AUDITED_PATHS] + ["--fail-under", "100"]
    )
    captured = capsys.readouterr()
    assert exit_code == 0, (
        "public definitions without docstrings:\n" + captured.err
    )


def test_checker_flags_missing_docstrings(tmp_path):
    # The gate itself must fail on an undocumented public function.
    bad = tmp_path / "bad.py"
    bad.write_text('"""Module."""\n\ndef public():\n    pass\n')
    checker = _load_checker()
    assert checker.main([str(bad)]) == 1
    good = tmp_path / "good.py"
    good.write_text('"""Module."""\n\ndef public():\n    """Doc."""\n')
    assert checker.main([str(good)]) == 0
