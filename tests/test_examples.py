"""End-to-end smoke tests for the runnable examples.

The examples are documentation that executes; these tests load them as
modules (they are scripts, not a package) and drive their ``main`` at a
reduced scale, asserting the headline output so a broken wiring of the
surface/serving API — their whole point after the rewiring — fails CI.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestWaferYieldMap:
    def test_runs_end_to_end(self, capsys):
        module = load_example("wafer_yield_map")
        # Larger dies → ~a dozen sites; fewer misalignment samples per die.
        module.main(die_size_mm=25.0, misalignment_samples=200, mc_trials=256)
        out = capsys.readouterr().out
        assert "Wafer: " in out
        # The stacked Monte Carlo tile study prints the radial table.
        assert "stacked Monte Carlo" in out
        assert "expected good dice" in out
        assert "good_fraction" in out
        assert "Yield surface: device-" in out
        assert "die-queries served" in out
        assert out.count("good dies:") == 3
        # The baseline-upsized strategy must beat no-upsizing somewhere.
        assert "#" in out

    def test_strategy_yields_is_batched(self):
        import numpy as np

        module = load_example("wafer_yield_map")
        from repro.serving import YieldService
        from repro.surface import SurfaceBuilder, SweepSpec, GridAxis

        surface = SurfaceBuilder(SweepSpec(
            width_axis=GridAxis.from_range("width_nm", 60.0, 250.0, 9),
            density_axis=GridAxis.from_range("cnt_density_per_um", 180.0, 320.0, 5),
        )).build()
        service = YieldService()
        key = service.register(surface)
        densities = np.array([230.0, 250.0, 280.0])
        yields = module.strategy_yields(service, key, 160.0, densities, 3.3e7)
        assert yields.shape == (3,)
        # Higher density ⇒ more tubes ⇒ higher yield.
        assert yields[2] >= yields[0]
        relaxed = module.strategy_yields(
            service, key, 160.0, densities, 3.3e7,
            relaxations=np.full(3, 360.0),
        )
        assert (relaxed >= yields - 1e-12).all()


class TestOpenriscYieldStudy:
    def test_runs_end_to_end(self, capsys):
        module = load_example("openrisc_yield_study")
        module.main(scale=0.05)
        out = capsys.readouterr().out
        assert "served from the yield surface" in out
        assert "Surface queries served" in out
        assert "Design-specific relaxation factor" in out
        assert "Chip yield with aligned-active cells" in out
