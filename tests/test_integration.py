"""Integration tests: end-to-end reproduction of the paper's headline results.

Each test exercises multiple subsystems together and checks the *shape* of
the paper's results: orderings, approximate factors and crossovers, rather
than exact absolute values (which depend on calibration assumptions
documented in DESIGN.md and EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro.cells.aligned_active import enforce_aligned_active
from repro.cells.area import area_penalty_report
from repro.core.calibration import CalibratedSetup
from repro.core.correlation import LayoutScenario
from repro.core.optimizer import CoOptimizationFlow
from repro.montecarlo.experiments import compare_device_failure
from repro.netlist.openrisc import build_openrisc_like_design, openrisc_width_histogram
from repro.netlist.placement import RowPlacement


@pytest.fixture(scope="module")
def report():
    setup = CalibratedSetup()
    design = openrisc_width_histogram(setup.chip_transistor_count)
    flow = CoOptimizationFlow(
        setup=setup,
        widths_nm=design.widths_nm,
        counts=design.counts,
        min_size_device_count=design.min_size_device_count,
    )
    return flow.run()


class TestHeadlineNumbers:
    def test_relaxation_factor_350x_regime(self, report):
        # Paper headline: 350X relaxation of the device-level pF requirement.
        assert report.relaxation_factor == pytest.approx(350.0, rel=0.1)

    def test_wmin_reduction_ratio(self, report):
        # Paper: 155 nm -> 103 nm (ratio ≈ 1.5).  The calibrated reproduction
        # gives 168 nm -> 118 nm (ratio ≈ 1.43).
        ratio = report.baseline_wmin.wmin_nm / report.optimized_wmin.wmin_nm
        assert ratio == pytest.approx(1.5, abs=0.15)

    def test_wmin_absolute_values_within_calibration_band(self, report):
        assert report.baseline_wmin.wmin_nm == pytest.approx(155.0, rel=0.15)
        assert report.optimized_wmin.wmin_nm == pytest.approx(103.0, rel=0.2)

    def test_table1_ordering_and_total_gain(self, report):
        scenarios = report.scenario_results
        uncorrelated = scenarios[LayoutScenario.UNCORRELATED_GROWTH]
        non_aligned = scenarios[LayoutScenario.DIRECTIONAL_NON_ALIGNED]
        aligned = scenarios[LayoutScenario.DIRECTIONAL_ALIGNED]
        assert (
            uncorrelated.row_failure_probability
            > non_aligned.row_failure_probability
            > aligned.row_failure_probability
        )
        total = (
            uncorrelated.row_failure_probability / aligned.row_failure_probability
        )
        assert total == pytest.approx(350.0, rel=0.1)

    def test_penalty_reduction_at_45nm(self, report):
        # Fig. 3.3: the optimisation removes most of the upsizing penalty at
        # the 45 nm node.
        assert (
            report.optimized_upsizing.capacitance_penalty
            < 0.5 * report.baseline_upsizing.capacitance_penalty
        )

    def test_penalty_grows_with_scaling_in_both_cases(self, report):
        for study in (report.baseline_scaling, report.optimized_scaling):
            penalties = study.penalties_percent
            assert all(b > a for a, b in zip(penalties, penalties[1:]))

    def test_optimized_penalty_smaller_at_every_node(self, report):
        assert np.all(
            report.optimized_scaling.penalties_percent
            <= report.baseline_scaling.penalties_percent
        )


class TestLibraryLevelIntegration:
    def test_nangate_table2_column(self, nangate45, report):
        result = enforce_aligned_active(
            nangate45, wmin_nm=report.optimized_wmin.wmin_nm
        )
        summary = area_penalty_report(result)
        # Paper: 4 of 134 cells affected, penalties 4-14 %.
        assert summary.cell_count == 134
        assert summary.penalised_cell_count == 4
        assert 0.02 <= summary.min_penalty <= 0.08
        assert 0.08 <= summary.max_penalty <= 0.2

    def test_commercial65_one_vs_two_regions(self, commercial65):
        one = area_penalty_report(enforce_aligned_active(commercial65, 107.0, 1))
        two = area_penalty_report(enforce_aligned_active(commercial65, 112.0, 2))
        assert one.penalised_fraction == pytest.approx(0.2, abs=0.05)
        assert two.penalised_cell_count == 0

    def test_modified_library_supports_resynthesis(self, nangate45):
        # The aligned-active library can be used for the same netlist flow.
        result = enforce_aligned_active(nangate45, wmin_nm=103.0)
        modified_library = result.to_library("nangate45_aligned")
        design = build_openrisc_like_design(modified_library, scale=0.05, seed=9)
        assert design.instance_count > 500
        widths = design.transistor_widths_nm()
        # No critical-width device remains below Wmin in the aligned library.
        assert widths.min() >= 103.0 - 1e-9


class TestPhysicalToAnalyticConsistency:
    def test_device_failure_monte_carlo_matches_model(self):
        record = compare_device_failure(width_nm=40.0, n_samples=40_000, seed=17)
        assert record.agrees(n_sigma=4.0, rtol=0.1)

    def test_placement_density_feeds_correlation_model(self, nangate45):
        design = build_openrisc_like_design(nangate45, scale=0.1, seed=21)
        placement = RowPlacement(design, row_width_nm=200_000.0)
        density = placement.small_device_density_per_um(160.0)
        setup = CalibratedSetup()
        # Plugging the measured density into the correlation parameters gives
        # a relaxation factor of LCNT * density (Eq. 3.2).
        from repro.core.correlation import CorrelationParameters, RowYieldModel

        params = CorrelationParameters(
            cnt_length_um=200.0, min_cnfet_density_per_um=density
        )
        model = RowYieldModel(parameters=params, count_model=setup.count_model)
        factor = model.relaxation_factor(setup.required_pf())
        assert factor == pytest.approx(200.0 * density, rel=0.05)
