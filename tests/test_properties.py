"""Property-based tests (hypothesis) on the core models and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.circuit_yield import (
    chip_yield_from_failure_probabilities,
    required_device_failure_probability,
)
from repro.core.correlation import CorrelationParameters, LayoutScenario, RowYieldModel
from repro.core.count_model import PoissonCountModel, RenewalCountModel
from repro.core.failure import CNFETFailureModel
from repro.core.upsizing import UpsizingAnalysis, upsize_widths
from repro.growth.pitch import GammaPitch, pitch_distribution_from_cv
from repro.growth.types import per_cnt_failure_probability
from repro.cells.aligned_active import AlignedActiveTransform
from repro.cells.cell import CellFamily, CellTransistor, StandardCell
from repro.device.active_region import Polarity

# Hypothesis settings: keep runtimes modest, the models are not trivial.
DEFAULT_SETTINGS = settings(max_examples=50, deadline=None)


probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
widths = st.floats(min_value=1.0, max_value=1000.0, allow_nan=False)
pitches = st.floats(min_value=0.5, max_value=50.0, allow_nan=False)
cvs = st.floats(min_value=0.05, max_value=2.0, allow_nan=False)


class TestPerCntFailureProperties:
    @DEFAULT_SETTINGS
    @given(pm=probabilities, p_rs=probabilities)
    def test_is_probability(self, pm, p_rs):
        pf = per_cnt_failure_probability(pm, p_rs)
        assert 0.0 <= pf <= 1.0

    @DEFAULT_SETTINGS
    @given(pm=probabilities, p_rs=probabilities)
    def test_monotone_in_both_arguments(self, pm, p_rs):
        pf = per_cnt_failure_probability(pm, p_rs)
        assert per_cnt_failure_probability(min(pm + 0.1, 1.0), p_rs) >= pf - 1e-12
        assert per_cnt_failure_probability(pm, min(p_rs + 0.1, 1.0)) >= pf - 1e-12


class TestCountModelProperties:
    @DEFAULT_SETTINGS
    @given(pitch=pitches, width=widths)
    def test_poisson_pmf_normalised(self, pitch, width):
        model = PoissonCountModel(pitch)
        assert model.pmf(width).sum() == pytest.approx(1.0, abs=1e-6)

    @DEFAULT_SETTINGS
    @given(pitch=pitches, cv=cvs, width=widths)
    def test_renewal_pmf_normalised_and_nonnegative(self, pitch, cv, width):
        model = RenewalCountModel(GammaPitch(pitch, cv))
        pmf = model.pmf(width)
        assert np.all(pmf >= 0.0)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-6)

    @DEFAULT_SETTINGS
    @given(pitch=pitches, width=widths, z=st.floats(min_value=0.0, max_value=1.0))
    def test_pgf_bounded(self, pitch, width, z):
        model = PoissonCountModel(pitch)
        value = model.pgf(width, z)
        assert 0.0 <= value <= 1.0

    @DEFAULT_SETTINGS
    @given(pitch=pitches, width=widths)
    def test_mean_count_scales_with_width(self, pitch, width):
        model = PoissonCountModel(pitch)
        assert model.mean_count(2 * width) == pytest.approx(2 * model.mean_count(width))


# Every test that holds in both regimes runs at q_frac = 0 (opens-only)
# AND q_frac > 0 (joint opens+shorts, short_probability = q_frac * pf) —
# the parametrization is the arity gate that keeps a new failure-model
# knob from silently skipping the property suite.
SHORT_FRACTIONS = (0.0, 0.5)


class TestFailureModelProperties:
    @pytest.mark.parametrize("q_frac", SHORT_FRACTIONS)
    @DEFAULT_SETTINGS
    @given(pf=st.floats(min_value=0.01, max_value=0.99), width=widths)
    def test_failure_probability_is_probability(self, q_frac, pf, width):
        model = CNFETFailureModel(
            PoissonCountModel(4.0), pf, short_probability=q_frac * pf
        )
        value = model.failure_probability(width)
        assert 0.0 <= value <= 1.0

    @DEFAULT_SETTINGS
    @given(
        pf=st.floats(min_value=0.01, max_value=0.99),
        w1=widths, w2=widths,
    )
    def test_monotone_decreasing_in_width(self, pf, w1, w2):
        # Opens-only by construction: with shorts active pF(W) is NOT
        # monotone in W (wider devices catch more surviving metallic
        # tubes) — that regime is pinned by the inversion-raise test.
        model = CNFETFailureModel(PoissonCountModel(4.0), pf)
        low, high = min(w1, w2), max(w1, w2)
        assert model.failure_probability(high) <= model.failure_probability(low) + 1e-12

    @pytest.mark.parametrize("q_frac", SHORT_FRACTIONS)
    @DEFAULT_SETTINGS
    @given(
        pf1=st.floats(min_value=0.01, max_value=0.5),
        pf2=st.floats(min_value=0.5, max_value=0.99),
        width=widths,
    )
    def test_monotone_in_per_cnt_failure(self, q_frac, pf1, pf2, width):
        counts = PoissonCountModel(4.0)
        b = q_frac * pf1  # shared short term, valid for both pf values
        a = CNFETFailureModel(
            counts, pf1, short_probability=b
        ).failure_probability(width)
        c = CNFETFailureModel(
            counts, pf2, short_probability=b
        ).failure_probability(width)
        assert a <= c + 1e-12

    @DEFAULT_SETTINGS
    @given(
        pf=st.floats(min_value=0.05, max_value=0.95),
        b1=st.floats(min_value=0.0, max_value=0.5),
        b2=st.floats(min_value=0.0, max_value=0.5),
        width=widths,
    )
    def test_monotone_in_short_probability(self, pf, b1, b2, width):
        counts = PoissonCountModel(4.0)
        low, high = sorted((b1 * pf, b2 * pf))
        a = CNFETFailureModel(
            counts, pf, short_probability=low
        ).failure_probability(width)
        b = CNFETFailureModel(
            counts, pf, short_probability=high
        ).failure_probability(width)
        assert a <= b + 1e-12

    @DEFAULT_SETTINGS
    @given(
        pf=st.floats(min_value=0.1, max_value=0.9),
        target=st.floats(min_value=1e-9, max_value=0.5),
    )
    def test_width_inversion_roundtrip(self, pf, target):
        model = CNFETFailureModel(PoissonCountModel(4.0), pf)
        width = model.width_for_failure_probability(target, tolerance_nm=0.005)
        assert model.failure_probability(width) <= target * (1.0 + 1e-6)

    @DEFAULT_SETTINGS
    @given(
        pf=st.floats(min_value=0.1, max_value=0.9),
        q_frac=st.floats(min_value=0.01, max_value=0.99),
    )
    def test_width_inversion_rejects_shorts(self, pf, q_frac):
        # With a short term, pF(W) is no longer monotone decreasing in W,
        # so the bisection contract is void and must refuse loudly.
        model = CNFETFailureModel(
            PoissonCountModel(4.0), pf, short_probability=q_frac * pf
        )
        with pytest.raises(ValueError, match="monotone"):
            model.width_for_failure_probability(0.01)


class TestYieldProperties:
    @DEFAULT_SETTINGS
    @given(
        probs=st.lists(st.floats(min_value=0.0, max_value=0.1), min_size=1, max_size=20)
    )
    def test_yield_in_unit_interval(self, probs):
        value = chip_yield_from_failure_probabilities(probs)
        assert 0.0 <= value <= 1.0

    @DEFAULT_SETTINGS
    @given(
        probs=st.lists(st.floats(min_value=0.0, max_value=0.05), min_size=1, max_size=20)
    )
    def test_approximation_is_lower_bound(self, probs):
        exact = chip_yield_from_failure_probabilities(probs, exact=True)
        approx = chip_yield_from_failure_probabilities(probs, exact=False)
        assert approx <= exact + 1e-12

    @DEFAULT_SETTINGS
    @given(
        yield_target=st.floats(min_value=0.5, max_value=0.999),
        count=st.floats(min_value=1e3, max_value=1e9),
    )
    def test_budget_achieves_target(self, yield_target, count):
        budget = required_device_failure_probability(yield_target, count, exact=True)
        achieved = chip_yield_from_failure_probabilities([budget], counts=[count])
        assert achieved == pytest.approx(yield_target, rel=1e-6)


class TestUpsizingProperties:
    @DEFAULT_SETTINGS
    @given(
        widths_list=st.lists(
            st.floats(min_value=10.0, max_value=1000.0), min_size=1, max_size=30
        ),
        threshold=st.floats(min_value=10.0, max_value=1000.0),
    )
    def test_upsizing_never_shrinks(self, widths_list, threshold):
        upsized = upsize_widths(widths_list, threshold)
        assert np.all(upsized >= np.asarray(widths_list) - 1e-12)
        assert np.all(upsized >= threshold - 1e-12)

    @DEFAULT_SETTINGS
    @given(
        widths_list=st.lists(
            st.floats(min_value=10.0, max_value=1000.0), min_size=1, max_size=30
        ),
        t1=st.floats(min_value=10.0, max_value=1000.0),
        t2=st.floats(min_value=10.0, max_value=1000.0),
    )
    def test_penalty_monotone_in_threshold(self, widths_list, t1, t2):
        analysis = UpsizingAnalysis(widths_list)
        low, high = min(t1, t2), max(t1, t2)
        assert (
            analysis.capacitance_penalty(high)
            >= analysis.capacitance_penalty(low) - 1e-12
        )

    @DEFAULT_SETTINGS
    @given(
        widths_list=st.lists(
            st.floats(min_value=10.0, max_value=1000.0), min_size=1, max_size=30
        ),
        threshold=st.floats(min_value=10.0, max_value=1000.0),
    )
    def test_penalty_non_negative(self, widths_list, threshold):
        analysis = UpsizingAnalysis(widths_list)
        assert analysis.capacitance_penalty(threshold) >= -1e-12


class TestCorrelationProperties:
    @DEFAULT_SETTINGS
    @given(
        p_f=st.floats(min_value=1e-12, max_value=0.5),
        length=st.floats(min_value=1.0, max_value=1000.0),
        density=st.floats(min_value=0.1, max_value=10.0),
        frac=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_non_aligned_between_extremes(self, p_f, length, density, frac):
        params = CorrelationParameters(
            cnt_length_um=length,
            min_cnfet_density_per_um=density,
            alignment_fraction=frac,
        )
        model = RowYieldModel(parameters=params)
        aligned = model.row_failure_probability(LayoutScenario.DIRECTIONAL_ALIGNED, p_f)
        uncorrelated = model.row_failure_probability(
            LayoutScenario.UNCORRELATED_GROWTH, p_f
        )
        middle = model.row_failure_probability(
            LayoutScenario.DIRECTIONAL_NON_ALIGNED, p_f
        )
        # Tolerances are relative as well as absolute: the three scenarios are
        # computed through different floating-point routes, which matters for
        # pF values near machine precision.
        assert aligned * (1.0 - 1e-6) - 1e-15 <= middle
        assert middle <= uncorrelated * (1.0 + 1e-6) + 1e-15

    @DEFAULT_SETTINGS
    @given(
        p_f=st.floats(min_value=1e-12, max_value=0.5),
        length=st.floats(min_value=1.0, max_value=1000.0),
        density=st.floats(min_value=0.1, max_value=10.0),
    )
    def test_relaxation_at_most_devices_per_row(self, p_f, length, density):
        params = CorrelationParameters(
            cnt_length_um=length, min_cnfet_density_per_um=density
        )
        model = RowYieldModel(parameters=params)
        factor = model.relaxation_factor(p_f)
        # The lower bound tolerates floating-point cancellation for tiny pF
        # where 1 - (1 - pF)^m is evaluated near machine precision.
        assert 1.0 - 1e-4 <= factor <= params.devices_per_row + 1e-9


class TestAlignedActiveProperties:
    @st.composite
    def cells(draw):
        n_devices = draw(st.integers(min_value=1, max_value=8))
        n_columns = draw(st.integers(min_value=max(2, n_devices // 2 + 1), max_value=20))
        transistors = []
        for i in range(n_devices):
            column = draw(st.integers(min_value=0, max_value=n_columns - 1))
            slot = draw(st.integers(min_value=0, max_value=1))
            width = draw(st.sampled_from([80.0, 160.0, 240.0, 320.0]))
            transistors.append(
                CellTransistor(f"MN{i}", Polarity.NFET, width, column, slot)
            )
        return StandardCell(
            name="PROP_X1",
            family=CellFamily.COMBINATIONAL,
            transistors=tuple(transistors),
            n_columns=n_columns,
            gate_pitch_nm=190.0,
            height_nm=1400.0,
        )

    @DEFAULT_SETTINGS
    @given(cell=cells(), wmin=st.sampled_from([90.0, 103.0, 155.0]))
    def test_transform_invariants(self, cell, wmin):
        transform = AlignedActiveTransform(wmin_nm=wmin)
        result = transform.apply_to_cell(cell)
        modified = result.modified
        # Device count is preserved.
        assert modified.transistor_count == cell.transistor_count
        # Cells never shrink and every critical device is at least Wmin wide.
        assert modified.width_nm >= cell.width_nm
        for before, after in zip(
            sorted(t.name for t in cell.transistors),
            sorted(t.name for t in modified.transistors),
        ):
            assert before == after
        for t in modified.transistors:
            original = next(o for o in cell.transistors if o.name == t.name)
            assert t.width_nm >= original.width_nm
            if original.width_nm <= wmin:
                assert t.width_nm == pytest.approx(max(original.width_nm, wmin))
        # After the transform no column stacks more critical devices than the
        # number of aligned bands.
        stacked = transform._conflicting_columns(modified, Polarity.NFET)
        assert stacked == {}

    @DEFAULT_SETTINGS
    @given(cell=cells())
    def test_two_bands_never_worse_than_one(self, cell):
        one = AlignedActiveTransform(103.0, aligned_region_groups=1).apply_to_cell(cell)
        two = AlignedActiveTransform(103.0, aligned_region_groups=2).apply_to_cell(cell)
        assert two.extra_columns <= one.extra_columns


class TestUpsizingPenaltyProperties:
    width_lists = st.lists(
        st.floats(min_value=10.0, max_value=500.0, allow_nan=False),
        min_size=1, max_size=8,
    )
    count_lists = st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1, max_size=8,
    )
    thresholds = st.floats(min_value=1.0, max_value=600.0, allow_nan=False)

    @DEFAULT_SETTINGS
    @given(widths=width_lists, t_lo=thresholds, t_hi=thresholds)
    def test_penalty_non_decreasing_in_threshold(self, widths, t_lo, t_hi):
        analysis = UpsizingAnalysis(widths)
        lo, hi = sorted((t_lo, t_hi))
        assert (
            analysis.capacitance_penalty(hi)
            >= analysis.capacitance_penalty(lo) - 1e-12
        )

    @DEFAULT_SETTINGS
    @given(
        widths=width_lists,
        thresholds=st.lists(thresholds, min_size=1, max_size=6),
    )
    def test_penalty_curve_matches_analyse_pointwise(self, widths, thresholds):
        analysis = UpsizingAnalysis(widths)
        curve = analysis.penalty_curve(thresholds)
        for value, t in zip(curve, thresholds):
            assert value == analysis.analyse(t).capacitance_penalty

    @DEFAULT_SETTINGS
    @given(
        widths=width_lists,
        wmin=st.floats(min_value=50.0, max_value=300.0, allow_nan=False),
        node=st.floats(min_value=10.0, max_value=45.0, allow_nan=False),
    )
    def test_penalty_versus_node_wmin_does_not_scale(self, widths, wmin, node):
        # Wmin is set by the CNT pitch and the pF budget — growth
        # properties that do not scale with lithography — so every node
        # of the study must carry the *same* threshold in nanometres,
        # applied to the linearly scaled width population.
        from repro.core.scaling import TechnologyScaler, penalty_versus_node

        study = penalty_versus_node(widths, np.ones(len(widths)), wmin,
                                    nodes_nm=[45.0, node])
        assert all(point.wmin_nm == wmin for point in study.points)
        scaled = TechnologyScaler().scale_widths(widths, node)
        expected = UpsizingAnalysis(scaled).capacitance_penalty(wmin)
        assert study.points[-1].penalty == pytest.approx(expected, rel=1e-12)
