"""Tests for unit conversions and validation helpers."""

import math

import pytest

from repro import units


class TestLengthConversions:
    def test_um_to_nm(self):
        assert units.um_to_nm(1.0) == 1000.0

    def test_nm_to_um(self):
        assert units.nm_to_um(1500.0) == 1.5

    def test_roundtrip_um(self):
        assert units.nm_to_um(units.um_to_nm(3.7)) == pytest.approx(3.7)

    def test_mm_to_nm(self):
        assert units.mm_to_nm(2.0) == 2.0e6

    def test_nm_to_mm(self):
        assert units.nm_to_mm(5.0e5) == pytest.approx(0.5)

    def test_roundtrip_mm(self):
        assert units.nm_to_mm(units.mm_to_nm(0.123)) == pytest.approx(0.123)


class TestDensityConversions:
    def test_per_um_to_per_nm(self):
        assert units.per_um_to_per_nm(1.8) == pytest.approx(0.0018)

    def test_per_nm_to_per_um(self):
        assert units.per_nm_to_per_um(0.25) == pytest.approx(250.0)

    def test_density_roundtrip(self):
        assert units.per_nm_to_per_um(units.per_um_to_per_nm(7.3)) == pytest.approx(7.3)


class TestValidators:
    def test_ensure_positive_accepts_positive(self):
        assert units.ensure_positive(2.5, "x") == 2.5

    def test_ensure_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            units.ensure_positive(0.0, "x")

    def test_ensure_positive_rejects_negative(self):
        with pytest.raises(ValueError):
            units.ensure_positive(-1.0, "x")

    def test_ensure_probability_accepts_bounds(self):
        assert units.ensure_probability(0.0, "p") == 0.0
        assert units.ensure_probability(1.0, "p") == 1.0

    def test_ensure_probability_rejects_above_one(self):
        with pytest.raises(ValueError):
            units.ensure_probability(1.2, "p")

    def test_ensure_probability_rejects_negative(self):
        with pytest.raises(ValueError):
            units.ensure_probability(-0.1, "p")

    def test_ensure_probability_rejects_nan(self):
        with pytest.raises(ValueError):
            units.ensure_probability(math.nan, "p")

    def test_ensure_non_negative_accepts_zero(self):
        assert units.ensure_non_negative(0.0, "n") == 0.0

    def test_ensure_non_negative_rejects_negative(self):
        with pytest.raises(ValueError):
            units.ensure_non_negative(-0.001, "n")
