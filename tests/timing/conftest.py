"""Shared fixtures for the timing-tier tests.

The chip fixture sits at a deliberately friendly growth corner (8 nm mean
pitch, 5 % removal loss) so functional, timing and combined yields are all
strictly between 0 and 1 — degenerate corners would let bugs that swap or
collapse the three yields pass unnoticed.
"""

import numpy as np
import pytest

from repro.growth.pitch import pitch_distribution_from_cv
from repro.growth.types import CNTTypeModel
from repro.montecarlo.chip_sim import ChipMonteCarlo
from repro.netlist.openrisc import build_openrisc_like_design
from repro.netlist.placement import RowPlacement
from repro.timing import derive_timing_graph


@pytest.fixture(scope="session")
def timing_chip(nangate45):
    design = build_openrisc_like_design(nangate45, scale=0.02, seed=2010)
    placement = RowPlacement(design, row_width_nm=40_000.0)
    return ChipMonteCarlo(
        placement,
        pitch=pitch_distribution_from_cv(8.0, 1.0),
        type_model=CNTTypeModel(0.30, 1.0, 0.05),
    )


@pytest.fixture(scope="session")
def derived_timing(timing_chip):
    return derive_timing_graph(timing_chip, seed=7)
