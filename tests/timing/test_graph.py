"""Structural tests of TimingGraph: validation, levelization, plans."""

import numpy as np
import pytest

from repro.timing import TimingGraph, TimingGraphError, TimingNode


def _node(name, **kwargs):
    defaults = dict(cell_name="NAND2_X1", drive_width_nm=160.0, load_af=320.0)
    defaults.update(kwargs)
    return TimingNode(name=name, **defaults)


def _diamond():
    # a -> b, a -> c, b -> d, c -> d
    nodes = [_node("a"), _node("b"), _node("c"), _node("d")]
    arcs = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
    return TimingGraph(nodes, arcs)


def test_levelization_of_diamond():
    graph = _diamond()
    assert graph.depth == 3
    assert graph.levels[0].tolist() == [graph.index_of("a")]
    assert sorted(graph.levels[1].tolist()) == sorted(
        [graph.index_of("b"), graph.index_of("c")]
    )
    assert graph.levels[2].tolist() == [graph.index_of("d")]


def test_longest_path_levels_not_shortest():
    # a -> c and a -> b -> c: c must sit at level 2, not 1.
    graph = TimingGraph(
        [_node("a"), _node("b"), _node("c")],
        [("a", "c"), ("a", "b"), ("b", "c")],
    )
    assert graph.depth == 3
    assert graph.levels[2].tolist() == [graph.index_of("c")]


def test_sources_and_sinks_include_flags_and_topology():
    nodes = [
        _node("q", is_source=True),
        _node("u1"),
        _node("d", is_sink=True),
        _node("floating"),
    ]
    graph = TimingGraph(nodes, [("q", "u1"), ("u1", "d")])
    sources = {graph.nodes[i].name for i in graph.source_indices}
    sinks = {graph.nodes[i].name for i in graph.sink_indices}
    assert sources == {"q", "floating"}
    assert sinks == {"d", "floating"}


def test_cycle_detection():
    nodes = [_node("a"), _node("b"), _node("c")]
    with pytest.raises(TimingGraphError, match="cycle"):
        TimingGraph(nodes, [("a", "b"), ("b", "c"), ("c", "a")])


def test_duplicate_names_rejected():
    with pytest.raises(TimingGraphError, match="duplicate"):
        TimingGraph([_node("a"), _node("a")], [])


def test_bad_arcs_rejected():
    nodes = [_node("a"), _node("b")]
    with pytest.raises(TimingGraphError, match="unknown"):
        TimingGraph(nodes, [("a", "zz")])
    with pytest.raises(TimingGraphError, match="self-loop"):
        TimingGraph(nodes, [("a", "a")])


def test_flag_violations_rejected():
    with pytest.raises(TimingGraphError, match="source"):
        TimingGraph(
            [_node("a"), _node("s", is_source=True)], [("a", "s")]
        )
    with pytest.raises(TimingGraphError, match="sink"):
        TimingGraph(
            [_node("k", is_sink=True), _node("b")], [("k", "b")]
        )


def test_node_validation():
    with pytest.raises((TimingGraphError, ValueError)):
        _node("bad", drive_width_nm=-1.0)
    with pytest.raises(TimingGraphError):
        _node("bad", load_af=-5.0)
    with pytest.raises(TimingGraphError):
        TimingGraph([], [])


def test_edge_plan_matches_fanins():
    graph = _diamond()
    plan = graph.edge_plan()
    assert len(plan) == graph.depth - 1
    for level_index, level in enumerate(plan, start=1):
        assert level.dst.tolist() == sorted(level.dst.tolist())
        for pos, node in enumerate(level.dst.tolist()):
            start = level.starts[pos]
            end = (
                level.starts[pos + 1]
                if pos + 1 < level.starts.size
                else level.src.size
            )
            assert tuple(level.src[start:end].tolist()) == graph.fanin_indices(node)
    # The plan is cached: same object on second call.
    assert graph.edge_plan() is plan


def test_attribute_views():
    graph = _diamond()
    assert np.all(graph.drive_widths_nm() == 160.0)
    assert np.all(graph.loads_af() == 320.0)
    assert graph.n_arcs == 4
