"""Ingestion: text-format parsing/round-trip and design-derived graphs."""

import numpy as np
import pytest

from repro.timing import (
    TimingGraphError,
    derive_timing_graph,
    format_timing_graph,
    load_timing_graph,
    parse_timing_graph,
)
from repro.timing.ingest import FUNCTION_INPUTS, cell_function

SAMPLE = """\
# a tiny launch -> logic -> capture path
node ff0.Q DFF_X1 width=160 load=640 source
node u1 NAND2_X1 width=160 load=320
node ff1.D DFF_X1 width=160 load=0 sink
arc ff0.Q u1
arc u1 ff1.D
"""


def test_parse_sample():
    graph = parse_timing_graph(SAMPLE)
    assert graph.n_nodes == 3
    assert graph.n_arcs == 2
    assert graph.nodes[graph.index_of("ff0.Q")].is_source
    assert graph.nodes[graph.index_of("ff1.D")].is_sink
    assert graph.nodes[graph.index_of("u1")].load_af == 320.0


def test_format_round_trips():
    graph = parse_timing_graph(SAMPLE)
    text = format_timing_graph(graph)
    again = parse_timing_graph(text)
    assert [n.name for n in again.nodes] == [n.name for n in graph.nodes]
    assert again.arcs == graph.arcs
    assert [n.load_af for n in again.nodes] == [n.load_af for n in graph.nodes]


def test_load_timing_graph(tmp_path):
    path = tmp_path / "sample.tg"
    path.write_text(SAMPLE, encoding="utf-8")
    graph = load_timing_graph(str(path))
    assert graph.n_nodes == 3


@pytest.mark.parametrize(
    "bad, match",
    [
        ("node u1", "line 1"),
        ("node u1 NAND2_X1 load=3", "missing width"),
        ("node u1 NAND2_X1 width=xyz", "line 1"),
        ("node u1 NAND2_X1 width=160 colour=red", "unknown node attribute"),
        ("arc a", "line 1"),
        ("wire a b", "expected 'node' or 'arc'"),
        ("", "no nodes"),
    ],
)
def test_parse_errors_carry_line_numbers(bad, match):
    with pytest.raises(TimingGraphError, match=match):
        parse_timing_graph(bad)


def test_parse_error_line_number_counts_comments():
    text = "# comment\n\nnode u1 NAND2_X1 width=-1\n"
    with pytest.raises(TimingGraphError, match="line 3"):
        parse_timing_graph(text)


def test_cell_function():
    assert cell_function("NAND2_X2") == "NAND2"
    assert cell_function("AOI222_X1") == "AOI222"
    assert cell_function("CLKBUF") == "CLKBUF"
    assert FUNCTION_INPUTS["INV"] == 1
    assert FUNCTION_INPUTS["AOI222"] == 6


def test_derived_graph_is_deterministic(timing_chip):
    first = derive_timing_graph(timing_chip, seed=7)
    second = derive_timing_graph(timing_chip, seed=7)
    assert [n.name for n in first.graph.nodes] == [
        n.name for n in second.graph.nodes
    ]
    assert first.graph.arcs == second.graph.arcs
    assert np.array_equal(first.node_window, second.node_window)


def test_derived_graph_varies_with_seed(timing_chip):
    other = derive_timing_graph(timing_chip, seed=8)
    base = derive_timing_graph(timing_chip, seed=7)
    assert other.graph.arcs != base.graph.arcs


def test_derived_graph_shape(derived_timing, timing_chip):
    graph = derived_timing.graph
    # Non-trivial logic depth and at least one register pair.
    assert graph.depth >= 3
    names = {n.name for n in graph.nodes}
    assert any(name.endswith(".Q") for name in names)
    assert any(name.endswith(".D") for name in names)
    # Every node's window indexes into the chip geometry.
    geometry = timing_chip.chip_geometry()
    assert derived_timing.node_window.shape == (graph.n_nodes,)
    assert derived_timing.node_window.min() >= 0
    assert derived_timing.node_window.max() < geometry.window_lo.size


def test_derived_register_halves_share_a_window(derived_timing):
    graph = derived_timing.graph
    by_name = {n.name: i for i, n in enumerate(graph.nodes)}
    q_names = [n.name for n in graph.nodes if n.name.endswith(".Q")]
    assert q_names
    for q_name in q_names[:5]:
        d_name = q_name[:-2] + ".D"
        assert (
            derived_timing.node_window[by_name[q_name]]
            == derived_timing.node_window[by_name[d_name]]
        )


def test_derived_loads_positive_except_sinks(derived_timing):
    for node in derived_timing.graph.nodes:
        if node.is_sink:
            continue
        assert node.load_af > 0.0


def test_derive_validates_parameters(timing_chip):
    with pytest.raises(ValueError, match="default_fanout"):
        derive_timing_graph(timing_chip, default_fanout=0)
    with pytest.raises(ValueError, match="locality"):
        derive_timing_graph(timing_chip, locality=0.0)
