"""NLDM characterization: lookup semantics and delay-model consistency."""

import numpy as np
import pytest

from repro.analysis.delay import GateDelayModel
from repro.core.count_model import PoissonCountModel
from repro.growth.types import CNTTypeModel
from repro.timing import NLDMTable, characterize_cell, characterize_graph
from repro.timing.graph import TimingGraph, TimingNode
from repro.timing.liberty import (
    DEFAULT_LOAD_INDEX_AF,
    DEFAULT_SLEW_INDEX_PS,
    nominal_node_delays,
)


@pytest.fixture()
def delay_model():
    return GateDelayModel(
        count_model=PoissonCountModel(4.0),
        type_model=CNTTypeModel(1.0 / 3.0, 1.0, 0.0),
        fanout=4,
    )


@pytest.fixture()
def table():
    values = np.add.outer(np.arange(3, dtype=float), np.arange(3, dtype=float))
    return NLDMTable(
        slew_index_ps=(1.0, 2.0, 4.0),
        load_index_af=(10.0, 20.0, 40.0),
        values_ps=values,
    )


def test_lookup_hits_grid_points(table):
    assert table.lookup(1.0, 10.0) == 0.0
    assert table.lookup(4.0, 40.0) == 4.0
    assert table.lookup(2.0, 20.0) == 2.0


def test_lookup_interpolates_bilinearly(table):
    # Midway between slew 1-2 and load 10-20: mean of the four corners.
    assert table.lookup(1.5, 15.0) == pytest.approx(1.0)


def test_lookup_clamps_outside_grid(table):
    assert table.lookup(0.01, 5.0) == table.lookup(1.0, 10.0)
    assert table.lookup(100.0, 9999.0) == table.lookup(4.0, 40.0)


def test_lookup_vectorised(table):
    out = table.lookup(np.array([1.0, 4.0]), np.array([10.0, 40.0]))
    assert out.tolist() == [0.0, 4.0]


def test_table_validation():
    with pytest.raises(ValueError, match="ascending"):
        NLDMTable((2.0, 1.0), (1.0, 2.0), np.zeros((2, 2)))
    with pytest.raises(ValueError, match="shape"):
        NLDMTable((1.0, 2.0), (1.0, 2.0), np.zeros((3, 2)))


def test_scaled(table):
    doubled = table.scaled(2.0)
    assert doubled.lookup(4.0, 40.0) == 8.0
    with pytest.raises(ValueError):
        table.scaled(-1.0)


def test_characterize_matches_nominal_delay_at_model_load(delay_model):
    width = 160.0
    cell_table = characterize_cell(delay_model, width, slew_sensitivity=0.0)
    model_load = (
        delay_model.fanout
        * delay_model.capacitance_model.device_capacitance_af(width)
    )
    looked_up = float(cell_table.lookup(DEFAULT_SLEW_INDEX_PS[0], model_load))
    assert looked_up == pytest.approx(delay_model.nominal_delay(width), rel=1e-12)


def test_characterized_delay_monotone_in_load_and_slew(delay_model):
    cell_table = characterize_cell(delay_model, 160.0)
    loads = np.asarray(DEFAULT_LOAD_INDEX_AF)
    slews = np.asarray(DEFAULT_SLEW_INDEX_PS)
    by_load = cell_table.lookup(8.0, loads)
    by_slew = cell_table.lookup(slews, 320.0)
    assert np.all(np.diff(by_load) > 0)
    assert np.all(np.diff(by_slew) > 0)


def test_wider_drive_is_faster_at_same_load(delay_model):
    narrow = characterize_cell(delay_model, 80.0)
    wide = characterize_cell(delay_model, 320.0)
    assert wide.lookup(8.0, 320.0) < narrow.lookup(8.0, 320.0)


def test_characterize_graph_dedups_by_cell_and_width(delay_model):
    nodes = [
        TimingNode("a", "NAND2_X1", 160.0, 320.0),
        TimingNode("b", "NAND2_X1", 160.0, 640.0),  # same table, other load
        TimingNode("c", "NAND2_X2", 320.0, 320.0),
    ]
    graph = TimingGraph(nodes, [("a", "b"), ("b", "c")])
    tables = characterize_graph(graph, delay_model)
    assert set(tables) == {("NAND2_X1", 160.0), ("NAND2_X2", 320.0)}


def test_nominal_node_delays_zero_for_sinks(delay_model):
    nodes = [
        TimingNode("src", "DFF_X1", 160.0, 320.0, is_source=True),
        TimingNode("d", "DFF_X1", 160.0, 0.0, is_sink=True),
    ]
    graph = TimingGraph(nodes, [("src", "d")])
    delays = nominal_node_delays(graph, delay_model)
    assert delays[graph.index_of("src")] > 0
    assert delays[graph.index_of("d")] == 0.0
