"""Parametric yield engine: oracle equivalence, determinism, shared tracks."""

import numpy as np
import pytest

from repro.analysis.delay import GateDelayModel
from repro.core.count_model import PoissonCountModel
from repro.growth.types import CNTTypeModel
from repro.timing import TimingMonteCarlo, parse_timing_graph

N_TRIALS = 64
SEED = 123
CHUNK = 8


@pytest.fixture(scope="module")
def tmc(derived_timing, timing_chip):
    return TimingMonteCarlo.from_chip(timing_chip, timing=derived_timing)


@pytest.fixture(scope="module")
def baseline(tmc):
    return tmc.run(
        N_TRIALS, np.random.default_rng(SEED), trial_chunk=CHUNK
    )


def test_yields_are_non_degenerate(baseline):
    # The fixture corner is chosen so every yield is strictly inside (0, 1);
    # a swapped or collapsed yield would show up here immediately.
    assert 0.0 < baseline.functional_yield < 1.0
    assert 0.0 < baseline.timing_yield < 1.0
    assert 0.0 < baseline.combined_yield < 1.0


def test_batched_sta_bitwise_equals_scalar_oracle(tmc, baseline):
    oracle = tmc.run(
        N_TRIALS, np.random.default_rng(SEED), trial_chunk=CHUNK, oracle=True
    )
    assert np.array_equal(baseline.critical_path_ps, oracle.critical_path_ps)
    assert np.array_equal(baseline.functional_fail, oracle.functional_fail)


def test_bitwise_invariant_to_n_workers(tmc, baseline):
    parallel = tmc.run(
        N_TRIALS, np.random.default_rng(SEED), trial_chunk=CHUNK, n_workers=2
    )
    assert np.array_equal(baseline.critical_path_ps, parallel.critical_path_ps)
    assert np.array_equal(baseline.functional_fail, parallel.functional_fail)


def test_functional_yield_matches_chip_monte_carlo(timing_chip, baseline):
    # The same root generator and chunk layout must reproduce the functional
    # chip run bitwise: the timing worker consumes the count kernel first.
    functional = timing_chip.run(
        N_TRIALS, np.random.default_rng(SEED), trial_chunk=CHUNK
    )
    assert baseline.functional_yield == functional.chip_yield


def test_timing_yield_monotone_in_t_clk(tmc, baseline):
    grid = np.linspace(
        0.5 * baseline.nominal_critical_path_ps,
        3.0 * baseline.nominal_critical_path_ps,
        num=7,
    )
    yields = [baseline.timing_yield_at(t) for t in grid]
    assert yields == sorted(yields)


def test_combined_yield_bounded_by_both(baseline):
    assert baseline.combined_yield <= baseline.functional_yield
    assert baseline.combined_yield <= baseline.timing_yield
    assert baseline.combined_yield_at(np.inf) == baseline.functional_yield


def test_slacks_definition(baseline):
    slacks = baseline.slacks_ps()
    assert np.array_equal(
        slacks, baseline.t_clk_ps - baseline.critical_path_ps
    )


def test_default_t_clk_is_factor_of_nominal(tmc):
    nominal = tmc.nominal_critical_path_ps()
    assert nominal > 0
    assert tmc.default_t_clk_ps() == pytest.approx(1.2 * nominal)
    assert tmc.default_t_clk_ps(factor=2.0) == pytest.approx(2.0 * nominal)
    with pytest.raises(ValueError):
        tmc.default_t_clk_ps(factor=0.0)


def test_run_validation(tmc):
    with pytest.raises(ValueError, match="n_trials"):
        tmc.run(0, np.random.default_rng(0))
    with pytest.raises(ValueError, match="t_clk_ps"):
        tmc.run(4, np.random.default_rng(0), t_clk_ps=-1.0)


def test_from_chip_rejects_foreign_timing(timing_chip):
    with pytest.raises(TypeError, match="DerivedTiming"):
        TimingMonteCarlo.from_chip(timing_chip, timing="not-a-derived-timing")


GRAPH_TEXT = """\
node ff0.Q DFF_X1 width=160 load=640 source
node u1 NAND2_X1 width=160 load=640
node u2 INV_X1 width=160 load=640
node u3 NOR2_X1 width=160 load=320
node ff1.D DFF_X1 width=160 load=0 sink
arc ff0.Q u1
arc ff0.Q u2
arc u1 u3
arc u2 u3
arc u3 ff1.D
"""


@pytest.fixture(scope="module")
def graph_tmc():
    graph = parse_timing_graph(GRAPH_TEXT)
    delay_model = GateDelayModel(
        count_model=PoissonCountModel(8.0),
        type_model=CNTTypeModel(0.30, 1.0, 0.05),
    )
    return TimingMonteCarlo.from_graph(graph, delay_model)


def test_from_graph_runs_and_matches_oracle(graph_tmc):
    res = graph_tmc.run(
        N_TRIALS, np.random.default_rng(SEED), trial_chunk=CHUNK
    )
    oracle = graph_tmc.run(
        N_TRIALS, np.random.default_rng(SEED), trial_chunk=CHUNK, oracle=True
    )
    assert np.array_equal(res.critical_path_ps, oracle.critical_path_ps)
    assert res.n_trials == N_TRIALS
    assert np.isfinite(res.nominal_critical_path_ps)


def test_from_graph_invariant_to_n_workers(graph_tmc):
    serial = graph_tmc.run(
        N_TRIALS, np.random.default_rng(SEED), trial_chunk=CHUNK
    )
    parallel = graph_tmc.run(
        N_TRIALS, np.random.default_rng(SEED), trial_chunk=CHUNK, n_workers=2
    )
    assert np.array_equal(serial.critical_path_ps, parallel.critical_path_ps)
    assert np.array_equal(serial.functional_fail, parallel.functional_fail)
