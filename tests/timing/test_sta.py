"""STA propagation: hand-checked arrivals, batched ≡ scalar bitwise, inf."""

import numpy as np
import pytest

from repro.timing import (
    TimingGraph,
    TimingNode,
    critical_path_delays,
    endpoint_slacks,
    propagate_arrivals,
    propagate_arrivals_scalar,
    slack_histogram,
)


def _node(name, **kwargs):
    defaults = dict(cell_name="NAND2_X1", drive_width_nm=160.0, load_af=320.0)
    defaults.update(kwargs)
    return TimingNode(name=name, **defaults)


@pytest.fixture()
def diamond():
    nodes = [_node("a"), _node("b"), _node("c"), _node("d")]
    arcs = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
    return TimingGraph(nodes, arcs)


def test_hand_checked_arrivals(diamond):
    # delay(a)=1, delay(b)=2, delay(c)=5, delay(d)=1:
    # arrival(d) = 1 + max(1+2, 1+5) = 7
    delays = np.array([[1.0, 2.0, 5.0, 1.0]])
    arrivals = propagate_arrivals(diamond, delays)
    a, b, c, d = (diamond.index_of(n) for n in "abcd")
    assert arrivals[0, a] == 1.0
    assert arrivals[0, b] == 3.0
    assert arrivals[0, c] == 6.0
    assert arrivals[0, d] == 7.0
    assert critical_path_delays(diamond, arrivals)[0] == 7.0


def test_batched_equals_scalar_bitwise(diamond, rng):
    delays = rng.exponential(10.0, size=(256, diamond.n_nodes))
    batched = propagate_arrivals(diamond, delays)
    scalar = propagate_arrivals_scalar(diamond, delays)
    assert np.array_equal(batched, scalar)
    assert np.array_equal(
        critical_path_delays(diamond, batched),
        critical_path_delays(diamond, scalar),
    )


def test_batched_equals_scalar_on_random_dag(rng):
    # A random 60-node DAG (arcs only point forward) exercises deep levels
    # and mixed fanin counts.
    n = 60
    nodes = [_node(f"n{i}") for i in range(n)]
    arcs = []
    for dst in range(1, n):
        for src in rng.choice(dst, size=min(dst, 3), replace=False):
            arcs.append((f"n{int(src)}", f"n{dst}"))
    graph = TimingGraph(nodes, arcs)
    delays = rng.exponential(5.0, size=(64, n))
    # Sprinkle dead gates: inf must propagate identically on both paths.
    dead = rng.random(delays.shape) < 0.02
    delays[dead] = np.inf
    batched = propagate_arrivals(graph, delays)
    scalar = propagate_arrivals_scalar(graph, delays)
    assert np.array_equal(batched, scalar)


def test_inf_delay_makes_critical_path_infinite(diamond):
    delays = np.array([[1.0, np.inf, 5.0, 1.0]])
    crit = critical_path_delays(diamond, propagate_arrivals(diamond, delays))
    assert np.isinf(crit[0])


def test_nan_rejected(diamond):
    delays = np.array([[1.0, np.nan, 5.0, 1.0]])
    with pytest.raises(ValueError, match="NaN"):
        propagate_arrivals(diamond, delays)


def test_shape_validation(diamond):
    with pytest.raises(ValueError, match="shape"):
        propagate_arrivals(diamond, np.zeros((4, diamond.n_nodes + 1)))


def test_one_dimensional_delays_are_one_trial(diamond):
    delays = np.array([1.0, 2.0, 5.0, 1.0])
    arrivals = propagate_arrivals(diamond, delays)
    assert arrivals.shape == (1, diamond.n_nodes)


def test_endpoint_slacks_and_histogram(diamond):
    delays = np.array([[1.0, 2.0, 5.0, 1.0], [1.0, np.inf, 1.0, 1.0]])
    arrivals = propagate_arrivals(diamond, delays)
    slacks = endpoint_slacks(diamond, arrivals, t_clk_ps=10.0)
    assert slacks.shape == (2, diamond.sink_indices.size)
    assert slacks[0, 0] == 3.0  # 10 - 7
    assert np.isneginf(slacks[1, 0])
    counts, edges = slack_histogram(slacks, n_bins=4)
    assert counts.sum() == 1  # only the finite slack is binned
    assert edges.size == 5


def test_slack_histogram_all_infinite():
    counts, edges = slack_histogram(np.array([np.inf, -np.inf]), n_bins=3)
    assert counts.sum() == 0
    assert counts.size == 3
