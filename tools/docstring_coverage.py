#!/usr/bin/env python3
"""Docstring-coverage gate over the audited packages (interrogate-equivalent).

Walks Python sources with :mod:`ast` and checks that every *public*
definition — modules, classes, functions, and methods whose name does not
start with an underscore (dunders other than ``__init__`` are exempt;
``__init__`` is covered by its class docstring per numpydoc convention) —
carries a docstring.  Nested functions are skipped (they are
implementation detail), private helpers are not required but still
counted in the verbose listing.

Used two ways:

* the CI docs job runs it directly with ``--fail-under 100`` over the
  audited packages (``repro.growth``, ``repro.montecarlo.wafer_sim``,
  ``repro.backend``);
* ``tests/test_docstring_coverage.py`` wraps it as a tier-1 test, so the
  gate cannot rot between CI config changes.

Exit code 0 when coverage meets ``--fail-under``, 1 otherwise (missing
definitions are listed on stderr).
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: Dunder methods whose meaning is fixed by the language; their class
#: docstring documents them (numpydoc does not require per-dunder docs).
_EXEMPT_DUNDERS = frozenset({
    "__repr__", "__str__", "__eq__", "__hash__", "__iter__", "__len__",
    "__reduce__", "__post_init__", "__enter__", "__exit__", "__getitem__",
    "__contains__", "__call__", "__init__",
})


def _is_public(name: str) -> bool:
    """Public means no leading underscore (dunders handled separately)."""
    if name.startswith("__") and name.endswith("__"):
        return name not in _EXEMPT_DUNDERS
    return not name.startswith("_")


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand file/package paths into the list of ``.py`` files to audit."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a python file or package dir: {raw}")
    return files


def audit_file(path: Path) -> Tuple[List[str], List[str]]:
    """Audit one file; returns (covered, missing) public definition names.

    Names are qualified as ``file:Class.method`` so the failure listing
    is directly actionable.
    """
    tree = ast.parse(path.read_text(encoding="utf-8"))
    covered: List[str] = []
    missing: List[str] = []

    def record(node: ast.AST, qualname: str) -> None:
        if ast.get_docstring(node):
            covered.append(qualname)
        else:
            missing.append(qualname)

    record(tree, f"{path}:<module>")

    def walk(body, prefix: str) -> None:
        # Only module and class bodies are walked, so every definition
        # seen here is module- or class-level (nested functions are
        # implementation detail and stay exempt).
        for node in body:
            if isinstance(node, ast.ClassDef):
                if _is_public(node.name):
                    record(node, f"{path}:{prefix}{node.name}")
                    walk(node.body, f"{prefix}{node.name}.")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_public(node.name):
                    record(node, f"{path}:{prefix}{node.name}")

    walk(tree.body, "")
    return covered, missing


def main(argv=None) -> int:
    """CLI entry point; prints a summary and returns the exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+",
                        help="python files or package directories to audit")
    parser.add_argument("--fail-under", type=float, default=100.0,
                        help="minimum coverage percent (default 100)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="list every audited definition")
    args = parser.parse_args(argv)

    covered: List[str] = []
    missing: List[str] = []
    for path in iter_python_files(args.paths):
        c, m = audit_file(path)
        covered.extend(c)
        missing.extend(m)

    total = len(covered) + len(missing)
    coverage = 100.0 * len(covered) / total if total else 100.0
    if args.verbose:
        for name in covered:
            print(f"ok      {name}")
    for name in missing:
        print(f"MISSING {name}", file=sys.stderr)
    print(f"docstring coverage: {len(covered)}/{total} public definitions "
          f"({coverage:.1f} %), fail-under {args.fail_under:g} %")
    return 0 if coverage >= args.fail_under else 1


if __name__ == "__main__":
    sys.exit(main())
